"""Setuptools shim.

The offline environment this repository targets ships an older setuptools
without PEP-517 editable-wheel support, so a classic ``setup.py`` is kept to
allow ``pip install -e . --no-use-pep517 --no-build-isolation``.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
