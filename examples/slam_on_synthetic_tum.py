#!/usr/bin/env python3
"""Run the full ORB-SLAM pipeline on a synthetic TUM-style sequence.

Renders a desk-style RGB-D sequence, tracks it with the complete pipeline of
Figure 1 (feature extraction, matching, PnP + RANSAC, pose optimisation,
key-frame map updating), writes the estimated trajectory in TUM format and
reports the absolute trajectory error -- the same evaluation behind Figures 8
and 9 of the paper.

Run with:  python examples/slam_on_synthetic_tum.py [sequence] [num_frames]
           (sequence is one of fr1/xyz, fr2/xyz, fr1/desk, fr1/room, fr2/rpy)
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.config import ExtractorConfig, PyramidConfig, SlamConfig, TrackerConfig
from repro.dataset import SequenceSpec, make_sequence, write_trajectory
from repro.slam import SlamSystem


def main(sequence_name: str = "fr1/desk", num_frames: int = 20) -> None:
    spec = SequenceSpec(
        name=sequence_name,
        num_frames=num_frames,
        image_width=320,
        image_height=240,
    )
    print(f"rendering {num_frames} frames of a synthetic '{sequence_name}' sequence ...")
    sequence = make_sequence(spec)

    config = SlamConfig(
        extractor=ExtractorConfig(
            image_width=spec.image_width,
            image_height=spec.image_height,
            pyramid=PyramidConfig(num_levels=2),
            max_features=400,
        ),
        tracker=TrackerConfig(ransac_iterations=64, pose_iterations=10),
    )
    system = SlamSystem(config)
    print("tracking ...")
    result = system.run(sequence)

    for tracking in result.frame_results:
        marker = "K" if tracking.is_keyframe else " "
        print(
            f"  frame {tracking.frame_index:3d} [{marker}] "
            f"matches {tracking.num_matches:4d}  inliers {tracking.num_inliers:4d}  "
            f"map {tracking.workload.map_size_after:5d} points"
        )

    ate = result.ate()
    print(f"\ntracked {result.num_frames} frames, {result.num_keyframes} key frames "
          f"({100 * result.keyframe_ratio:.0f}%)")
    print(f"absolute trajectory error: mean {ate.mean_cm:.2f} cm, "
          f"RMSE {ate.rmse_cm:.2f} cm, max {ate.max * 100:.2f} cm")
    print("(the paper reports ~4.3 cm mean error on the real TUM sequences)")

    output = Path("estimated_trajectory.txt")
    write_trajectory(output, result.timestamps, result.estimated_poses)
    print(f"estimated trajectory written to {output} in TUM format")


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "fr1/desk"
    frames = int(sys.argv[2]) if len(sys.argv) > 2 else 20
    main(name, frames)
