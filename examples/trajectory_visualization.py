#!/usr/bin/env python3
"""Visualise estimated vs ground-truth trajectories in the terminal (Figure 9).

Runs SLAM on a synthetic room-style sequence, then renders the top-down
overlay of the estimated trajectory on the ground truth as an ASCII scatter
plot, plus per-frame error bars and the feature-matching funnel -- the same
information Figure 9 conveys, without a plotting dependency.

Run with:  python examples/trajectory_visualization.py [sequence] [num_frames]
"""

from __future__ import annotations

import sys

from repro.config import ExtractorConfig, PyramidConfig, SlamConfig, TrackerConfig
from repro.dataset import SequenceSpec, make_sequence
from repro.slam import (
    SlamSystem,
    error_bars,
    matching_summary,
    trajectory_top_view,
)


def main(sequence_name: str = "fr1/room", num_frames: int = 16) -> None:
    sequence = make_sequence(
        SequenceSpec(
            name=sequence_name,
            num_frames=num_frames,
            image_width=320,
            image_height=240,
        )
    )
    config = SlamConfig(
        extractor=ExtractorConfig(
            image_width=320,
            image_height=240,
            pyramid=PyramidConfig(num_levels=2),
            max_features=400,
        ),
        tracker=TrackerConfig(ransac_iterations=64, pose_iterations=10),
    )
    print(f"tracking {num_frames} frames of '{sequence_name}' ...")
    result = SlamSystem(config).run(sequence)

    print("\nTop-down trajectory overlay (x/z plane), cf. Figure 9:\n")
    print(trajectory_top_view(result.estimated_poses, result.ground_truth_poses))

    ate = result.ate()
    print(f"\nATE: mean {ate.mean_cm:.2f} cm, RMSE {ate.rmse_cm:.2f} cm\n")
    print(error_bars(ate.per_frame_errors))

    print("\nPer-frame matching funnel:")
    for tracking in result.frame_results[1:]:
        funnel = matching_summary(
            tracking.workload.features_retained,
            tracking.num_matches,
            tracking.num_inliers,
        )
        marker = "K" if tracking.is_keyframe else " "
        print(f"  frame {tracking.frame_index:3d} [{marker}] {funnel}")


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "fr1/room"
    frames = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    main(name, frames)
