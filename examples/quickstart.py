#!/usr/bin/env python3
"""Quickstart: extract RS-BRIEF features, match two frames, estimate the motion.

This walks the core public API end to end on two synthetically rendered RGB-D
frames:

1. render two views of a textured scene from known camera poses,
2. extract ORB features with the RS-BRIEF descriptor (the paper's pattern),
3. match them by Hamming distance,
4. estimate the relative camera pose with PnP + RANSAC and refine it with
   Levenberg-Marquardt,
5. compare against the ground-truth motion.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.config import ExtractorConfig, PyramidConfig
from repro.dataset import wall_scene
from repro.features import OrbExtractor
from repro.geometry import PinholeCamera, PnpRansac, Pose, RansacConfig
from repro.matching import BruteForceMatcher
from repro.optimization import PoseOptimizer


def main() -> None:
    # -- 1. render two views of a textured wall --------------------------------
    camera = PinholeCamera.tum_freiburg1().scaled(0.5)  # 320 x 240
    scene = wall_scene(distance=2.5)
    pose_a = Pose.identity()
    # the second camera is 6 cm to the right and 2 cm forward
    pose_b = Pose(np.eye(3), np.array([-0.06, 0.0, -0.02]))
    view_a = scene.render(camera, pose_a)
    view_b = scene.render(camera, pose_b)
    print(f"rendered two {camera.width}x{camera.height} frames of the wall scene")

    # -- 2. extract RS-BRIEF features -------------------------------------------
    config = ExtractorConfig(
        image_width=camera.width,
        image_height=camera.height,
        pyramid=PyramidConfig(num_levels=2),
        max_features=500,
        use_rs_brief=True,
    )
    extractor = OrbExtractor(config)
    features_a = extractor.extract(view_a.image)
    features_b = extractor.extract(view_b.image)
    print(
        f"extracted {len(features_a.features)} / {len(features_b.features)} features "
        f"({features_a.profile.keypoints_detected} FAST corners detected in frame A)"
    )

    # -- 3. match descriptors ----------------------------------------------------
    matcher = BruteForceMatcher()
    matches = matcher.match(features_a.descriptor_matrix(), features_b.descriptor_matrix())
    distances = [m.distance for m in matches]
    print(
        f"matched {len(matches)} features, median Hamming distance "
        f"{int(np.median(distances))} bits"
    )

    # -- 4. PnP + RANSAC pose estimation ------------------------------------------
    # back-project frame-A features to 3-D using the rendered depth (frame A is
    # the world frame here), observe them in frame B
    pixels_a = features_a.keypoint_array()
    pixels_b = features_b.keypoint_array()
    points_world = []
    observations = []
    observed_depths = []
    for match in matches:
        xa, ya = pixels_a[match.query_index]
        depth = float(view_a.depth[int(round(ya)), int(round(xa))])
        if depth <= 0:
            continue
        points_world.append(camera.back_project(xa, ya, depth))
        xb, yb = pixels_b[match.train_index]
        observations.append([xb, yb])
        observed_depths.append(float(view_b.depth[int(round(yb)), int(round(xb))]))
    points_world = np.array(points_world)
    observations = np.array(observations)
    observed_depths = np.array(observed_depths)
    ransac = PnpRansac(camera, RansacConfig(num_iterations=128, inlier_threshold_px=3.0))
    estimate = ransac.estimate(points_world, observations, observed_depths=observed_depths)
    print(f"RANSAC kept {estimate.num_inliers}/{len(points_world)} correspondences")

    # -- 5. refine and compare with ground truth ------------------------------------
    optimizer = PoseOptimizer(camera)
    refined = optimizer.optimize(
        points_world[estimate.inlier_mask],
        observations[estimate.inlier_mask],
        estimate.model,
    )
    true_relative = pose_b  # frame A is the world frame
    translation_error_mm = 1000 * refined.pose.translation_distance(true_relative)
    rotation_error_deg = np.degrees(refined.pose.rotation_angle(true_relative))
    print(
        f"estimated camera motion: {refined.pose.camera_center().round(4)} m "
        f"(ground truth {true_relative.camera_center().round(4)} m)"
    )
    print(
        f"pose error: {translation_error_mm:.1f} mm translation, "
        f"{rotation_error_deg:.3f} deg rotation, "
        f"reprojection RMSE {refined.final_rmse_px:.2f} px"
    )


if __name__ == "__main__":
    main()
