#!/usr/bin/env python3
"""Regenerate the paper's platform comparison (Tables 2 and 3).

Evaluates the calibrated runtime models of the ARM Cortex-A9 and Intel i7
software baselines and the accelerator cycle model of eSLAM at the nominal
per-frame workload, then applies the parallelised pipeline model (Figure 7)
to obtain frame rates and energy per frame.

Run with:  python examples/platform_comparison.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.platforms import PlatformComparison


def main() -> None:
    comparison = PlatformComparison()

    print("Table 2: per-stage runtime breakdown (ms)\n")
    print(format_table(comparison.runtime_table()))
    print(
        "\npaper reference: FE 9.1 / 291.6 / 32.5 ms, FM 4.0 / 246.2 / 19.7 ms "
        "(eSLAM / ARM / i7)\n"
    )

    print("Table 3: frame rate and energy efficiency\n")
    print(format_table(comparison.energy_table()))

    speedups = comparison.speedups()
    energy = comparison.energy_improvements()
    print("\nHeadline comparisons (paper values in parentheses):")
    print(
        f"  frame-rate speedup vs ARM:   {speedups['ARM Cortex-A9']['normal']:.1f}x normal (31x), "
        f"{speedups['ARM Cortex-A9']['key']:.1f}x key frame (17.8x)"
    )
    print(
        f"  frame-rate speedup vs i7:    {speedups['Intel i7-4700MQ']['normal']:.1f}x normal (3x), "
        f"{speedups['Intel i7-4700MQ']['key']:.1f}x key frame (1.7x)"
    )
    print(
        f"  energy improvement vs ARM:   {energy['ARM Cortex-A9']['normal']:.1f}x normal (25x), "
        f"{energy['ARM Cortex-A9']['key']:.1f}x key frame (14x)"
    )
    print(
        f"  energy improvement vs i7:    {energy['Intel i7-4700MQ']['normal']:.1f}x normal (71x), "
        f"{energy['Intel i7-4700MQ']['key']:.1f}x key frame (41x)"
    )

    stage_speedups = comparison.stage_speedups()
    print(
        f"  FE stage speedup: {stage_speedups['ARM Cortex-A9']['feature_extraction']:.1f}x vs ARM (32x), "
        f"{stage_speedups['Intel i7-4700MQ']['feature_extraction']:.1f}x vs i7 (3.6x)"
    )
    print(
        f"  FM stage speedup: {stage_speedups['ARM Cortex-A9']['feature_matching']:.1f}x vs ARM (61.6x), "
        f"{stage_speedups['Intel i7-4700MQ']['feature_matching']:.1f}x vs i7 (4.9x)"
    )


if __name__ == "__main__":
    main()
