#!/usr/bin/env python3
"""Figure 8 at full scale: RS-BRIEF vs original ORB trajectory accuracy.

Runs the complete SLAM pipeline twice (once with the rotationally symmetric
RS-BRIEF descriptor, once with the original ORB descriptor using the 30-angle
pre-rotated pattern LUT) on all five synthetic TUM-style sequences and prints
the per-sequence average trajectory error, reproducing the comparison of
Figure 8.  Expect a few minutes of runtime at the default settings.

Run with:  python examples/accuracy_comparison.py [num_frames] [width]
"""

from __future__ import annotations

import sys
import time

from repro.analysis import format_table, run_fig8_accuracy

PAPER_MEAN_RS_BRIEF_CM = 4.3
PAPER_MEAN_ORIGINAL_CM = 4.16


def main(num_frames: int = 20, width: int = 320) -> None:
    height = int(width * 3 / 4)
    print(
        f"running both descriptor variants on 5 synthetic sequences "
        f"({num_frames} frames at {width}x{height}) ..."
    )
    start = time.time()
    rows = run_fig8_accuracy(
        num_frames=num_frames, image_width=width, image_height=height
    )
    elapsed = time.time() - start

    table = [
        {
            "sequence": row.sequence,
            "RS-BRIEF (cm)": row.rs_brief_error_cm,
            "original ORB (cm)": row.original_orb_error_cm,
            "difference": f"{100 * row.relative_difference:+.0f}%",
        }
        for row in rows
    ]
    print()
    print(format_table(table, title="Figure 8: average trajectory error per sequence"))

    mean_rs = sum(row.rs_brief_error_cm for row in rows) / len(rows)
    mean_orb = sum(row.original_orb_error_cm for row in rows) / len(rows)
    print(
        f"\noverall mean: RS-BRIEF {mean_rs:.2f} cm, original ORB {mean_orb:.2f} cm "
        f"(paper on real TUM data: {PAPER_MEAN_RS_BRIEF_CM} vs {PAPER_MEAN_ORIGINAL_CM} cm)"
    )
    better = sum(1 for row in rows if row.rs_brief_error_cm < row.original_orb_error_cm)
    print(
        f"RS-BRIEF is better on {better}/{len(rows)} sequences, worse on the rest -- "
        "the paper's conclusion is that the two descriptors are comparable."
    )
    print(f"(completed in {elapsed:.0f} s)")


if __name__ == "__main__":
    frames = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    width = int(sys.argv[2]) if len(sys.argv) > 2 else 320
    main(frames, width)
