#!/usr/bin/env python3
"""Simulate the eSLAM FPGA accelerator on one frame.

Runs a full-resolution frame through the cycle-approximate accelerator model:
the ORB Extractor (streaming FAST + Harris + smoothing + NMS + orientation +
RS-BRIEF + heap) and the BRIEF Matcher, then prints the per-stage cycle
breakdown, the modelled latency at 100 MHz, and the FPGA resource estimate
(Table 1).

Run with:  python examples/accelerator_simulation.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.hw import EslamAccelerator
from repro.image import random_blocks


def main() -> None:
    accelerator = EslamAccelerator()
    print("eSLAM accelerator model (Zynq XCZ7045, accelerator clock 100 MHz)\n")

    # -- resource report (Table 1) ------------------------------------------------
    report = accelerator.resource_report()
    print(format_table(report.as_rows(), title="FPGA resource estimate (Table 1)"))
    utilization = report.utilization_percent()
    print(
        "utilisation: "
        + ", ".join(f"{name} {value:.1f}%" for name, value in utilization.items())
        + "  (paper: LUT 26.0%, FF 15.5%, DSP 12.3%, BRAM 14.3%)\n"
    )

    # -- feature extraction on a real frame ---------------------------------------
    frame = random_blocks(480, 640, block=12, seed=3)
    print("processing a 640x480 frame through the ORB Extractor ...")
    frame_report = accelerator.process_frame(frame)
    extractor_report = frame_report.extractor_report
    print(f"  features retained:      {extractor_report.features}")
    print(f"  keypoints after NMS:    {extractor_report.keypoints_detected}")
    print(f"  pixels processed:       {extractor_report.pixels_processed} (4-level pyramid)")
    print("  cycle breakdown:")
    for name, cycles in sorted(extractor_report.cycles.components.items()):
        if cycles > 0:
            print(f"    {name:<28s} {cycles:>12.0f}")
    print(
        f"  feature extraction latency: {extractor_report.latency_ms:.2f} ms "
        f"(paper: 9.1 ms)\n"
    )

    # -- feature matching against a synthetic global map -----------------------------
    map_descriptors = frame_report.extraction.descriptor_matrix()
    second_frame = random_blocks(480, 640, block=12, seed=3)
    second_report = accelerator.process_frame(second_frame, map_descriptors)
    matcher_report = second_report.matcher_report
    assert matcher_report is not None
    print(
        f"matching {matcher_report.num_queries} frame descriptors against "
        f"{matcher_report.num_map_points} map descriptors ..."
    )
    print("  cycle breakdown:")
    for name, cycles in sorted(matcher_report.cycles.components.items()):
        print(f"    {name:<28s} {cycles:>12.0f}")
    print(
        f"  feature matching latency: {matcher_report.latency_ms:.2f} ms "
        f"(paper: 4.0 ms for a ~1500-point map)"
    )
    exact = sum(1 for match in second_report.matches if match.distance == 0)
    print(f"  exact matches (same frame re-observed): {exact}/{len(second_report.matches)}")


if __name__ == "__main__":
    main()
