"""Figure 2: the RS-BRIEF pattern compared with the original BRIEF pattern.

The figure is qualitative (a scatter of test locations); the reproducible
quantities are the pattern sizes, the exact 32-fold symmetry of RS-BRIEF, the
absence of symmetry in the original pattern and the hardware-motivating
storage comparison (8+8 seed locations vs a 30-angle LUT of 512 locations).
"""

import numpy as np

from repro.config import DescriptorConfig
from repro.features import (
    RotatedPatternLUT,
    generate_seed,
    original_brief_pattern,
    pattern_symmetry_error,
    rs_brief_pattern,
)

from conftest import print_section


def test_fig2_rs_brief_pattern_generation(benchmark):
    pattern = benchmark(rs_brief_pattern)
    print_section("Figure 2: RS-BRIEF pattern properties")
    config = DescriptorConfig()
    seed = generate_seed(config)
    symmetry_error = pattern_symmetry_error(pattern, config.symmetry, config.seed_pairs)
    radii = np.sqrt((pattern.s_locations**2).sum(axis=1))
    print(f"test pairs:              {pattern.num_bits} (paper: 256)")
    print(f"seed pairs:              {seed.num_pairs} (paper: 8 + 8 locations)")
    print(f"rotational symmetry:     32-fold, max mismatch {symmetry_error:.2e} px")
    print(f"pattern radius:          {radii.max():.1f} px (patch radius 15)")
    assert pattern.num_bits == 256
    assert symmetry_error < 1e-9


def test_fig2_original_pattern_lacks_symmetry(benchmark):
    pattern = benchmark(original_brief_pattern)
    error = pattern_symmetry_error(pattern, 32, 8)
    print_section("Figure 2: original BRIEF pattern (comparison)")
    print(f"test pairs: {pattern.num_bits}, 32-fold symmetry mismatch {error:.2f} px (not symmetric)")
    assert error > 1.0


def test_fig2_storage_comparison(benchmark):
    """The hardware motivation: RS-BRIEF stores 16 seed locations, the
    original ORB approach stores 30 pre-rotated patterns of 512 locations."""

    def storage():
        lut = RotatedPatternLUT(original_brief_pattern())
        seed = generate_seed()
        return {
            "orb_lut_locations": lut.storage_locations(),
            "rs_brief_seed_locations": 2 * seed.num_pairs,
        }

    result = benchmark(storage)
    print_section("Figure 2 follow-up: on-chip pattern storage")
    ratio = result["orb_lut_locations"] / result["rs_brief_seed_locations"]
    print(f"original ORB 30-angle LUT: {result['orb_lut_locations']} stored locations")
    print(f"RS-BRIEF seed:             {result['rs_brief_seed_locations']} stored locations")
    print(f"reduction:                 {ratio:.0f}x")
    assert result["orb_lut_locations"] == 15360
    assert result["rs_brief_seed_locations"] == 16
