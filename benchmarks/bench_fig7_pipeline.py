"""Figure 7: the parallelised pipeline for normal frames and key frames.

For normal frames the FPGA (FE + FM of frame N+1) overlaps the ARM (PE + PO
of frame N), so the steady-state frame time is max(FE+FM, PE+PO) = 17.9 ms.
For key frames the matcher must wait for map updating, so the frame time is
FM + PE + PO + MU = 31.8 ms.  The benchmark rebuilds both Gantt schedules and
verifies the overlap rules.
"""

from repro.platforms import (
    ESLAM,
    EslamRuntimeModel,
    NOMINAL_WORKLOAD,
    PipelineModel,
)

from conftest import print_section


def _print_schedule(entries):
    for entry in sorted(entries, key=lambda e: (e.resource, e.start_ms)):
        print(
            f"  {entry.resource:<5s} {entry.stage:<20s} "
            f"{entry.start_ms:7.2f} -> {entry.end_ms:7.2f} ms"
        )


def test_fig7_normal_frame_schedule(benchmark):
    model = EslamRuntimeModel()
    pipeline = PipelineModel(ESLAM)
    stages = model.stage_runtimes(NOMINAL_WORKLOAD)

    def build():
        return pipeline.schedule(stages, is_keyframe=False)

    entries = benchmark(build)
    print_section("Figure 7 (upper): normal-frame pipeline")
    _print_schedule(entries)
    frame_time = pipeline.frame_time_ms(stages, is_keyframe=False)
    print(f"  steady-state frame time: {frame_time:.1f} ms (paper 17.9 ms)")
    # FE and FM both fit inside the ARM's PE+PO window -> fully hidden
    fpga_end = max(e.end_ms for e in entries if e.resource == "FPGA")
    arm_end = max(e.end_ms for e in entries if e.resource == "ARM")
    assert fpga_end <= arm_end + 1e-9
    assert abs(frame_time - 17.9) / 17.9 < 0.02


def test_fig7_key_frame_schedule(benchmark):
    model = EslamRuntimeModel()
    pipeline = PipelineModel(ESLAM)
    stages = model.stage_runtimes(NOMINAL_WORKLOAD)

    def build():
        return pipeline.schedule(stages, is_keyframe=True)

    entries = benchmark(build)
    print_section("Figure 7 (lower): key-frame pipeline")
    _print_schedule(entries)
    frame_time = pipeline.frame_time_ms(stages, is_keyframe=True)
    print(f"  steady-state frame time: {frame_time:.1f} ms (paper 31.8 ms)")
    mu_end = next(e.end_ms for e in entries if e.stage == "map_updating")
    fm_start = next(e.start_ms for e in entries if e.stage == "feature_matching")
    assert fm_start >= mu_end  # the matcher waits for map updating
    assert abs(frame_time - 31.8) / 31.8 < 0.03


def test_fig7_keyframe_ratio_sweep(benchmark):
    """Average frame rate as the key-frame ratio varies (between the two Table 3 rows)."""
    model = EslamRuntimeModel()
    pipeline = PipelineModel(ESLAM)
    stages = model.stage_runtimes(NOMINAL_WORKLOAD)

    def sweep():
        return {
            ratio: pipeline.average_timing(stages, keyframe_ratio=ratio)["frame_rate_fps"]
            for ratio in (0.0, 0.25, 0.5, 0.75, 1.0)
        }

    rates = benchmark(sweep)
    print_section("Figure 7 follow-up: frame rate vs key-frame ratio")
    for ratio, fps in rates.items():
        print(f"  key-frame ratio {ratio:.2f}: {fps:5.1f} fps")
    assert rates[0.0] > rates[0.5] > rates[1.0]
    assert abs(rates[0.0] - 55.87) / 55.87 < 0.05
    assert abs(rates[1.0] - 31.45) / 31.45 < 0.05
