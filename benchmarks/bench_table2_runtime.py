"""Table 2: per-stage runtime breakdown on eSLAM, ARM Cortex-A9 and Intel i7.

Paper values (ms): FE 9.1 / 291.6 / 32.5, FM 4.0 / 246.2 / 19.7,
PE 9.2 / 0.9, PO 8.7 / 0.5, MU 9.9 / 1.2.  The reproduced values come from
the accelerator cycle model (eSLAM FE/FM) and the calibrated CPU runtime
models evaluated at the nominal workload.
"""

from repro.analysis import format_comparison, format_table, run_table2_runtime
from repro.hw import EslamAccelerator
from repro.image import GrayImage

from conftest import print_section

PAPER_ESLAM_FE_MS = 9.1
PAPER_ESLAM_FM_MS = 4.0


def test_table2_runtime_breakdown(benchmark):
    result = benchmark(run_table2_runtime)
    print_section("Table 2: runtime breakdown (ms)")
    print(format_table(result["rows"]))
    eslam_fe = result["rows"][0]["eSLAM"]
    eslam_fm = result["rows"][1]["eSLAM"]
    print(format_comparison("eSLAM feature extraction", PAPER_ESLAM_FE_MS, eslam_fe, "ms"))
    print(format_comparison("eSLAM feature matching", PAPER_ESLAM_FM_MS, eslam_fm, "ms"))
    speedups = result["stage_speedups"]
    print(
        "FE speedup vs ARM: {:.1f}x (paper 32x), vs i7: {:.1f}x (paper 3.6x)".format(
            speedups["ARM Cortex-A9"]["feature_extraction"],
            speedups["Intel i7-4700MQ"]["feature_extraction"],
        )
    )
    print(
        "FM speedup vs ARM: {:.1f}x (paper 61.6x), vs i7: {:.1f}x (paper 4.9x)".format(
            speedups["ARM Cortex-A9"]["feature_matching"],
            speedups["Intel i7-4700MQ"]["feature_matching"],
        )
    )
    assert abs(eslam_fe - PAPER_ESLAM_FE_MS) / PAPER_ESLAM_FE_MS < 0.25
    assert abs(eslam_fm - PAPER_ESLAM_FM_MS) / PAPER_ESLAM_FM_MS < 0.2


def test_table2_fe_latency_model(benchmark):
    """Time the accelerator FE cycle model itself at the paper's frame size."""
    accelerator = EslamAccelerator()
    blank = GrayImage.zeros(480, 640)

    def feature_extraction_latency():
        return accelerator.extractor.latency_from_profile(
            blank, keypoints_after_nms=2000, descriptors_computed=2000
        )

    report = benchmark(feature_extraction_latency)
    print_section("Table 2 detail: eSLAM FE cycle breakdown")
    for name, cycles in sorted(report.cycles.components.items()):
        print(f"  {name:<28s} {cycles:>12.0f} cycles")
    print(f"  total latency: {report.latency_ms:.2f} ms (paper {PAPER_ESLAM_FE_MS} ms)")
    assert report.latency_ms < 15.0


def test_table2_fm_latency_model(benchmark):
    """Time the matcher cycle model at the nominal 1024 x 1500 workload."""
    accelerator = EslamAccelerator()
    report = benchmark(accelerator.matcher.latency_for, 1024, 1500)
    print_section("Table 2 detail: eSLAM FM cycle breakdown")
    for name, cycles in sorted(report.cycles.components.items()):
        print(f"  {name:<28s} {cycles:>12.0f} cycles")
    print(f"  total latency: {report.latency_ms:.2f} ms (paper {PAPER_ESLAM_FM_MS} ms)")
    assert report.latency_ms < 6.0
