"""Chaos recovery: serving correctness and cost under a seeded kill storm.

The robustness claim of ``docs/serving.md`` (Failure semantics) is that a
supervised :class:`~repro.cluster.ClusterServer` turns worker crashes into
*retries*, not failures: every submitted frame still returns bit-identical
to sequential extraction, in submission order, while the supervisor
respawns the killed workers and the transport audit stays leak-free.  This
report drives the same frame batch through a clean run and through a
seeded :class:`~repro.chaos.FaultPlan` kill storm, and records what the
storm cost: restarts, retries, requeued jobs, the time for the pool to
heal back to full strength after the last frame, and the throughput ratio
against the clean run.

On a single-core host (CI) the throughput ratio mostly measures respawn
overhead, so the assertions are about correctness and counters — recovery
happened (``restarts > 0``), nothing leaked (``leaked_slots == 0``), no
frame failed — never about timing bars.  ``cpu_count`` is recorded in the
JSON so multi-core numbers read in context.

The quick tier (2 workers, kill every 6th of 24 frames, seed 7) runs on
every push as the CI chaos smoke; the ``slow``-marked sweep storms every
fault kind across seeds.  Set ``BENCH_REPORT_DIR`` to also write
``bench_chaos_recovery.json`` (CI uploads it as a build artifact), or run
``python benchmarks/bench_chaos_recovery.py --quick`` standalone.
"""

import json
import os
import sys
import time

import pytest

from repro.chaos import FaultPlan
from repro.cluster import ClusterServer, SupervisorConfig
from repro.config import ExtractorConfig, PyramidConfig
from repro.features import OrbExtractor
from repro.image import random_blocks
from repro.serving import local_extraction_config

from conftest import print_section, write_report_file

NUM_FRAMES = 24
NUM_WORKERS = 2
KILL_EVERY = 6
SEED = 7

#: Fast restarts so the benchmark measures recovery, not backoff sleeping.
SUPERVISION = SupervisorConfig(
    restart_backoff_s=0.02, restart_backoff_max_s=0.5, heartbeat_timeout_s=30.0
)


def _chaos_config():
    return ExtractorConfig(
        image_width=160,
        image_height=120,
        pyramid=PyramidConfig(num_levels=2, provider="shared"),
        max_features=150,
    )


def _chaos_images(config):
    return [
        random_blocks(config.image_height, config.image_width, block=9, seed=seed)
        for seed in range(NUM_FRAMES)
    ]


def _feature_key(result):
    return result.feature_records()  # the repo-wide bit-identity key


def _serve_batch(config, images, plan=None, num_workers=NUM_WORKERS):
    """One cluster run over the batch; returns (keys, seconds, heal_s, stats)."""
    server = ClusterServer(
        config, num_workers=num_workers, supervision=SUPERVISION, fault_plan=plan
    )
    with server:
        start = time.perf_counter()
        futures = [
            server.submit(image, frame_id=index)
            for index, image in enumerate(images)
        ]
        keys = [_feature_key(future.result(timeout=300)) for future in futures]
        elapsed = time.perf_counter() - start
        # recovery time: the last frame is served, but the pool may still be
        # respawning its final victim — time how long until full strength
        heal_start = time.perf_counter()
        deadline = heal_start + 60.0
        while (
            len(server.alive_worker_ids()) < num_workers
            and time.perf_counter() < deadline
        ):
            time.sleep(0.01)
        heal_s = time.perf_counter() - heal_start
        healed = len(server.alive_worker_ids())
    return keys, elapsed, heal_s, healed, server.stats.as_dict()


def _storm_report(config, images, plan, baseline_keys, clean_s):
    keys, storm_s, heal_s, healed, stats = _serve_batch(config, images, plan=plan)
    return {
        "bit_identical_in_order": keys == baseline_keys,
        "frames": len(images),
        "storm_s": round(storm_s, 4),
        "throughput_fps": round(len(images) / storm_s, 2),
        "throughput_vs_clean": round(clean_s / storm_s, 3) if storm_s else None,
        "heal_after_last_frame_s": round(heal_s, 4),
        "pool_healed_to": healed,
        "restarts": stats["restarts"],
        "retries": stats["retries"],
        "requeued": stats["requeued"],
        "shed": stats["shed"],
        "frames_failed": stats["frames_failed"],
        "leaked_slots": stats["leaked_slots"],
        "plan": plan.report(),
        "stats": stats,
    }


def test_chaos_recovery_quick():
    """CI chaos smoke: 2 workers, seeded kill storm, structured JSON report."""
    config = _chaos_config()
    images = _chaos_images(config)
    extractor = OrbExtractor(local_extraction_config(config))
    baseline_keys = [_feature_key(extractor.extract(image)) for image in images]

    _, clean_s, _, _, clean_stats = _serve_batch(config, images, plan=None)
    plan = FaultPlan.storm(
        frames=NUM_FRAMES, every=KILL_EVERY, num_workers=NUM_WORKERS, seed=SEED
    )
    storm = _storm_report(config, images, plan, baseline_keys, clean_s)

    report = {
        "cpu_count": os.cpu_count() or 1,
        "workload": {
            "frames": NUM_FRAMES,
            "workers": NUM_WORKERS,
            "kill_every": KILL_EVERY,
            "seed": SEED,
        },
        "clean": {
            "elapsed_s": round(clean_s, 4),
            "throughput_fps": round(NUM_FRAMES / clean_s, 2),
            "leaked_slots": clean_stats["leaked_slots"],
        },
        "storm": storm,
    }
    print_section("chaos recovery smoke: 2 workers, seeded kill storm")
    print(json.dumps(report, indent=2))
    write_report_file("bench_chaos_recovery.json", report)

    assert storm["bit_identical_in_order"]
    assert storm["restarts"] > 0  # the storm actually hit, and we recovered
    assert storm["requeued"] > 0
    assert storm["frames_failed"] == 0
    assert storm["leaked_slots"] == 0
    assert report["clean"]["leaked_slots"] == 0
    assert storm["pool_healed_to"] == NUM_WORKERS


@pytest.mark.slow
def test_chaos_recovery_storm_sweep():
    """Storm every fault kind across seeds; correctness must hold throughout."""
    config = _chaos_config()
    images = _chaos_images(config)
    extractor = OrbExtractor(local_extraction_config(config))
    baseline_keys = [_feature_key(extractor.extract(image)) for image in images]
    _, clean_s, _, _, _ = _serve_batch(config, images, plan=None)

    rows = []
    for seed in (1, 2, 3):
        plan = FaultPlan.storm(
            frames=NUM_FRAMES,
            every=4,
            kinds=("kill", "stall", "publish_fail"),
            num_workers=NUM_WORKERS,
            stall_s=0.2,
            seed=seed,
        )
        row = _storm_report(config, images, plan, baseline_keys, clean_s)
        row["seed"] = seed
        rows.append(row)

    report = {"cpu_count": os.cpu_count() or 1, "rows": rows}
    print_section("chaos recovery sweep: mixed-kind storms across seeds")
    print(json.dumps(report, indent=2))
    write_report_file("bench_chaos_recovery_sweep.json", report)

    for row in rows:
        assert row["bit_identical_in_order"]
        assert row["frames_failed"] == 0
        assert row["leaked_slots"] == 0


if __name__ == "__main__":
    if "--quick" in sys.argv:
        test_chaos_recovery_quick()
    else:
        test_chaos_recovery_quick()
        test_chaos_recovery_storm_sweep()
