"""Figure 9: estimated vs ground-truth trajectory on the desk sequence.

The figure overlays the trajectories estimated with the RS-BRIEF and original
ORB descriptors on the fr1/desk ground truth.  The benchmark reproduces the
series (aligned estimated camera centres vs ground-truth centres) on the
synthetic desk sequence and prints a sampled overlay plus the ATE of each
variant.
"""

from repro.analysis import run_fig9_trajectory

from conftest import print_section


def test_fig9_trajectory_overlay(benchmark):
    result = benchmark.pedantic(
        run_fig9_trajectory,
        kwargs={"num_frames": 12, "image_width": 320, "image_height": 240},
        rounds=1,
        iterations=1,
    )
    print_section("Figure 9: estimated vs ground-truth trajectory (fr1/desk style)")
    ground_truth = result["rs_brief"]["ground_truth_xyz"]
    rs_estimate = result["rs_brief"]["estimated_xyz"]
    orb_estimate = result["original_orb"]["estimated_xyz"]
    print("  frame |        ground truth (x, z) |       RS-BRIEF (x, z) |   original ORB (x, z)")
    for index in range(0, len(ground_truth), 3):
        gt = ground_truth[index]
        rs = rs_estimate[index]
        orb = orb_estimate[index]
        print(
            f"  {index:5d} | ({gt[0]:+.3f}, {gt[2]:+.3f})            | "
            f"({rs[0]:+.3f}, {rs[2]:+.3f})      | ({orb[0]:+.3f}, {orb[2]:+.3f})"
        )
    rs_ate = result["rs_brief"]["ate_rmse_cm"]
    orb_ate = result["original_orb"]["ate_rmse_cm"]
    print(f"\n  ATE RMSE: RS-BRIEF {rs_ate:.2f} cm, original ORB {orb_ate:.2f} cm")
    print("  (paper shows both estimates following the fr1/desk ground truth closely)")
    assert len(rs_estimate) == len(ground_truth)
    assert rs_ate < 10.0
    assert orb_ate < 10.0
