"""Figure 5: the I/O schedule of the ping-pong Image Cache.

The figure shows three cache lines (A, B, C) of 8 pixel columns each: the FSM
pre-stores 16 columns in lines A and B, then in every state one line receives
new columns while the other two stream to the datapath, cycling A -> B -> C.
The benchmark streams a full 640x480 image through the cache model and checks
the schedule literally.
"""

import numpy as np

from repro.hw import stream_image_through_cache

from conftest import print_section


def test_fig5_image_cache_fsm_schedule(benchmark, vga_image):
    cache, num_states = benchmark.pedantic(
        stream_image_through_cache,
        args=(vga_image.pixels,),
        kwargs={"columns_per_line": 8, "num_lines": 3},
        rounds=1,
        iterations=1,
    )
    schedule = cache.fsm_schedule()
    print_section("Figure 5: Image Cache FSM schedule (first 6 states)")
    line_names = "ABC"
    for state_index, (filling, streaming) in enumerate(schedule[:6]):
        streams = " and ".join(line_names[i] for i in streaming)
        print(
            f"  state {state_index + 1}: line {line_names[filling]} receives 8 columns, "
            f"lines {streams} stream to the 7x7 window"
        )
    print(f"  ... {num_states} states to stream the full 640-column image")
    # the documented rotation A -> B -> C -> A ...
    assert [filling for filling, _ in schedule[:6]] == [0, 1, 2, 0, 1, 2]
    assert num_states == 80  # 640 columns / 8 columns per line
    assert cache.readable_columns() == 24  # 3 lines x 8 columns resident


def test_fig5_cache_window_correctness(benchmark, vga_image):
    """Windows served by the cache match the original image content."""

    def stream_and_check():
        cache, _ = stream_image_through_cache(vga_image.pixels[:64], columns_per_line=8)
        window = cache.window(center_column=636, width=7)
        return np.array_equal(window, vga_image.pixels[:64, 633:640])

    assert benchmark(stream_and_check)
