"""Table 3: frame rate, power and energy per frame on the three platforms.

Paper values: normal-frame runtimes 555.7 / 53.6 / 17.9 ms, key-frame
runtimes 565.6 / 54.8 / 31.8 ms; frame rates 1.8 / 18.66 / 55.87 fps
(normal) and 1.77 / 18.25 / 31.45 fps (key); power 1.574 / 47 / 1.936 W;
energy 875 / 2519 / 35 mJ (normal) and 890 / 2575 / 62 mJ (key).
"""

from repro.analysis import format_comparison, format_table, run_table3_energy

from conftest import print_section


def test_table3_frame_rate_and_energy(benchmark):
    result = benchmark(run_table3_energy)
    print_section("Table 3: frame rate and energy efficiency")
    print(format_table(result["rows"]))
    paper = result["paper"]
    frame_rows = {
        (row["metric"], row["frame_kind"]): row for row in result["rows"]
    }
    checks = [
        ("runtime_ms", "normal", "eSLAM", 17.9),
        ("runtime_ms", "key", "eSLAM", 31.8),
        ("frame_rate_fps", "normal", "eSLAM", 55.87),
        ("frame_rate_fps", "key", "eSLAM", 31.45),
        ("energy_per_frame_mj", "normal", "eSLAM", 35.0),
        ("energy_per_frame_mj", "key", "eSLAM", 62.0),
        ("frame_rate_fps", "normal", "ARM Cortex-A9", 1.8),
        ("frame_rate_fps", "normal", "Intel i7-4700MQ", 18.66),
    ]
    for metric, kind, platform, paper_value in checks:
        measured = frame_rows[(metric, kind)][platform]
        print(format_comparison(f"{platform} {metric} ({kind})", paper_value, measured))
        assert abs(measured - paper_value) / paper_value < 0.1
    print("\nHeadline ratios (paper: 31x/17.8x vs ARM, 3x/1.7x vs i7 frame rate;")
    print("                 25x/14x vs ARM, 71x/41x vs i7 energy):")
    print(f"  speedups: {result['speedups']}")
    print(f"  energy improvements: {result['energy_improvements']}")
    assert 25 < result["speedups"]["ARM Cortex-A9"]["normal"] < 35
    assert 60 < result["energy_improvements"]["Intel i7-4700MQ"]["normal"] < 80
    # power figures are inputs (measured on the boards in the paper)
    assert paper["power_w"]["eSLAM"] == 1.936
