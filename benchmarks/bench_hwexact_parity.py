"""hwexact cross-validation report: parity, divergence and quantized throughput.

Prints one JSON report with three sections:

* **parity** — the batched ``hwexact`` engine pair vs the hardware model's
  unit-by-unit quantized extraction (must be bit-identical, the tentpole
  guarantee of ``tests/test_hwexact_parity.py`` restated at benchmark scale);
* **divergence** — float-vs-fixed keypoint/descriptor agreement rates and
  the end-to-end trajectory divergence on a synthetic TUM sequence (the
  paper's accuracy-preservation claim, quantified);
* **throughput** — per-stage timings of the quantized front end and backend
  next to the float ``vectorized`` engines, so the cost of running the
  fixed-point datapath in software is on record alongside the other
  ``BENCH_*.json`` baselines.

The default workload runs at quarter resolution; the ``slow`` marker runs
the paper's VGA frame through the batched engines (the scalar hardware walk
stays at reduced size — it evaluates every window in Python).
"""

import json
import time
from dataclasses import replace

import pytest

from repro.analysis import (
    compare_float_vs_fixed_extraction,
    run_hwexact_parity,
    run_quantization_divergence,
)
from repro.backends import create_backend
from repro.config import ExtractorConfig, PyramidConfig
from repro.features import OrbExtractor
from repro.frontend import create_engine

from conftest import print_section


def _best_of(callable_, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _stage_times(engine_name: str, config: ExtractorConfig, image):
    """Per-stage front-end/backend timings for one registered engine pair."""
    engine_config = replace(config, frontend=engine_name, backend=engine_name)
    engine = create_engine(engine_name, engine_config)
    backend = create_backend(engine_name, engine_config)
    xs, ys, scores, _ = engine.detect_with_count(image)
    smoothed = engine.smooth(image)
    extractor = OrbExtractor(engine_config)
    extractor.extract(image)  # warm-up
    return {
        "detect_s": _best_of(lambda: engine.detect_with_count(image)),
        "smooth_s": _best_of(lambda: engine.smooth(image)),
        "describe_s": _best_of(lambda: backend.describe(smoothed, xs, ys, scores)),
        "extract_s": _best_of(lambda: extractor.extract(image)),
        "keypoints": int(xs.size),
    }


def _throughput_report(config: ExtractorConfig, image, workload_name: str):
    quantized = _stage_times("hwexact", config, image)
    float_engine = _stage_times("vectorized", config, image)
    return {
        "workload": {
            "name": workload_name,
            "image": f"{config.image_width}x{config.image_height}",
            "pyramid_levels": config.pyramid.num_levels,
            "max_features": config.max_features,
        },
        "hwexact": quantized,
        "vectorized": float_engine,
        "quantized_frames_per_s": (
            1.0 / quantized["extract_s"] if quantized["extract_s"] > 0 else 0.0
        ),
        "quantized_vs_float_extract_ratio": (
            quantized["extract_s"] / float_engine["extract_s"]
            if float_engine["extract_s"] > 0
            else 0.0
        ),
    }


def test_hwexact_parity_and_divergence_report(small_image):
    config = ExtractorConfig(
        image_width=320,
        image_height=240,
        pyramid=PyramidConfig(num_levels=2),
        max_features=400,
        frontend="hwexact",
        backend="hwexact",
    )
    parity = run_hwexact_parity()  # reduced size: the hw model walks windows
    divergence = run_quantization_divergence(num_frames=6)
    agreement = compare_float_vs_fixed_extraction(small_image, config)
    throughput = _throughput_report(config, small_image, "hwexact-320x240")
    report = {
        "parity": parity,
        "divergence": divergence,
        "agreement_320x240": agreement,
        "throughput": throughput,
    }
    print_section("hwexact: parity, quantization divergence, throughput")
    print(json.dumps(report, indent=2))
    # the tentpole guarantee: batched engines == hardware model, to the bit
    assert parity["bit_identical"]
    # the quantized detector stays close to the float detector
    assert agreement["fixed_coverage_1px"] > 0.5
    # fixed-point SLAM accuracy stays in the float pipeline's regime
    assert divergence["fixed"]["ate_mean_cm"] < 10.0 * max(
        1.0, divergence["float"]["ate_mean_cm"]
    )


@pytest.mark.slow
def test_hwexact_vga_throughput(vga_image):
    """Paper-scale batched workload: 640x480, 4 levels, 1024 features."""
    config = ExtractorConfig(frontend="hwexact", backend="hwexact")
    report = _throughput_report(config, vga_image, "hwexact-640x480")
    report["agreement"] = compare_float_vs_fixed_extraction(vga_image, config)
    print_section("hwexact: VGA quantized throughput and agreement")
    print(json.dumps(report, indent=2))
    assert report["quantized_frames_per_s"] > 1.0
    assert report["agreement"]["fixed_coverage_1px"] > 0.5
