"""Shared helpers for the benchmark harness.

Every module in this directory regenerates one table or figure of the paper
and prints the reproduced rows next to the paper's reported values, so that
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction report.
Heavy experiments run at reduced scale through ``benchmark.pedantic`` with a
single round; micro-kernels use the default timing loop.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.config import ExtractorConfig, PyramidConfig, SlamConfig, TrackerConfig
from repro.dataset import SequenceSpec, make_sequence
from repro.image import random_blocks


def print_section(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def write_report_file(name: str, report: dict) -> None:
    """Also write a report as JSON when ``BENCH_REPORT_DIR`` is set.

    Reports always print to stdout; CI sets the environment variable so the
    same JSON lands in a directory it uploads as a build artifact.
    """
    report_dir = os.environ.get("BENCH_REPORT_DIR")
    if not report_dir:
        return
    os.makedirs(report_dir, exist_ok=True)
    with open(os.path.join(report_dir, name), "w") as handle:
        json.dump(report, handle, indent=2)


@pytest.fixture(scope="session")
def vga_image():
    """A full-resolution 640x480 texture (the paper's image size)."""
    return random_blocks(480, 640, block=12, seed=3)


@pytest.fixture(scope="session")
def small_image():
    """A quarter-resolution texture for software-pipeline micro-benchmarks."""
    return random_blocks(240, 320, block=12, seed=4)


@pytest.fixture(scope="session")
def bench_slam_config():
    """SLAM configuration used by the accuracy benchmarks (reduced resolution)."""
    return SlamConfig(
        extractor=ExtractorConfig(
            image_width=320,
            image_height=240,
            pyramid=PyramidConfig(num_levels=2),
            max_features=400,
        ),
        tracker=TrackerConfig(ransac_iterations=64, pose_iterations=10),
    )


@pytest.fixture(scope="session")
def bench_sequence():
    """A 10-frame fr1/desk-style sequence at 320x240 shared across benchmarks."""
    return make_sequence(
        SequenceSpec(name="fr1/desk", num_frames=10, image_width=320, image_height=240)
    )


def pytest_addoption(parser):
    """``--trace-dir <path>`` opts any bench into Chrome trace export.

    (``--trace`` itself is taken by pytest's own pdb-on-start option.)
    """
    parser.addoption(
        "--trace-dir",
        action="store",
        default=None,
        metavar="PATH",
        help=(
            "write Chrome trace-event JSON from traced benchmark runs to "
            "PATH (a directory; one file per bench).  The REPRO_TRACE "
            "environment variable is the equivalent opt-in for CI."
        ),
    )


@pytest.fixture(scope="session")
def trace_dir(request):
    """Directory for Chrome trace artifacts, or ``None`` (tracing off).

    Resolved from ``--trace-dir`` first, then the ``REPRO_TRACE``
    environment variable, so local runs (``pytest benchmarks/
    --trace-dir out/``) and
    CI (``REPRO_TRACE=bench-reports``) can collect Perfetto-loadable
    traces from any bench that serves frames.
    """
    path = request.config.getoption("--trace-dir") or os.environ.get("REPRO_TRACE")
    if not path:
        return None
    os.makedirs(path, exist_ok=True)
    return path


def export_trace_artifact(trace, trace_dir, name):
    """Write ``trace`` as Chrome trace JSON into ``trace_dir`` (if opted in).

    Returns the written path or ``None``.  ``docs/observability.md`` has
    the Perfetto how-to for the resulting file.
    """
    if trace_dir is None:
        return None
    path = os.path.join(trace_dir, name)
    return trace.export_chrome_trace(path)
