"""Telemetry overhead: tracing + metrics must be nearly free, on or off.

The observability layer (``repro.telemetry``, ``docs/observability.md``)
is wired permanently through the serving hot paths, so its cost is a
standing tax on every reproduction number in this harness.  This report
measures that tax on the 2-worker cluster smoke workload in two modes —
telemetry **disabled** (the default: every tracer entry point is a guarded
no-op) and **enabled** (producer + worker span recording, span shipping on
the result queue, clock calibration) — and holds both to hard bars:

* **enabled** tracing + metrics costs less than ~3% of disabled-mode
  cluster throughput (best-of-``TIMING_REPEATS`` per mode damps runner
  noise);
* a traced 16-frame run produces a **structurally valid** Chrome trace:
  spans per (track, thread) are monotonic and non-overlapping
  (``Trace.validate()``), and every completed frame has submit→resolve
  coverage (``Trace.frame_coverage()``);
* traced results are **bit-identical** to an untraced run of the same
  frames (``feature_records()``), for every registered engine pair.

Set ``BENCH_REPORT_DIR`` to also write ``bench_telemetry_overhead.json``
plus the exported Chrome trace and a Prometheus text snapshot (CI uploads
all three as artifacts); ``--trace <dir>`` / ``REPRO_TRACE`` additionally
copies the trace into the shared trace-artifact directory.
"""

import json
import os
import time

import pytest

from repro.cluster import ClusterServer
from repro.config import ExtractorConfig, PyramidConfig
from repro.image import random_blocks
from repro.telemetry import Tracer, load_chrome_trace

from conftest import export_trace_artifact, print_section, write_report_file

NUM_FRAMES = 24
TRACED_FRAMES = 16
NUM_WORKERS = 2
#: Timed passes per mode; best-of-N damps shared-runner noise.
TIMING_REPEATS = 3
#: Enabled tracing may cost at most this fraction of disabled throughput.
MAX_ENABLED_OVERHEAD = 0.03


@pytest.fixture(scope="module")
def overhead_config():
    return ExtractorConfig(
        image_width=160,
        image_height=120,
        pyramid=PyramidConfig(num_levels=2),
        max_features=150,
    )


@pytest.fixture(scope="module")
def overhead_images(overhead_config):
    return [
        random_blocks(
            overhead_config.image_height,
            overhead_config.image_width,
            block=9,
            seed=seed,
        )
        for seed in range(NUM_FRAMES)
    ]


def _best_throughput(config, images, tracer):
    """Best-of-``TIMING_REPEATS`` fps for one telemetry mode."""
    best_s = float("inf")
    with ClusterServer(config, num_workers=NUM_WORKERS, tracer=tracer) as server:
        server.extract_many(images[:NUM_WORKERS])  # warm every worker engine
        for _ in range(TIMING_REPEATS):
            start = time.perf_counter()
            server.extract_many(images)
            best_s = min(best_s, time.perf_counter() - start)
        if tracer is not None and tracer.enabled:
            server.trace()  # fold the producer spans in before close
    return len(images) / best_s


def test_telemetry_overhead_report(overhead_config, overhead_images, trace_dir):
    """Overhead bars + structural trace validation + bit-identity."""
    report_dir = os.environ.get("BENCH_REPORT_DIR")

    # -- throughput: disabled vs enabled -----------------------------------
    disabled_fps = _best_throughput(overhead_config, overhead_images, tracer=None)
    enabled_fps = _best_throughput(
        overhead_config, overhead_images, Tracer(enabled=True, track="server")
    )
    overhead = 1.0 - enabled_fps / disabled_fps if disabled_fps else 0.0

    # -- traced 16-frame run: valid trace, full coverage, bit-identity -----
    frames = overhead_images[:TRACED_FRAMES]
    frame_ids = list(range(1000, 1000 + TRACED_FRAMES))
    with ClusterServer(overhead_config, num_workers=NUM_WORKERS) as server:
        untraced = server.extract_many(frames, frame_ids=frame_ids)
    tracer = Tracer(enabled=True, track="server")
    with ClusterServer(
        overhead_config, num_workers=NUM_WORKERS, tracer=tracer
    ) as server:
        traced = server.extract_many(frames, frame_ids=frame_ids)
        trace = server.trace()
        prometheus_text = server.registry.prometheus_text()
    for untraced_result, traced_result in zip(untraced, traced):
        assert (
            untraced_result.feature_records() == traced_result.feature_records()
        ), "tracing changed extraction output"

    problems = trace.validate()
    assert problems == [], f"structurally invalid trace: {problems}"
    coverage = trace.frame_coverage()
    uncovered = [frame for frame, row in coverage.items() if not row["covered"]]
    assert not uncovered, f"frames missing submit->resolve coverage: {uncovered}"
    assert len(coverage) == TRACED_FRAMES

    trace_path = None
    if report_dir:
        os.makedirs(report_dir, exist_ok=True)
        trace_path = trace.export_chrome_trace(
            os.path.join(report_dir, "bench_telemetry_trace.json")
        )
        assert load_chrome_trace(trace_path)["traceEvents"]
        with open(
            os.path.join(report_dir, "bench_telemetry_metrics.prom"), "w"
        ) as handle:
            handle.write(prometheus_text)
    export_trace_artifact(trace, trace_dir, "bench_telemetry_overhead.json")

    report = {
        "num_workers": NUM_WORKERS,
        "frames": NUM_FRAMES,
        "timing_repeats": TIMING_REPEATS,
        "disabled_fps": disabled_fps,
        "enabled_fps": enabled_fps,
        "enabled_overhead_fraction": overhead,
        "max_enabled_overhead": MAX_ENABLED_OVERHEAD,
        "traced_frames": TRACED_FRAMES,
        "trace_tracks": trace.tracks(),
        "trace_valid": True,
        "frames_covered": len(coverage) - len(uncovered),
        "chrome_trace": trace_path,
    }
    print_section("Telemetry overhead (2-worker cluster smoke)")
    print(json.dumps(report, indent=2))
    write_report_file("bench_telemetry_overhead.json", report)

    # the throughput bar last, so the report JSON always lands even when a
    # noisy runner trips it
    assert enabled_fps >= (1.0 - MAX_ENABLED_OVERHEAD) * disabled_fps, (
        f"enabled telemetry costs {overhead:.1%} "
        f"(> {MAX_ENABLED_OVERHEAD:.0%}) of cluster throughput"
    )
