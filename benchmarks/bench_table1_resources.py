"""Table 1: FPGA resource utilisation of eSLAM on the Zynq XCZ7045.

Paper values: 56954 LUT (26.0%), 67809 FF (15.5%), 111 DSP (12.3%),
78 BRAM (14.3%).  The benchmark times the resource estimation itself and
prints the per-module breakdown plus the paper-vs-model comparison.
"""

from repro.analysis import format_comparison, format_table, run_table1_resources
from repro.hw import DeviceCapacity, ResourceModel

from conftest import print_section


def test_table1_resource_utilization(benchmark):
    result = benchmark(run_table1_resources)
    print_section("Table 1: FPGA resource utilisation (model vs paper)")
    print(format_table(result["per_module"], title="Per-module estimate"))
    paper = result["paper"]
    totals = result["totals"]
    utilization = result["utilization_percent"]
    for resource in ("LUT", "FF", "DSP", "BRAM"):
        print(format_comparison(f"{resource} count", paper[resource], totals[resource]))
        print(
            format_comparison(
                f"{resource} utilisation",
                paper[f"{resource}_percent"],
                utilization[resource],
                unit="%",
            )
        )
    assert totals == {"LUT": 56954, "FF": 67809, "DSP": 111, "BRAM": 78}
    assert result["fits_xc7z045"]


def test_table1_design_fits_smaller_zynq_devices(benchmark):
    """Section 4.1: only ~1/4 of the XCZ7045 is used, so smaller parts are feasible."""

    def check():
        report = ResourceModel().estimate()
        return {
            "xc7z045": report.fits(DeviceCapacity.xc7z045()),
            "xc7z020": report.fits(DeviceCapacity.xc7z020()),
            "lut_fraction_of_7z045": report.totals().luts / DeviceCapacity.xc7z045().luts,
        }

    result = benchmark(check)
    print_section("Table 1 follow-up: prototyping on smaller SoCs")
    print(f"fits XC7Z045: {result['xc7z045']}")
    print(f"fits XC7Z020: {result['xc7z020']} (LUT-bound, as the paper's 1/4-utilisation remark implies)")
    assert result["xc7z045"]
    assert result["lut_fraction_of_7z045"] < 0.3
