"""Micro-benchmarks of the software kernels underlying the pipeline.

These are not paper tables; they characterise the Python substrate itself
(FAST detection, descriptor computation, Hamming matching, rendering) so that
regressions in the functional code are caught and the runtime models'
workload counters can be sanity-checked against real operation counts.
"""

import numpy as np

from repro.config import ExtractorConfig, PyramidConfig
from repro.features import OrbExtractor, fast_corner_mask, harris_response_map
from repro.geometry import PinholeCamera, Pose
from repro.dataset import wall_scene
from repro.matching import hamming_distance_matrix

from conftest import print_section


def test_kernel_fast_detection(benchmark, small_image):
    mask = benchmark(fast_corner_mask, small_image)
    print_section("Kernel: FAST detection (320x240)")
    print(f"  corners detected: {int(mask.sum())}")
    assert mask.sum() > 100


def test_kernel_harris_response(benchmark, small_image):
    response = benchmark(harris_response_map, small_image)
    assert response.shape == small_image.shape


def test_kernel_full_extraction(benchmark, small_image):
    config = ExtractorConfig(
        image_width=320,
        image_height=240,
        pyramid=PyramidConfig(num_levels=2),
        max_features=500,
    )
    extractor = OrbExtractor(config)
    result = benchmark.pedantic(extractor.extract, args=(small_image,), rounds=2, iterations=1)
    print_section("Kernel: full ORB extraction (320x240, 2 levels)")
    print(f"  features: {len(result.features)}, descriptors computed: "
          f"{result.profile.descriptors_computed}")
    assert len(result.features) > 100


def test_kernel_hamming_matrix(benchmark):
    rng = np.random.default_rng(0)
    frame = rng.integers(0, 256, (512, 32), dtype=np.uint8)
    global_map = rng.integers(0, 256, (1024, 32), dtype=np.uint8)
    matrix = benchmark(hamming_distance_matrix, frame, global_map)
    print_section("Kernel: Hamming distance matrix (512 x 1024 descriptors)")
    print(f"  mean distance: {matrix.mean():.1f} bits (random descriptors -> ~128)")
    assert matrix.shape == (512, 1024)
    assert 120 < matrix.mean() < 136


def test_kernel_scene_rendering(benchmark):
    scene = wall_scene()
    camera = PinholeCamera.tum_freiburg1().scaled(0.5)
    view = benchmark(scene.render, camera, Pose.identity())
    print_section("Kernel: ray-plane rendering (320x240)")
    print(f"  valid depth fraction: {view.valid_mask().mean():.2f}")
    assert view.valid_mask().all()
