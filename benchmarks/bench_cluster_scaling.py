"""Cluster scaling: process-sharded throughput vs the thread FrameServer.

The thread server keeps one engine busy from many threads, but every
Python-level stage shares the producer's GIL, so its scaling flattens near
one host core; the process cluster shards engines across workers and moves
frames through shared memory.  This report measures aggregate extraction
throughput at 1 / 2 / 4 / ``cpu_count`` workers against a 4-thread
:class:`~repro.serving.FrameServer` baseline and a plain sequential loop,
on the same batch of tiny frames, and verifies the served results stay
bit-identical to sequential extraction.  The sweep (and its hard speedup
bar) carries the ``slow`` marker; the 2-worker smoke runs in the quick
tier on every push.

``cpu_count`` is recorded in the JSON: on a single-core host every mode
collapses onto one core and the speedup columns document exactly that,
while on a multi-core host the 4-worker cluster is expected to clear **2x**
the thread server (asserted only when the host has >= 4 cores).

Set ``BENCH_REPORT_DIR`` to also write the report as
``bench_cluster_scaling.json`` (CI uploads these as artifacts).
"""

import json
import os
import time

import pytest

from repro.cluster import ClusterServer
from repro.config import ExtractorConfig, PyramidConfig
from repro.features import OrbExtractor
from repro.image import random_blocks
from repro.serving import FrameServer

from conftest import print_section, write_report_file

NUM_FRAMES = 24
BASELINE_THREADS = 4
WORKER_SWEEP = [1, 2, 4]
#: Timed passes per configuration; best-of-N damps shared-runner noise.
TIMING_REPEATS = 2


def _timed_extract(server, images, **kwargs):
    """Serve the batch ``TIMING_REPEATS`` times; return (results, best seconds)."""
    best = float("inf")
    results = None
    for _ in range(TIMING_REPEATS):
        start = time.perf_counter()
        results = server.extract_many(images, **kwargs)
        best = min(best, time.perf_counter() - start)
    return results, best


def _feature_key(result):
    return result.feature_records()  # the repo-wide bit-identity key


@pytest.fixture(scope="module")
def scaling_config():
    return ExtractorConfig(
        image_width=160,
        image_height=120,
        pyramid=PyramidConfig(num_levels=2),
        max_features=150,
    )


@pytest.fixture(scope="module")
def scaling_images(scaling_config):
    return [
        random_blocks(
            scaling_config.image_height, scaling_config.image_width, block=9, seed=seed
        )
        for seed in range(NUM_FRAMES)
    ]


@pytest.mark.slow
def test_cluster_scaling_report(scaling_config, scaling_images):
    """Full worker sweep + the >=2x-at-4-workers bar (multi-core hosts).

    Runs under the ``slow`` marker: the throughput assertion is a timing
    bar, so it belongs in the dedicated slow CI step rather than the quick
    harness that gates every push (the 2-worker smoke below stays quick).
    """
    cpu_count = os.cpu_count() or 1
    sequential_extractor = OrbExtractor(scaling_config)
    sequential_s = float("inf")
    for _ in range(TIMING_REPEATS):
        start = time.perf_counter()
        sequential_results = [sequential_extractor.extract(im) for im in scaling_images]
        sequential_s = min(sequential_s, time.perf_counter() - start)

    with FrameServer(extractor=sequential_extractor, max_workers=BASELINE_THREADS) as server:
        server.extract_many(scaling_images[:BASELINE_THREADS])  # warm the pool
        thread_results, thread_s = _timed_extract(server, scaling_images)
        thread_stats = server.stats.as_dict()
    for seq_result, thread_result in zip(sequential_results, thread_results):
        assert _feature_key(seq_result) == _feature_key(thread_result)
    thread_fps = len(scaling_images) / thread_s

    worker_counts = sorted(set(WORKER_SWEEP + [cpu_count]))
    cluster_rows = []
    for workers in worker_counts:
        with ClusterServer(scaling_config, num_workers=workers) as cluster:
            # warm: every worker builds its engine before the timed window
            cluster.extract_many(scaling_images[:workers])
            cluster_results, cluster_s = _timed_extract(cluster, scaling_images)
            stats = cluster.stats.as_dict()
        for seq_result, cluster_result in zip(sequential_results, cluster_results):
            assert _feature_key(seq_result) == _feature_key(cluster_result)
        fps = len(scaling_images) / cluster_s
        cluster_rows.append(
            {
                "workers": workers,
                "throughput_fps": fps,
                "elapsed_s": cluster_s,
                "speedup_vs_frame_server": fps / thread_fps if thread_fps else 0.0,
                "speedup_vs_sequential": fps * sequential_s / len(scaling_images),
                "stats": stats,
            }
        )

    report = {
        "workload": {
            "image": f"{scaling_config.image_width}x{scaling_config.image_height}",
            "pyramid_levels": scaling_config.pyramid.num_levels,
            "max_features": scaling_config.max_features,
            "frames": len(scaling_images),
        },
        "cpu_count": cpu_count,
        "sequential_fps": len(scaling_images) / sequential_s,
        "frame_server": {
            "max_workers": BASELINE_THREADS,
            "throughput_fps": thread_fps,
            "elapsed_s": thread_s,
            "stats": thread_stats,
        },
        "cluster": cluster_rows,
    }
    print_section("cluster scaling: process shards vs thread FrameServer")
    print(json.dumps(report, indent=2))
    write_report_file("bench_cluster_scaling.json", report)

    # every configuration served the full batch, in order, bit-identically
    assert all(row["stats"]["frames_failed"] == 0 for row in cluster_rows)
    # the acceptance bar only binds where the hardware can express it: with
    # >= 4 cores the 4-worker cluster must at least double the thread server
    if cpu_count >= 4:
        at_four = next(row for row in cluster_rows if row["workers"] == 4)
        assert at_four["speedup_vs_frame_server"] >= 2.0


def test_cluster_smoke_two_workers(scaling_config, scaling_images):
    """CI smoke: a 2-worker tiny-frame run serves correctly on any host."""
    extractor = OrbExtractor(scaling_config)
    expected = [extractor.extract(image) for image in scaling_images[:4]]
    with ClusterServer(scaling_config, num_workers=2) as cluster:
        served = cluster.extract_many(scaling_images[:4])
        stats = cluster.stats
    for expected_result, served_result in zip(expected, served):
        assert _feature_key(expected_result) == _feature_key(served_result)
    assert stats.frames_completed == 4
    assert stats.frames_failed == 0
    assert stats.latency_p95_ms >= stats.latency_p50_ms > 0.0


# ---------------------------------------------------------------------------
# Skewed arrivals: load-aware routing + work stealing vs static round-robin
# ---------------------------------------------------------------------------

#: Zipf-ish shard-key pattern: key 0 dominates (8/16), then 1 (4/16),
#: 2 (2/16), 3 (2/16) — the hot-sequence arrival shape that wrecks static
#: ``by_sequence`` placement.
ZIPF_KEY_CYCLE = [0, 0, 1, 0, 0, 2, 0, 1, 0, 0, 3, 0, 1, 2, 0, 1]


def _skewed_workload(config, num_frames):
    """Alternating heavy / light frames plus Zipf-ish shard keys.

    Heavy frames (fine 3-px texture, dense corners) land on the *even*
    indices, so a 2-worker round-robin stacks every heavy frame on worker 0
    while worker 1 coasts through the light (coarse 24-px texture) frames —
    the pathological arrival pattern load-aware routing exists for.
    """
    images = [
        random_blocks(
            config.image_height,
            config.image_width,
            block=3 if index % 2 == 0 else 24,
            seed=index,
        )
        for index in range(num_frames)
    ]
    shard_keys = [ZIPF_KEY_CYCLE[index % len(ZIPF_KEY_CYCLE)] for index in range(num_frames)]
    return images, shard_keys


#: (row label, policy, work_stealing, needs shard keys) — the placement
#: strategies the skewed-arrival report compares.
SKEW_POLICY_ROWS = [
    ("round_robin", "round_robin", False, False),
    ("by_sequence_zipf", "by_sequence", False, True),
    ("by_sequence_zipf+steal", "by_sequence", True, True),
    ("least_loaded", "least_loaded", False, False),
    ("least_loaded+steal", "least_loaded", True, False),
]


def _run_skew_row(config, images, shard_keys, expected, *, workers, policy, stealing):
    """One placement strategy over the skewed batch; returns its report row."""
    with ClusterServer(
        config,
        num_workers=workers,
        policy=policy,
        max_in_flight=4 * workers,
        work_stealing=stealing,
    ) as cluster:
        # warm every worker's engine before the timed window
        cluster.extract_many(
            images[:workers],
            shard_keys=shard_keys[:workers] if shard_keys is not None else None,
        )
        results, elapsed_s = _timed_extract(cluster, images, shard_keys=shard_keys)
        stats = cluster.stats.as_dict()
    for expected_result, served_result in zip(expected, results):
        assert _feature_key(expected_result) == _feature_key(served_result)
    completed = [worker["frames_completed"] for worker in stats["workers"]]
    return {
        "policy": policy,
        "work_stealing": stealing,
        "throughput_fps": len(images) / elapsed_s,
        "elapsed_s": elapsed_s,
        "steals": stats["steals"],
        "frames_per_worker": completed,
        "imbalance": max(completed) - min(completed),
    }


def _transport_comparison(config, images, workers=2):
    """Bytes copied per frame: shared-pyramid zero-copy path vs frame ring.

    Same frames, same worker count; only ``pyramid.provider`` differs.  The
    ring path pays one ``height x width`` memcpy per frame into the shared
    slot, the zero-copy path publishes the pyramid once and hands workers a
    job id — the report shows the per-frame byte difference directly.
    """
    from dataclasses import replace

    comparison = {}
    for label, provider in (("ring", "eager"), ("zero_copy", "shared")):
        transport_config = replace(
            config,
            pyramid=replace(config.pyramid, provider=provider),
        )
        with ClusterServer(transport_config, num_workers=workers) as cluster:
            cluster.extract_many(images)
            stats = cluster.stats.as_dict()
        comparison[label] = {
            "provider": provider,
            "frames_zero_copy": stats["frames_zero_copy"],
            "frames_via_ring": stats["frames_via_ring"],
            "ring_bytes_copied": stats["ring_bytes_copied"],
            "bytes_copied_per_frame": stats["ring_bytes_copied"] / len(images),
            "publish_fallbacks": stats["publish_fallbacks"],
        }
    return comparison


@pytest.mark.slow
def test_cluster_skewed_arrival_report(scaling_config):
    """Skewed arrivals: ``least_loaded`` + stealing must beat round-robin.

    Slow tier (timing bar).  On a multi-core host the heavy-even workload
    makes static round-robin serialise every heavy frame on one worker, so
    load-aware placement with stealing has real throughput to reclaim.
    """
    cpu_count = os.cpu_count() or 1
    num_frames = 2 * NUM_FRAMES
    images, shard_keys = _skewed_workload(scaling_config, num_frames)
    extractor = OrbExtractor(scaling_config)
    expected = [extractor.extract(image) for image in images]

    rows = []
    for label, policy, stealing, needs_keys in SKEW_POLICY_ROWS:
        row = _run_skew_row(
            scaling_config,
            images,
            shard_keys if needs_keys else None,
            expected,
            workers=2,
            policy=policy,
            stealing=stealing,
        )
        row["label"] = label
        rows.append(row)

    report = {
        "cpu_count": cpu_count,
        "workload": {
            "frames": num_frames,
            "heavy_frame_indices": "even (block=3)",
            "light_frame_indices": "odd (block=24)",
            "zipf_key_cycle": ZIPF_KEY_CYCLE,
        },
        "rows": rows,
        "transport": _transport_comparison(scaling_config, images[:12]),
    }
    print_section("cluster skewed arrivals: routing policy x work stealing")
    print(json.dumps(report, indent=2))
    write_report_file("bench_cluster_skew.json", report)

    by_label = {row["label"]: row for row in rows}
    assert all(row["steals"] == 0 for row in rows if not row["work_stealing"])
    # the zero-copy fast path moves measurably fewer bytes per frame
    transport = report["transport"]
    assert (
        transport["zero_copy"]["bytes_copied_per_frame"]
        < transport["ring"]["bytes_copied_per_frame"]
    )
    # the timing bar only binds where the hardware can express parallelism
    if cpu_count >= 2:
        assert (
            by_label["least_loaded+steal"]["throughput_fps"]
            > by_label["round_robin"]["throughput_fps"]
        )


def test_cluster_skewed_smoke_two_workers(scaling_config):
    """CI quick tier: the skewed 2-worker workload end to end on any host.

    No timing bar (single-core CI runners cannot express one) — asserts
    correctness, that stealing actually fires under the skew, and that the
    zero-copy transport copies measurably fewer bytes per frame than the
    ring; the JSON report is uploaded as a CI artifact.
    """
    num_frames = 16
    images, shard_keys = _skewed_workload(scaling_config, num_frames)
    extractor = OrbExtractor(scaling_config)
    expected = [extractor.extract(image) for image in images]

    rows = []
    for label, policy, stealing, needs_keys in (
        ("round_robin", "round_robin", False, False),
        ("by_sequence_zipf+steal", "by_sequence", True, True),
        ("least_loaded+steal", "least_loaded", True, False),
    ):
        row = _run_skew_row(
            scaling_config,
            images,
            shard_keys if needs_keys else None,
            expected,
            workers=2,
            policy=policy,
            stealing=stealing,
        )
        row["label"] = label
        rows.append(row)

    transport = _transport_comparison(scaling_config, images[:8])
    report = {
        "cpu_count": os.cpu_count() or 1,
        "workload": {"frames": num_frames, "zipf_key_cycle": ZIPF_KEY_CYCLE},
        "rows": rows,
        "transport": transport,
    }
    print_section("cluster skewed smoke: 2 workers, quick tier")
    print(json.dumps(report, indent=2))
    write_report_file("bench_cluster_skew_smoke.json", report)

    by_label = {row["label"]: row for row in rows}
    assert by_label["round_robin"]["steals"] == 0
    # the Zipf hot key pins every hot frame to one worker: stealing must
    # actually fire to spread the backlog
    assert by_label["by_sequence_zipf+steal"]["steals"] > 0
    assert by_label["by_sequence_zipf+steal"]["imbalance"] < num_frames
    assert transport["zero_copy"]["frames_zero_copy"] == 8
    assert transport["zero_copy"]["publish_fallbacks"] == 0
    assert (
        transport["zero_copy"]["bytes_copied_per_frame"]
        < transport["ring"]["bytes_copied_per_frame"]
    )
