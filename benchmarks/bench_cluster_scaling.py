"""Cluster scaling: process-sharded throughput vs the thread FrameServer.

The thread server keeps one engine busy from many threads, but every
Python-level stage shares the producer's GIL, so its scaling flattens near
one host core; the process cluster shards engines across workers and moves
frames through shared memory.  This report measures aggregate extraction
throughput at 1 / 2 / 4 / ``cpu_count`` workers against a 4-thread
:class:`~repro.serving.FrameServer` baseline and a plain sequential loop,
on the same batch of tiny frames, and verifies the served results stay
bit-identical to sequential extraction.  The sweep (and its hard speedup
bar) carries the ``slow`` marker; the 2-worker smoke runs in the quick
tier on every push.

``cpu_count`` is recorded in the JSON: on a single-core host every mode
collapses onto one core and the speedup columns document exactly that,
while on a multi-core host the 4-worker cluster is expected to clear **2x**
the thread server (asserted only when the host has >= 4 cores).

Set ``BENCH_REPORT_DIR`` to also write the report as
``bench_cluster_scaling.json`` (CI uploads these as artifacts).
"""

import json
import os
import time

import pytest

from repro.cluster import ClusterServer
from repro.config import ExtractorConfig, PyramidConfig
from repro.features import OrbExtractor
from repro.image import random_blocks
from repro.serving import FrameServer

from conftest import print_section, write_report_file

NUM_FRAMES = 24
BASELINE_THREADS = 4
WORKER_SWEEP = [1, 2, 4]
#: Timed passes per configuration; best-of-N damps shared-runner noise.
TIMING_REPEATS = 2


def _timed_extract(server, images, **kwargs):
    """Serve the batch ``TIMING_REPEATS`` times; return (results, best seconds)."""
    best = float("inf")
    results = None
    for _ in range(TIMING_REPEATS):
        start = time.perf_counter()
        results = server.extract_many(images, **kwargs)
        best = min(best, time.perf_counter() - start)
    return results, best


def _feature_key(result):
    return result.feature_records()  # the repo-wide bit-identity key


@pytest.fixture(scope="module")
def scaling_config():
    return ExtractorConfig(
        image_width=160,
        image_height=120,
        pyramid=PyramidConfig(num_levels=2),
        max_features=150,
    )


@pytest.fixture(scope="module")
def scaling_images(scaling_config):
    return [
        random_blocks(
            scaling_config.image_height, scaling_config.image_width, block=9, seed=seed
        )
        for seed in range(NUM_FRAMES)
    ]


@pytest.mark.slow
def test_cluster_scaling_report(scaling_config, scaling_images):
    """Full worker sweep + the >=2x-at-4-workers bar (multi-core hosts).

    Runs under the ``slow`` marker: the throughput assertion is a timing
    bar, so it belongs in the dedicated slow CI step rather than the quick
    harness that gates every push (the 2-worker smoke below stays quick).
    """
    cpu_count = os.cpu_count() or 1
    sequential_extractor = OrbExtractor(scaling_config)
    sequential_s = float("inf")
    for _ in range(TIMING_REPEATS):
        start = time.perf_counter()
        sequential_results = [sequential_extractor.extract(im) for im in scaling_images]
        sequential_s = min(sequential_s, time.perf_counter() - start)

    with FrameServer(extractor=sequential_extractor, max_workers=BASELINE_THREADS) as server:
        server.extract_many(scaling_images[:BASELINE_THREADS])  # warm the pool
        thread_results, thread_s = _timed_extract(server, scaling_images)
        thread_stats = server.stats.as_dict()
    for seq_result, thread_result in zip(sequential_results, thread_results):
        assert _feature_key(seq_result) == _feature_key(thread_result)
    thread_fps = len(scaling_images) / thread_s

    worker_counts = sorted(set(WORKER_SWEEP + [cpu_count]))
    cluster_rows = []
    for workers in worker_counts:
        with ClusterServer(scaling_config, num_workers=workers) as cluster:
            # warm: every worker builds its engine before the timed window
            cluster.extract_many(scaling_images[:workers])
            cluster_results, cluster_s = _timed_extract(cluster, scaling_images)
            stats = cluster.stats.as_dict()
        for seq_result, cluster_result in zip(sequential_results, cluster_results):
            assert _feature_key(seq_result) == _feature_key(cluster_result)
        fps = len(scaling_images) / cluster_s
        cluster_rows.append(
            {
                "workers": workers,
                "throughput_fps": fps,
                "elapsed_s": cluster_s,
                "speedup_vs_frame_server": fps / thread_fps if thread_fps else 0.0,
                "speedup_vs_sequential": fps * sequential_s / len(scaling_images),
                "stats": stats,
            }
        )

    report = {
        "workload": {
            "image": f"{scaling_config.image_width}x{scaling_config.image_height}",
            "pyramid_levels": scaling_config.pyramid.num_levels,
            "max_features": scaling_config.max_features,
            "frames": len(scaling_images),
        },
        "cpu_count": cpu_count,
        "sequential_fps": len(scaling_images) / sequential_s,
        "frame_server": {
            "max_workers": BASELINE_THREADS,
            "throughput_fps": thread_fps,
            "elapsed_s": thread_s,
            "stats": thread_stats,
        },
        "cluster": cluster_rows,
    }
    print_section("cluster scaling: process shards vs thread FrameServer")
    print(json.dumps(report, indent=2))
    write_report_file("bench_cluster_scaling.json", report)

    # every configuration served the full batch, in order, bit-identically
    assert all(row["stats"]["frames_failed"] == 0 for row in cluster_rows)
    # the acceptance bar only binds where the hardware can express it: with
    # >= 4 cores the 4-worker cluster must at least double the thread server
    if cpu_count >= 4:
        at_four = next(row for row in cluster_rows if row["workers"] == 4)
        assert at_four["speedup_vs_frame_server"] >= 2.0


def test_cluster_smoke_two_workers(scaling_config, scaling_images):
    """CI smoke: a 2-worker tiny-frame run serves correctly on any host."""
    extractor = OrbExtractor(scaling_config)
    expected = [extractor.extract(image) for image in scaling_images[:4]]
    with ClusterServer(scaling_config, num_workers=2) as cluster:
        served = cluster.extract_many(scaling_images[:4])
        stats = cluster.stats
    for expected_result, served_result in zip(expected, served):
        assert _feature_key(expected_result) == _feature_key(served_result)
    assert stats.frames_completed == 4
    assert stats.frames_failed == 0
    assert stats.latency_p95_ms >= stats.latency_p50_ms > 0.0
