"""Front-end speedup: reference vs vectorized detection engine throughput.

Times the two registered detection engines per stage (FAST, Harris, NMS,
smoothing) and fused (``detect`` + ``smooth``, the full level-0 front-end)
on the same workloads, and prints the comparison as a JSON report.  The
acceptance bar is a >= 4x fused speedup on the VGA level-0 workload while
``tests/test_frontend_parity.py`` proves the outputs are bit-identical
(tier-1 also enforces a 2x bar on a small workload, see
``TestFrontendSpeedup`` there).

Run the quarter-resolution workload with ``pytest benchmarks/`` and the full
VGA workload with ``pytest -m slow benchmarks/`` (it carries the ``slow``
marker).  Alongside the engine comparison the report also times end-to-end
extraction and the :class:`~repro.serving.FrameServer` multi-frame path, so
the ``BENCH_*.json`` trajectory gets front-end and serving baselines.
"""

import json
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.config import ExtractorConfig, PyramidConfig
from repro.features import OrbExtractor
from repro.features.fast import fast_corner_mask
from repro.features.harris import harris_response_map, harris_scores_sparse
from repro.features.nms import non_maximum_suppression, suppress_keypoints_sparse
from repro.frontend import create_engine
from repro.image import gaussian_blur
from repro.serving import FrameServer

from conftest import print_section


def _best_of(callable_, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _reference_stage_times(config, image):
    """Per-stage timings of the dense reference pipeline."""
    mask = fast_corner_mask(image, config.fast)
    scores = harris_response_map(image)
    return {
        "fast_s": _best_of(lambda: fast_corner_mask(image, config.fast)),
        "harris_s": _best_of(lambda: harris_response_map(image)),
        "nms_s": _best_of(lambda: non_maximum_suppression(mask, scores, radius=1)),
        "smooth_s": _best_of(lambda: gaussian_blur(image)),
    }


def _vectorized_stage_times(config, image):
    """Per-stage timings of the fused vectorized engine."""
    engine = create_engine("vectorized", config)
    workspace = engine._workspace()
    engine.detect_with_count(image)  # warm-up (allocates scratch)
    xs, ys = engine._fast_corners(image, workspace)
    scores = harris_scores_sparse(image, xs, ys, workspace=workspace)
    return {
        "fast_s": _best_of(lambda: engine._fast_corners(image, workspace)),
        "harris_s": _best_of(
            lambda: harris_scores_sparse(image, xs, ys, workspace=workspace)
        ),
        "nms_s": _best_of(
            lambda: suppress_keypoints_sparse(
                xs, ys, scores, image.shape, radius=1, workspace=workspace
            )
        ),
        "smooth_s": _best_of(lambda: engine.smooth(image)),
    }


def _fused_time(name, config, image):
    """Fused level-0 front-end time (detect + smooth) for one engine."""
    engine = create_engine(name, config)
    engine.detect_with_count(image)
    engine.smooth(image)  # warm-up

    def run():
        engine.detect_with_count(image)
        engine.smooth(image)

    return _best_of(run, repeats=7)


def _extraction_time(config, image):
    extractor = OrbExtractor(config)
    extractor.extract(image)  # warm-up
    return _best_of(lambda: extractor.extract(image), repeats=3)


def _serving_report(config, image, num_frames=8, max_workers=4):
    """Frames/s sequential vs through a FrameServer sharing one engine.

    The server's wall-clock win scales with available cores (numpy releases
    the GIL inside its kernels); on a single-core host the pool only adds
    dispatch overhead, so the report records ``cpu_count`` next to the
    ratio and the benchmark asserts identity-of-results elsewhere rather
    than a threading speedup.
    """
    import os

    extractor = OrbExtractor(config)
    images = [image] * num_frames
    extractor.extract(image)  # warm-up

    def sequential():
        for frame in images:
            extractor.extract(frame)

    sequential_s = _best_of(sequential, repeats=2)
    with FrameServer(extractor=extractor, max_workers=max_workers) as server:
        server.extract_many(images)  # warm the pool

        def served():
            server.extract_many(images)

        served_s = _best_of(served, repeats=2)
    return {
        "frames": num_frames,
        "max_workers": max_workers,
        "cpu_count": os.cpu_count(),
        "sequential_fps": num_frames / sequential_s,
        "served_fps": num_frames / served_s,
        "speedup": sequential_s / served_s,
    }


def _speedup_report(config, image, workload_name):
    reference = _reference_stage_times(config, image)
    vectorized = _vectorized_stage_times(config, image)
    fused_reference = _fused_time("reference", config, image)
    fused_vectorized = _fused_time("vectorized", config, image)
    corners = int(fast_corner_mask(image, config.fast).sum())
    per_stage = {
        stage: {
            "reference_ms": reference[f"{stage}_s"] * 1e3,
            "vectorized_ms": vectorized[f"{stage}_s"] * 1e3,
            "speedup": reference[f"{stage}_s"] / vectorized[f"{stage}_s"],
        }
        for stage in ("fast", "harris", "nms", "smooth")
    }
    return {
        "workload": {
            "name": workload_name,
            "image": f"{image.width}x{image.height}",
            "fast_corners": corners,
        },
        "per_stage": per_stage,
        "fused_front_end": {
            "reference_ms": fused_reference * 1e3,
            "vectorized_ms": fused_vectorized * 1e3,
            "speedup": fused_reference / fused_vectorized,
        },
        "full_extraction": {
            "reference_s": _extraction_time(replace(config, frontend="reference"), image),
            "vectorized_s": _extraction_time(replace(config, frontend="vectorized"), image),
        },
        "serving": _serving_report(config, image),
    }


def test_frontend_speedup_quarter_resolution(small_image):
    config = ExtractorConfig(
        image_width=320,
        image_height=240,
        pyramid=PyramidConfig(num_levels=2),
        max_features=500,
    )
    report = _speedup_report(config, small_image, "frontend-320x240")
    print_section("Front-end speedup: reference vs vectorized (320x240)")
    print(json.dumps(report, indent=2))
    # the quarter-res bar is softer (fewer pixels amortise fixed costs less)
    assert report["fused_front_end"]["speedup"] >= 2.0
    assert report["serving"]["served_fps"] > 0


@pytest.mark.slow
def test_frontend_speedup_vga(vga_image):
    """Full paper-scale workload: 640x480 level-0, the acceptance bar."""
    config = ExtractorConfig()
    report = _speedup_report(config, vga_image, "frontend-640x480")
    print_section("Front-end speedup: reference vs vectorized (640x480)")
    print(json.dumps(report, indent=2))
    # acceptance bar: the fused FAST+Harris+NMS+blur pass is >= 4x faster,
    # with bit-identical outputs (tests/test_frontend_parity.py)
    assert report["fused_front_end"]["speedup"] >= 4.0


@pytest.mark.slow
def test_frontend_parity_on_bench_workload(vga_image):
    """The bench workload itself is checked for bit-identical retained output."""
    config = ExtractorConfig()
    reference = create_engine("reference", config)
    vectorized = create_engine("vectorized", config)
    ref = reference.detect_with_count(vga_image)
    vec = vectorized.detect_with_count(vga_image)
    assert ref[3] == vec[3]
    assert np.array_equal(ref[0], vec[0])
    assert np.array_equal(ref[1], vec[1])
    assert ref[2].tobytes() == vec[2].tobytes()
    assert np.array_equal(
        reference.smooth(vga_image).pixels, vectorized.smooth(vga_image).pixels
    )
