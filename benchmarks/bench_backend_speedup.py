"""Backend speedup: reference vs vectorized keypoint compute throughput.

Times the two registered keypoint compute backends on the same detected ORB
candidate sets and on full-frame extraction, and prints the comparison as a
JSON report (keypoints/s through the compute engine, frames/s end to end).
The acceptance bar is a >= 5x compute-engine speedup for the ``vectorized``
backend while ``tests/test_backends_parity.py`` proves the outputs are
bit-identical (tier-1 also enforces the bar on a small workload, see
``TestComputeEngineSpeedup`` there).

Run the quarter-resolution workload with ``pytest benchmarks/`` and the full
VGA 4-level workload with ``pytest -m slow benchmarks/`` (it carries the
``slow`` marker).
"""

import json
import time
from dataclasses import replace

import pytest

from repro.backends import create_backend
from repro.config import ExtractorConfig, PyramidConfig
from repro.features import OrbExtractor
from repro.features.orb import ExtractionProfile
from repro.image import ImagePyramid, gaussian_blur

from conftest import print_section


def _detect_candidates(config: ExtractorConfig, image):
    """Run the shared detection front-end once; return per-level candidates."""
    extractor = OrbExtractor(config)
    pyramid = ImagePyramid(image, config.pyramid)
    levels = []
    profile = ExtractionProfile()
    for level in pyramid:
        smoothed = gaussian_blur(level.image)
        xs, ys, scores = extractor._detect_level_candidates(level.image, level.level, profile)
        if xs.size:
            levels.append((smoothed, xs, ys, scores))
    return levels


def _time_backend(name: str, config: ExtractorConfig, levels, repeats: int = 3):
    """Best-of-N time for describing every level's candidates with ``name``."""
    backend = create_backend(name, config)
    keypoints = sum(xs.size for _, xs, ys, _ in levels)
    for smoothed, xs, ys, scores in levels:  # warm-up pass
        backend.describe(smoothed, xs, ys, scores)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for smoothed, xs, ys, scores in levels:
            backend.describe(smoothed, xs, ys, scores)
        best = min(best, time.perf_counter() - start)
    return {
        "keypoints": keypoints,
        "seconds": best,
        "keypoints_per_s": keypoints / best if best > 0 else 0.0,
    }


def _time_extraction(config: ExtractorConfig, image, repeats: int = 2):
    """Best-of-N full-frame extraction time (detection + backend + filter)."""
    extractor = OrbExtractor(config)
    extractor.extract(image)  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        result = extractor.extract(image)
        best = min(best, time.perf_counter() - start)
    return {
        "seconds": best,
        "frames_per_s": 1.0 / best if best > 0 else 0.0,
        "features": len(result.features),
    }


def _speedup_report(config: ExtractorConfig, image, workload_name: str):
    levels = _detect_candidates(config, image)
    reference = _time_backend("reference", config, levels)
    vectorized = _time_backend("vectorized", config, levels)
    full_reference = _time_extraction(replace(config, backend="reference"), image)
    full_vectorized = _time_extraction(replace(config, backend="vectorized"), image)
    return {
        "workload": {
            "name": workload_name,
            "image": f"{config.image_width}x{config.image_height}",
            "pyramid_levels": config.pyramid.num_levels,
            "max_features": config.max_features,
            "candidate_keypoints": reference["keypoints"],
        },
        "compute_engine": {
            "reference_keypoints_per_s": reference["keypoints_per_s"],
            "vectorized_keypoints_per_s": vectorized["keypoints_per_s"],
            "speedup": reference["seconds"] / vectorized["seconds"],
        },
        "full_extraction": {
            "reference_frames_per_s": full_reference["frames_per_s"],
            "vectorized_frames_per_s": full_vectorized["frames_per_s"],
            "speedup": full_reference["seconds"] / full_vectorized["seconds"],
        },
    }


def test_backend_speedup_quarter_resolution(small_image):
    config = ExtractorConfig(
        image_width=320,
        image_height=240,
        pyramid=PyramidConfig(num_levels=2),
        max_features=500,
    )
    report = _speedup_report(config, small_image, "orb-extraction-320x240")
    print_section("Backend speedup: reference vs vectorized (320x240, 2 levels)")
    print(json.dumps(report, indent=2))
    # acceptance bar: the batched compute engine is >= 5x the scalar path
    assert report["compute_engine"]["speedup"] >= 5.0
    # the end-to-end frame rate must improve too (detection is shared)
    assert report["full_extraction"]["speedup"] > 1.2


@pytest.mark.slow
def test_backend_speedup_vga(vga_image):
    """Full paper-scale workload: 640x480, 4 pyramid levels, 1024 features."""
    config = ExtractorConfig()
    report = _speedup_report(config, vga_image, "orb-extraction-640x480")
    print_section("Backend speedup: reference vs vectorized (640x480, 4 levels)")
    print(json.dumps(report, indent=2))
    assert report["compute_engine"]["speedup"] >= 5.0
