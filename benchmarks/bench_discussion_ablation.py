"""Section 3.1 / 4.4 ablations: workflow rescheduling, pyramid depth, RS-BRIEF cost.

The discussion section credits eSLAM's FE latency advantage (39% lower than
the prior FPGA ORB extractor [4] despite processing 48% more pixels) to the
rescheduled streaming workflow and the RS-BRIEF descriptor.  These benchmarks
quantify each design choice with the accelerator model.
"""

from repro.analysis import run_pyramid_ablation, run_rescheduling_ablation
from repro.config import AcceleratorConfig, ExtractorConfig
from repro.hw import BriefMatcherAccelerator, EslamAccelerator
from repro.image import GrayImage

from conftest import print_section


def test_discussion_workflow_rescheduling(benchmark, vga_image):
    result = benchmark.pedantic(
        run_rescheduling_ablation, args=(vga_image,), rounds=1, iterations=1
    )
    print_section("Ablation: rescheduled vs original extractor workflow (Section 3.1)")
    for label in ("rescheduled", "original"):
        entry = result[label]
        print(
            f"  {label:<12s} latency {entry['latency_ms']:6.2f} ms, "
            f"on-chip buffering {entry['on_chip_bytes'] / 1024:8.1f} KiB"
        )
    print(f"  latency reduction: {result['latency_reduction_percent']:.1f}%")
    print("  (the paper credits rescheduling + RS-BRIEF for a 39% latency advantage over [4])")
    assert result["latency_reduction_percent"] > 15
    assert result["rescheduled"]["on_chip_bytes"] < result["original"]["on_chip_bytes"]


def test_discussion_pyramid_depth(benchmark):
    result = benchmark(run_pyramid_ablation)
    print_section("Ablation: 4-layer vs 2-layer pyramid (Section 4.4)")
    print(
        f"  extra pixels processed by 4 layers: {result['extra_pixels_percent']:.1f}% "
        f"(paper: ~{result['paper_extra_pixels_percent']:.0f}%)"
    )
    assert abs(result["extra_pixels_percent"] - 48.0) < 1.5


def test_discussion_heap_capacity_sweep(benchmark):
    """How the retained-feature budget moves FE latency (heap N = 1024 in the paper)."""

    def sweep():
        blank = GrayImage.zeros(480, 640)
        latencies = {}
        for capacity in (256, 512, 1024, 2048):
            accel = EslamAccelerator(
                extractor_config=ExtractorConfig(max_features=capacity),
                accel_config=AcceleratorConfig(heap_capacity=capacity),
            )
            latencies[capacity] = accel.extractor.latency_from_profile(
                blank, keypoints_after_nms=3000, descriptors_computed=3000
            ).latency_ms
        return latencies

    latencies = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_section("Ablation: heap capacity vs FE latency")
    for capacity, latency in latencies.items():
        print(f"  N = {capacity:5d}: {latency:6.2f} ms")
    # latency grows only mildly with the heap budget (write-back dominated)
    assert latencies[2048] > latencies[256]
    assert latencies[2048] < 1.3 * latencies[256]


def test_discussion_matcher_parallelism_sweep(benchmark):
    """FM latency vs the number of Hamming-distance lanes."""

    def sweep():
        return {
            lanes: BriefMatcherAccelerator(
                AcceleratorConfig(matcher_parallelism=lanes)
            ).latency_for(1024, 1500).latency_ms
            for lanes in (1, 2, 4, 8, 16)
        }

    latencies = benchmark(sweep)
    print_section("Ablation: BRIEF Matcher parallelism vs FM latency")
    for lanes, latency in latencies.items():
        print(f"  {lanes:2d} lanes: {latency:6.2f} ms")
    assert latencies[1] > latencies[4] > latencies[16]
    # 4 lanes is the configuration that lands on the paper's 4 ms figure
    assert abs(latencies[4] - 4.0) / 4.0 < 0.2


def test_discussion_map_size_sweep(benchmark):
    """FM latency scales linearly with the global-map size (the matcher is O(N*M))."""

    def sweep():
        matcher = BriefMatcherAccelerator()
        return {
            map_points: matcher.latency_for(1024, map_points).latency_ms
            for map_points in (500, 1000, 1500, 3000)
        }

    latencies = benchmark(sweep)
    print_section("Ablation: global-map size vs FM latency")
    for map_points, latency in latencies.items():
        print(f"  {map_points:5d} map points: {latency:6.2f} ms")
    assert latencies[3000] > 1.8 * latencies[1500] * 0.9
