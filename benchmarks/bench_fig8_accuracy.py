"""Figure 8: average trajectory error of RS-BRIEF vs original ORB.

The paper runs both descriptor variants through the same SLAM pipeline on
five TUM sequences and reports per-sequence average trajectory error, with
overall means of 4.3 cm (RS-BRIEF) and 4.16 cm (original ORB) -- i.e. the two
are comparable, with RS-BRIEF better on some sequences and worse on others.

Offline we substitute synthetic TUM-style sequences (see DESIGN.md), so the
absolute centimetre values differ; the reproduced claim is the *relationship*:
both descriptors track successfully and their errors are comparable.  The
full five-sequence sweep at 640x480 takes minutes, so the benchmark runs a
reduced configuration (three sequences, 320x240, 10 frames); the example
script ``examples/accuracy_comparison.py`` runs the full sweep.
"""

import pytest

from repro.analysis import format_table, run_fig8_accuracy

from conftest import print_section

PAPER_MEAN_RS_BRIEF_CM = 4.3
PAPER_MEAN_ORIGINAL_CM = 4.16


@pytest.mark.parametrize("sequences", [["fr1/xyz", "fr1/desk", "fr2/rpy"]])
def test_fig8_rs_brief_vs_original_orb(benchmark, sequences):
    rows = benchmark.pedantic(
        run_fig8_accuracy,
        kwargs={
            "num_frames": 10,
            "image_width": 320,
            "image_height": 240,
            "sequences": sequences,
        },
        rounds=1,
        iterations=1,
    )
    print_section("Figure 8: average trajectory error, RS-BRIEF vs original ORB")
    table = [
        {
            "sequence": row.sequence,
            "RS-BRIEF (cm)": row.rs_brief_error_cm,
            "original ORB (cm)": row.original_orb_error_cm,
            "relative diff": row.relative_difference,
        }
        for row in rows
    ]
    print(format_table(table))
    mean_rs = sum(r.rs_brief_error_cm for r in rows) / len(rows)
    mean_orb = sum(r.original_orb_error_cm for r in rows) / len(rows)
    print(
        f"\nmeans: RS-BRIEF {mean_rs:.2f} cm, original ORB {mean_orb:.2f} cm "
        f"(paper: {PAPER_MEAN_RS_BRIEF_CM} cm vs {PAPER_MEAN_ORIGINAL_CM} cm on real TUM data)"
    )
    print(
        "paper relationship to reproduce: the two descriptors are comparable "
        f"(paper ratio {PAPER_MEAN_RS_BRIEF_CM / PAPER_MEAN_ORIGINAL_CM:.2f}, "
        f"measured ratio {(mean_rs + 1e-9) / (mean_orb + 1e-9):.2f})"
    )
    # both descriptors must track successfully on every sequence
    for row in rows:
        assert row.rs_brief_error_cm < 15.0
        assert row.original_orb_error_cm < 15.0
    # and their overall accuracy must be comparable (within a factor of ~2.5,
    # a loose bound that still catches a broken descriptor path)
    assert 0.4 < (mean_rs + 0.05) / (mean_orb + 0.05) < 2.5
