"""Accuracy vs register width: the paper's Table-1-style sensitivity sweep.

The paper fixes its datapath widths (24-bit Harris score register fed
through a >>26 rescale, Q6.10 orientation ratio) once; this report asks
what those choices *buy* by sweeping each width through
:func:`repro.analysis.run_quantization_divergence` — the full float-vs-fixed
harness (keypoint agreement, descriptor agreement, trajectory divergence,
per-run ATE) — with :func:`repro.quant.quantization_overrides` rebinding
the constant under test.  Two sweeps are printed as one JSON report:

* ``harris_score_shift`` — how many low-order bits the Harris rescale
  discards before the 24-bit score register (smaller shift = finer scores
  but saturation risk, larger = coarser ranking);
* ``orientation_ratio_fraction_bits`` — fraction bits of the Q6.f centroid
  ratio feeding the 32-way orientation LUT.

Each row records the effective register width next to the accuracy columns,
so the report reads like the paper's resource/accuracy trade-off tables.
"""

import json

import pytest

from repro.analysis import run_quantization_divergence
from repro.quant import FixedPointFormat
from repro.quant import kernels as quant_kernels

from conftest import print_section, write_report_file

#: Keep the sweep quick: small frames, short sequence, both SLAM runs per row.
SWEEP_KWARGS = dict(
    sequence_name="fr1/xyz",
    num_frames=5,
    image_width=160,
    image_height=120,
    max_features=150,
)

HARRIS_SHIFT_SWEEP = [20, 23, 26, 29]
RATIO_FRACTION_SWEEP = [2, 4, 6, 10]


def _row(divergence, **extra):
    """Flatten one divergence report into a sweep-table row."""
    extraction = divergence["extraction"]
    return {
        **extra,
        "fixed_ate_mean_cm": divergence["fixed"]["ate_mean_cm"],
        "float_ate_mean_cm": divergence["float"]["ate_mean_cm"],
        "ate_delta_cm": divergence["ate_delta_cm"],
        "trajectory_divergence_rmse_cm": divergence["trajectory_divergence_rmse_cm"],
        "tracking_success_ratio": divergence["fixed"]["tracking_success_ratio"],
        "keypoint_jaccard": extraction["keypoint_jaccard"],
        "fixed_coverage_1px": extraction["fixed_coverage_1px"],
        "descriptor_identical_ratio": extraction["descriptor_identical_ratio"],
        "descriptor_mean_hamming_bits": extraction["descriptor_mean_hamming_bits"],
    }


def test_quant_sensitivity_report():
    baseline = run_quantization_divergence(**SWEEP_KWARGS)
    shift_rows = [
        _row(
            run_quantization_divergence(**SWEEP_KWARGS, harris_score_shift=shift),
            harris_score_shift=shift,
            score_register_bits=quant_kernels.HARRIS_SCORE_FORMAT.total_bits,
            is_default=(shift == quant_kernels.HARRIS_SCORE_SHIFT),
        )
        for shift in HARRIS_SHIFT_SWEEP
    ]
    ratio_rows = []
    for fraction_bits in RATIO_FRACTION_SWEEP:
        ratio_format = FixedPointFormat(integer_bits=6, fraction_bits=fraction_bits)
        ratio_rows.append(
            _row(
                run_quantization_divergence(
                    **SWEEP_KWARGS, orientation_ratio_format=ratio_format
                ),
                orientation_ratio_fraction_bits=fraction_bits,
                orientation_ratio_total_bits=ratio_format.total_bits,
                is_default=(fraction_bits == 10),
            )
        )
    report = {
        "workload": SWEEP_KWARGS,
        "baseline": _row(baseline, harris_score_shift=26, ratio_fraction_bits=10),
        "harris_score_shift_sweep": shift_rows,
        "orientation_ratio_sweep": ratio_rows,
    }
    print_section("quantization sensitivity: accuracy vs register width")
    print(json.dumps(report, indent=2))
    write_report_file("bench_quant_sensitivity.json", report)

    # overrides restore the module defaults after every run
    assert quant_kernels.HARRIS_SCORE_SHIFT == 26
    assert quant_kernels.ORIENTATION_RATIO_FORMAT.fraction_bits == 10
    # the default-width rows reproduce the un-overridden baseline exactly
    default_shift_row = next(r for r in shift_rows if r["is_default"])
    default_ratio_row = next(r for r in ratio_rows if r["is_default"])
    for key in ("fixed_ate_mean_cm", "trajectory_divergence_rmse_cm", "keypoint_jaccard"):
        assert default_shift_row[key] == report["baseline"][key]
        assert default_ratio_row[key] == report["baseline"][key]
    # every width keeps the fixed pipeline functional on the small workload
    for row in shift_rows + ratio_rows:
        assert row["tracking_success_ratio"] > 0.5
    # the quantized detector stays near the float detector at paper widths
    assert default_shift_row["fixed_coverage_1px"] > 0.5
    # the overrides must actually bite: if quantization_overrides ever became
    # a silent no-op, every row would equal the baseline and this sweep would
    # publish a flat, meaningless sensitivity table
    probe_keys = (
        "keypoint_jaccard",
        "descriptor_identical_ratio",
        "fixed_ate_mean_cm",
        "trajectory_divergence_rmse_cm",
    )
    non_default = [r for r in shift_rows + ratio_rows if not r["is_default"]]
    assert any(
        row[key] != report["baseline"][key] for row in non_default for key in probe_keys
    ), "no non-default register width changed any output: overrides inert?"


@pytest.mark.slow
def test_quant_sensitivity_monotone_descriptor_agreement():
    """More ratio fraction bits must not hurt descriptor/orientation fidelity.

    Descriptor bits depend on the orientation label, so coarser Q6.f ratios
    can only flip labels away from the float reference.  Agreement at the
    paper's Q6.10 must be at least that of the coarsest Q6.2 sweep point.
    """
    coarse = run_quantization_divergence(
        **SWEEP_KWARGS,
        orientation_ratio_format=FixedPointFormat(integer_bits=6, fraction_bits=2),
    )
    fine = run_quantization_divergence(
        **SWEEP_KWARGS,
        orientation_ratio_format=FixedPointFormat(integer_bits=6, fraction_bits=10),
    )
    assert (
        fine["extraction"]["descriptor_identical_ratio"]
        >= coarse["extraction"]["descriptor_identical_ratio"]
    )
