"""Sensitivity sweeps beyond the paper's single operating point.

The paper evaluates one configuration; these benchmarks ask how the comparison
of Table 3 shifts as the global map grows, the feature budget changes or the
input resolution scales -- the questions a prospective adopter of eSLAM would
ask next.  They exercise exactly the models that reproduce Tables 2/3.
"""

from repro.platforms import ARM_CORTEX_A9, ESLAM, INTEL_I7, SensitivityAnalysis
from repro.platforms.sensitivity import eslam_accelerator_resolution_latency

from conftest import print_section


def test_sensitivity_map_size(benchmark):
    analysis = SensitivityAnalysis(keyframe_ratio=0.25)
    points = benchmark(analysis.map_size_sweep, (500, 1000, 1500, 3000, 6000))
    print_section("Sensitivity: global-map size vs average frame rate (25% key frames)")
    print("  map points |    ARM fps |     i7 fps |  eSLAM fps")
    for point in points:
        print(
            f"  {point.parameter:10.0f} | {point.frame_rate_fps[ARM_CORTEX_A9.name]:10.2f} | "
            f"{point.frame_rate_fps[INTEL_I7.name]:10.2f} | {point.frame_rate_fps[ESLAM.name]:10.2f}"
        )
    eslam_limit = SensitivityAnalysis.real_time_limit(points, ESLAM.name, fps=30.0)
    i7_limit = SensitivityAnalysis.real_time_limit(points, INTEL_I7.name, fps=30.0)
    print(f"  largest map sustaining 30 fps: eSLAM {eslam_limit}, i7 {i7_limit}, ARM never")
    assert eslam_limit is not None and eslam_limit >= 1500
    for point in points:
        assert point.frame_rate_fps[ESLAM.name] > point.frame_rate_fps[INTEL_I7.name]


def test_sensitivity_feature_budget(benchmark):
    analysis = SensitivityAnalysis(keyframe_ratio=0.25)
    points = benchmark(analysis.feature_budget_sweep, (256, 512, 1024, 2048))
    print_section("Sensitivity: retained-feature budget vs average energy per frame")
    print("  features |   ARM mJ |    i7 mJ | eSLAM mJ")
    for point in points:
        print(
            f"  {point.parameter:8.0f} | {point.energy_per_frame_mj[ARM_CORTEX_A9.name]:8.1f} | "
            f"{point.energy_per_frame_mj[INTEL_I7.name]:8.1f} | "
            f"{point.energy_per_frame_mj[ESLAM.name]:8.2f}"
        )
    for point in points:
        assert point.energy_per_frame_mj[ESLAM.name] < point.energy_per_frame_mj[ARM_CORTEX_A9.name]


def test_sensitivity_resolution(benchmark):
    latencies = benchmark.pedantic(
        eslam_accelerator_resolution_latency, args=((0.5, 0.75, 1.0, 1.5),), rounds=1, iterations=1
    )
    print_section("Sensitivity: input resolution vs accelerator FE latency")
    for scale, latency in latencies.items():
        print(f"  {int(640 * scale)}x{int(480 * scale)}: {latency:6.2f} ms")
    assert latencies[1.5] > latencies[1.0] > latencies[0.5]
    # the streaming extractor stays within a 30 fps budget even at 1.5x VGA
    assert latencies[1.5] < 33.3
