"""Result transport: shared-memory ring vs pickled results on the queue.

The cluster's inbound hops are zero-copy (frame ring, shared pyramid
cache); this report measures the *return* hop.  In ``pickle`` mode every
:class:`~repro.features.ExtractionResult` is serialized through the worker's
``multiprocessing`` result queue; in ``ring`` mode (the default) workers
pack the result's flat arrays into a
:class:`~repro.cluster.SharedResultRing` slot and the queue carries only a
tiny slot descriptor (``docs/serving.md`` -> Result transport).

The 2-worker smoke serves the same batch both ways, verifies both stay
bit-identical to sequential extraction, and reports the bytes each
transport moves through the queue per frame plus the throughput delta.
The hard bar is on *bytes*, not time: queue payload per frame must shrink
by >= 10x with the ring (descriptors are ~100 bytes where pickled results
are tens of kilobytes), while the timing columns are informational on
shared runners.

Set ``BENCH_REPORT_DIR`` to also write the report as
``bench_result_transport.json`` (CI uploads these as artifacts).
"""

import pickle
import time

import pytest

from repro.cluster import ClusterServer, RingSlotRef
from repro.config import ExtractorConfig, PyramidConfig
from repro.features import OrbExtractor
from repro.image import random_blocks
from repro.serving.resultpack import packed_nbytes

from conftest import print_section, write_report_file

NUM_FRAMES = 24
#: The hard acceptance bar: queue bytes/frame must shrink at least this much.
MIN_BYTES_REDUCTION = 10.0


@pytest.fixture(scope="module")
def transport_config():
    return ExtractorConfig(
        image_width=160,
        image_height=120,
        pyramid=PyramidConfig(num_levels=2, provider="shared"),
        max_features=150,
    )


@pytest.fixture(scope="module")
def transport_images(transport_config):
    return [
        random_blocks(
            transport_config.image_height,
            transport_config.image_width,
            block=9,
            seed=seed,
        )
        for seed in range(NUM_FRAMES)
    ]


def _feature_key(result):
    return result.feature_records()  # the repo-wide bit-identity key


def _serve(config, images, transport):
    with ClusterServer(
        config, num_workers=2, result_transport=transport
    ) as server:
        start = time.perf_counter()
        results = server.extract_many(images)
        elapsed = time.perf_counter() - start
        report = server.stats.as_dict()
    return results, elapsed, report


def test_result_transport_smoke(transport_config, transport_images):
    """2-worker smoke: ring vs pickle queue bytes per frame, both bit-exact."""
    sequential = [
        OrbExtractor(transport_config).extract(image) for image in transport_images
    ]
    baseline = [_feature_key(result) for result in sequential]

    ring_results, ring_s, ring_stats = _serve(
        transport_config, transport_images, "ring"
    )
    pickle_results, pickle_s, pickle_stats = _serve(
        transport_config, transport_images, "pickle"
    )
    assert [_feature_key(r) for r in ring_results] == baseline
    assert [_feature_key(r) for r in pickle_results] == baseline
    assert ring_stats["results_zero_copy"] == NUM_FRAMES
    assert pickle_stats["results_via_pickle"] == NUM_FRAMES
    assert ring_stats["leaked_slots"] == 0

    # queue payload per frame: the pickled result itself vs the descriptor
    # entry that rides the queue when the arrays travel through shared
    # memory instead (job id + RingSlotRef + latency + error field)
    pickled_bytes = [len(pickle.dumps(result)) for result in sequential]
    pickle_per_frame = sum(pickled_bytes) / NUM_FRAMES
    descriptor_bytes = [
        len(pickle.dumps((index, RingSlotRef(index, packed_nbytes(result)), 0.001, None)))
        for index, result in enumerate(sequential)
    ]
    ring_per_frame = sum(descriptor_bytes) / NUM_FRAMES
    reduction = pickle_per_frame / ring_per_frame

    report = {
        "frames": NUM_FRAMES,
        "pickle_queue_bytes_per_frame": round(pickle_per_frame, 1),
        "ring_queue_bytes_per_frame": round(ring_per_frame, 1),
        "bytes_reduction_x": round(reduction, 1),
        "ring_result_bytes_saved": ring_stats["result_bytes_saved"],
        "ring_throughput_fps": round(NUM_FRAMES / ring_s, 1),
        "pickle_throughput_fps": round(NUM_FRAMES / pickle_s, 1),
        "throughput_delta_pct": round(100.0 * (pickle_s / ring_s - 1.0), 1),
        "bit_identical": True,
    }
    print_section("Result transport: shared-memory ring vs pickled results")
    print(f"{'transport':<10} {'queue B/frame':>14} {'frames/s':>10}")
    print(
        f"{'pickle':<10} {report['pickle_queue_bytes_per_frame']:>14} "
        f"{report['pickle_throughput_fps']:>10}"
    )
    print(
        f"{'ring':<10} {report['ring_queue_bytes_per_frame']:>14} "
        f"{report['ring_throughput_fps']:>10}"
    )
    print(
        f"queue bytes/frame reduction: {report['bytes_reduction_x']}x "
        f"(bar: >= {MIN_BYTES_REDUCTION}x); packed bytes moved via shared "
        f"memory: {report['ring_result_bytes_saved']}"
    )
    write_report_file("bench_result_transport.json", report)
    assert reduction >= MIN_BYTES_REDUCTION
