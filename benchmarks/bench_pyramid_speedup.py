"""Pyramid providers: per-level build cost, streaming scratch, shared reuse.

Three questions, one report:

* **per-level build cost** — what the eager all-up-front pyramid build
  spends on each level (the work the hardware Image Resizing module hides
  behind the extractor), and how the streaming banded build compares on
  the same frames (bit-identical output, bounded scratch);
* **fan-out amortisation** — with the ``shared`` provider, N consumers of
  the same frame (multi-engine fan-out) attach to ONE build instead of
  rebuilding N times: builds stay at one per frame, so at least one build
  is amortised per extra consumer (the acceptance bar, asserted in the
  quick tier);
* **cluster reuse** — with the cluster's producer-publish/worker-attach
  path, workers perform zero local pyramid builds; throughput at 1/2/4
  workers is reported against the eager-provider cluster baseline (sweep
  under the ``slow`` marker, a 2-worker smoke in the quick tier).

Set ``BENCH_REPORT_DIR`` to also write ``bench_pyramid_speedup.json``
(CI uploads these as artifacts alongside the cluster report).
"""

import json
import os
import time

import pytest

from repro.cluster import ClusterServer
from repro.config import ExtractorConfig, PyramidConfig
from repro.features import OrbExtractor
from repro.image import ImagePyramid, nearest_neighbor_resize, random_blocks
from repro.pyramid import SharedPyramidCache, StreamingPyramid

from conftest import print_section, write_report_file

NUM_FRAMES = 12
FAN_OUT_CONSUMERS = 3
WORKER_SWEEP = [1, 2, 4]
#: Timed passes per configuration; best-of-N damps shared-runner noise.
TIMING_REPEATS = 3


def _feature_key(result):
    return result.feature_records()  # the repo-wide bit-identity key


def _cluster_config(provider: str) -> ExtractorConfig:
    return ExtractorConfig(
        image_width=160,
        image_height=120,
        pyramid=PyramidConfig(num_levels=2, provider=provider),
        max_features=150,
    )


@pytest.fixture(scope="module")
def cluster_images():
    return [random_blocks(120, 160, block=9, seed=seed) for seed in range(NUM_FRAMES)]


def _best_of(callable_, repeats=TIMING_REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_pyramid_build_and_fanout_report(vga_image):
    """Quick tier: per-level build cost + the fan-out amortisation bar."""
    config = PyramidConfig(num_levels=4)

    # -- per-level eager build cost (VGA, the paper's frame size) ----------
    per_level = []
    current = vga_image
    for level in range(1, config.num_levels):
        source = current
        seconds = _best_of(lambda: nearest_neighbor_resize(source, config.scale_factor))
        current = nearest_neighbor_resize(source, config.scale_factor)
        per_level.append(
            {"level": level, "shape": list(current.shape), "build_ms": 1000.0 * seconds}
        )

    eager_s = _best_of(lambda: ImagePyramid(vga_image, config))
    workspace = {}

    def build_streaming():
        pyramid = StreamingPyramid(vga_image, config, workspace=workspace)
        pyramid.level(config.num_levels - 1)  # force the full build

    streaming_s = _best_of(build_streaming)

    # -- fan-out: N consumers, one build per frame -------------------------
    extractor_config = _cluster_config("shared")
    images = [random_blocks(120, 160, block=9, seed=seed) for seed in range(4)]
    with SharedPyramidCache.create(extractor_config, num_slots=4) as cache:
        consumers = [
            OrbExtractor(extractor_config, pyramid_cache=cache)
            for _ in range(FAN_OUT_CONSUMERS)
        ]
        baseline = OrbExtractor(_cluster_config("eager"))
        for frame_id, image in enumerate(images):
            expected = baseline.extract(image)
            for consumer in consumers:
                result = consumer.extract(image, frame_id=frame_id)
                assert _feature_key(result) == _feature_key(expected)
        fanout_stats = cache.stats()

    report = {
        "per_level_build": {
            "image": "640x480",
            "levels": per_level,
            "eager_total_ms": 1000.0 * eager_s,
            "streaming_total_ms": 1000.0 * streaming_s,
        },
        "fan_out": {
            "consumers": FAN_OUT_CONSUMERS,
            "frames": len(images),
            "extractions": FAN_OUT_CONSUMERS * len(images),
            "builds": fanout_stats["publishes"] + fanout_stats["local_builds"],
            "builds_without_cache": FAN_OUT_CONSUMERS * len(images),
            "builds_amortised": FAN_OUT_CONSUMERS * len(images)
            - (fanout_stats["publishes"] + fanout_stats["local_builds"]),
            "cache": fanout_stats,
        },
    }
    print_section("pyramid providers: build cost and shared-cache fan-out")
    print(json.dumps(report, indent=2))
    write_report_file("bench_pyramid_speedup.json", report)

    # acceptance: one build per frame, >= 1 build amortised per extra consumer
    fan_out = report["fan_out"]
    assert fan_out["builds"] == len(images)
    assert fan_out["builds_amortised"] >= (FAN_OUT_CONSUMERS - 1) * len(images)
    assert fanout_stats["hits"] == FAN_OUT_CONSUMERS * len(images)


def test_pyramid_cluster_smoke_two_workers(cluster_images):
    """Quick tier: shared-provider cluster serves with zero worker rebuilds."""
    expected = [
        OrbExtractor(_cluster_config("eager")).extract(image)
        for image in cluster_images[:4]
    ]
    with ClusterServer(_cluster_config("shared"), num_workers=2) as server:
        served = server.extract_many(cluster_images[:4])
        stats = server.pyramid_cache_stats()
    for expected_result, served_result in zip(expected, served):
        assert _feature_key(expected_result) == _feature_key(served_result)
    assert stats["publishes"] == 4  # the producer built each frame once
    assert stats["local_builds"] == 0  # no worker rebuilt a pyramid
    assert stats["hits"] == 4  # every worker attached zero-copy


@pytest.mark.slow
def test_pyramid_cluster_scaling_report(cluster_images):
    """Shared-cache cluster throughput at 1/2/4 workers vs the eager baseline."""
    cpu_count = os.cpu_count() or 1
    rows = []
    for workers in WORKER_SWEEP:
        row = {"workers": workers}
        for provider in ("eager", "shared"):
            with ClusterServer(_cluster_config(provider), num_workers=workers) as server:
                server.extract_many(cluster_images[:workers])  # warm engines
                best = float("inf")
                for _ in range(TIMING_REPEATS):
                    start = time.perf_counter()
                    server.extract_many(cluster_images)
                    best = min(best, time.perf_counter() - start)
                row[provider] = {
                    "throughput_fps": len(cluster_images) / best,
                    "elapsed_s": best,
                }
                if provider == "shared":
                    cache = server.pyramid_cache_stats()
                    row["cache"] = {
                        key: cache[key]
                        for key in ("hits", "misses", "publishes", "local_builds")
                    }
        row["shared_vs_eager"] = (
            row["shared"]["throughput_fps"] / row["eager"]["throughput_fps"]
            if row["eager"]["throughput_fps"]
            else 0.0
        )
        rows.append(row)

    report = {
        "workload": {"image": "160x120", "frames": len(cluster_images)},
        "cpu_count": cpu_count,
        "rows": rows,
    }
    print_section("pyramid shared cache: cluster throughput vs eager provider")
    print(json.dumps(report, indent=2))
    write_report_file("bench_pyramid_cluster_scaling.json", report)

    # every shared run must have eliminated all per-worker rebuilds
    for row in rows:
        assert row["cache"]["local_builds"] == 0
        assert row["cache"]["publishes"] >= len(cluster_images)
