"""End-to-end integration tests crossing subsystem boundaries.

These tests tie the whole reproduction together: rendered RGB-D frames flow
through feature extraction, matching, pose estimation and mapping; the
accelerator model consumes the same frames; and the paper's headline
comparisons come out of the combined platform models.
"""

import numpy as np
import pytest

from repro.config import ExtractorConfig, PyramidConfig, SlamConfig, TrackerConfig
from repro.dataset import SequenceSpec, make_sequence, parse_trajectory, format_trajectory
from repro.hw import EslamAccelerator
from repro.platforms import ESLAM, ARM_CORTEX_A9, PlatformComparison, HeterogeneousSlamSystem
from repro.slam import absolute_trajectory_error, run_slam


class TestAccuracyAcrossDescriptors:
    """The Figure-8 claim at test scale: RS-BRIEF accuracy ~ original ORB accuracy."""

    @pytest.fixture(scope="class")
    def both_errors(self, tiny_sequence, tiny_slam_config):
        errors = {}
        for label, use_rs_brief in (("rs_brief", True), ("original", False)):
            config = SlamConfig(
                extractor=tiny_slam_config.extractor.with_descriptor_mode(use_rs_brief),
                matcher=tiny_slam_config.matcher,
                tracker=tiny_slam_config.tracker,
            )
            result = run_slam(tiny_sequence, config)
            errors[label] = result.ate().mean_cm
        return errors

    def test_both_track_successfully(self, both_errors):
        assert both_errors["rs_brief"] < 6.0
        assert both_errors["original"] < 6.0

    def test_accuracies_comparable(self, both_errors):
        """Neither descriptor may be an order of magnitude worse than the other."""
        ratio = (both_errors["rs_brief"] + 0.1) / (both_errors["original"] + 0.1)
        assert 0.2 < ratio < 5.0


class TestAcceleratorConsistencyWithSlam:
    def test_accelerator_features_track_like_software(self, tiny_sequence):
        """Features from the accelerator model match the software extractor exactly,
        so the functional SLAM results transfer to the accelerated system."""
        config = ExtractorConfig(
            image_width=160,
            image_height=120,
            pyramid=PyramidConfig(num_levels=2),
            max_features=250,
        )
        accel = EslamAccelerator(extractor_config=config)
        from repro.features import OrbExtractor

        software = OrbExtractor(config)
        frame = tiny_sequence[0]
        accel_result = accel.process_frame(frame.image)
        software_result = software.extract(frame.image)
        assert np.array_equal(
            accel_result.extraction.descriptor_matrix(),
            software_result.descriptor_matrix(),
        )

    def test_matching_previous_frame_against_map_descriptors(self, tiny_sequence):
        config = ExtractorConfig(
            image_width=160, image_height=120, pyramid=PyramidConfig(num_levels=2), max_features=250
        )
        accel = EslamAccelerator(extractor_config=config)
        first = accel.process_frame(tiny_sequence[0].image)
        second = accel.process_frame(
            tiny_sequence[1].image, first.extraction.descriptor_matrix()
        )
        good = [m for m in second.matches if m.distance <= 40]
        assert len(good) > 30


class TestTrajectoryExport:
    def test_estimated_trajectory_roundtrips_through_tum_format(self, tiny_slam_result):
        text = format_trajectory(
            tiny_slam_result.timestamps, tiny_slam_result.estimated_poses
        )
        entries = parse_trajectory(text)
        recovered = [entry.to_world_to_camera() for entry in entries]
        ate = absolute_trajectory_error(recovered, tiny_slam_result.estimated_poses, align=False)
        assert ate.rmse < 1e-4  # only text-format rounding remains


class TestHeadlineClaims:
    """The abstract's headline numbers, produced by the composed models."""

    @pytest.fixture(scope="class")
    def comparison(self):
        return PlatformComparison()

    def test_frame_rate_improvement_bounds(self, comparison):
        speedups = comparison.speedups()
        assert 2.5 <= speedups["Intel i7-4700MQ"]["key"] <= 3.5 or \
            2.5 <= speedups["Intel i7-4700MQ"]["normal"] <= 3.5
        assert 25 <= speedups["ARM Cortex-A9"]["normal"] <= 35

    def test_energy_improvement_bounds(self, comparison):
        improvements = comparison.energy_improvements()
        assert 60 <= improvements["Intel i7-4700MQ"]["normal"] <= 80
        assert 12 <= improvements["ARM Cortex-A9"]["key"] <= 28

    def test_real_sequence_workloads_preserve_ordering(self, tiny_sequence, tiny_slam_config):
        """Even with measured (small-image) workloads, eSLAM stays fastest and ARM slowest."""
        result = HeterogeneousSlamSystem(tiny_slam_config).run(tiny_sequence, max_frames=3)
        assert result.average_runtime_ms(ESLAM.name) < result.average_runtime_ms(ARM_CORTEX_A9.name)


class TestRobustness:
    def test_slam_survives_sensor_noise(self):
        spec = SequenceSpec(
            name="fr1/xyz",
            num_frames=4,
            image_width=160,
            image_height=120,
            image_noise_std=3.0,
            depth_noise_std_m=0.005,
        )
        noisy_sequence = make_sequence(spec)
        config = SlamConfig(
            extractor=ExtractorConfig(
                image_width=160, image_height=120,
                pyramid=PyramidConfig(num_levels=2), max_features=250,
            ),
            tracker=TrackerConfig(ransac_iterations=48, pose_iterations=8),
        )
        result = run_slam(noisy_sequence, config)
        assert result.tracking_success_ratio == 1.0
        assert result.ate().rmse_cm < 8.0

    def test_tracking_failure_falls_back_gracefully(self, tiny_slam_config):
        """A frame with no texture cannot be tracked but must not crash the system."""
        from repro.dataset import RgbdFrame, RgbdSequence
        from repro.image import GrayImage
        from repro.geometry import PinholeCamera, Pose

        camera = PinholeCamera.tum_freiburg1().scaled(0.25)
        textured = make_sequence(
            SequenceSpec(name="fr1/xyz", num_frames=2, image_width=160, image_height=120)
        )
        blank = RgbdFrame(
            index=2,
            timestamp=textured[1].timestamp + 1 / 30,
            image=GrayImage.full(120, 160, 128),
            depth=np.full((120, 160), 2.5),
            ground_truth_pose=Pose.identity(),
        )
        sequence = RgbdSequence(
            name="custom", camera=camera, frames=list(textured.frames) + [blank]
        )
        result = run_slam(sequence, tiny_slam_config)
        assert result.num_frames == 3
        assert result.frame_results[2].tracked is False
        # pose falls back to the last tracked pose rather than crashing
        assert result.estimated_poses[2].is_close(result.estimated_poses[1])
