"""Tests for the ping-pong Image Cache FSM (Figure 5)."""

import numpy as np
import pytest

from repro.errors import HardwareModelError
from repro.hw import PingPongImageCache, stream_image_through_cache
from repro.image import random_blocks


class TestFsmSchedule:
    def test_lines_fill_in_rotation(self):
        cache = PingPongImageCache(rows=16, columns_per_line=8)
        for _ in range(6):
            cache.push_columns(np.zeros((16, 8), dtype=np.uint8))
        filling = [t.filling_line for t in cache.transitions]
        assert filling == [0, 1, 2, 0, 1, 2]

    def test_streaming_lines_are_the_other_two(self):
        cache = PingPongImageCache(rows=8, columns_per_line=4)
        for _ in range(4):
            transition = cache.push_columns(np.zeros((8, 4), dtype=np.uint8))
            assert transition.filling_line not in transition.streaming_lines
            assert len(set(transition.streaming_lines)) == 2

    def test_initialisation_after_two_lines(self):
        cache = PingPongImageCache(rows=8, columns_per_line=4)
        assert not cache.is_initialized
        cache.push_columns(np.zeros((8, 4), dtype=np.uint8))
        assert not cache.is_initialized
        cache.push_columns(np.zeros((8, 4), dtype=np.uint8))
        assert cache.is_initialized  # 16 columns pre-stored, as in the paper

    def test_figure5_schedule_shape(self):
        """After init, fill target cycles A->B->C->A while others stream (Fig. 5)."""
        cache = PingPongImageCache(rows=4, columns_per_line=8)
        for _ in range(5):
            cache.push_columns(np.zeros((4, 8), dtype=np.uint8))
        schedule = cache.fsm_schedule()
        assert schedule[0] == (0, (1, 2))
        assert schedule[1] == (1, (0, 2))
        assert schedule[2] == (2, (0, 1))
        assert schedule[3] == (0, (1, 2))

    def test_wrong_column_shape_rejected(self):
        cache = PingPongImageCache(rows=8, columns_per_line=4)
        with pytest.raises(HardwareModelError):
            cache.push_columns(np.zeros((8, 5), dtype=np.uint8))

    def test_at_least_three_lines_required(self):
        with pytest.raises(HardwareModelError):
            PingPongImageCache(rows=8, columns_per_line=4, num_lines=2)


class TestDataAccess:
    def test_window_returns_correct_pixels(self):
        image = random_blocks(16, 32, block=4, seed=7)
        cache, _ = stream_image_through_cache(image.pixels, columns_per_line=8)
        window = cache.window(center_column=12, width=7)
        assert np.array_equal(window, image.pixels[:, 9:16])

    def test_window_requires_resident_columns(self):
        cache = PingPongImageCache(rows=8, columns_per_line=8)
        cache.push_columns(np.zeros((8, 8), dtype=np.uint8))
        with pytest.raises(HardwareModelError):
            cache.window(center_column=20, width=7)

    def test_readable_columns_counts_valid_lines(self):
        cache = PingPongImageCache(rows=8, columns_per_line=8)
        cache.push_columns(np.zeros((8, 8), dtype=np.uint8))
        assert cache.readable_columns() == 8
        cache.push_columns(np.zeros((8, 8), dtype=np.uint8))
        assert cache.readable_columns() == 16

    def test_full_image_streaming_covers_all_columns(self):
        image = random_blocks(12, 40, block=4, seed=8)
        cache, groups = stream_image_through_cache(image.pixels, columns_per_line=8)
        assert groups == 5
        assert len(cache.transitions) == 5

    def test_eviction_after_wraparound(self):
        """Older columns are overwritten once the fill pointer wraps."""
        image = random_blocks(8, 40, block=4, seed=9)
        cache, _ = stream_image_through_cache(image.pixels, columns_per_line=8)
        # columns 0..7 were evicted when line 0 was refilled with columns 24..31
        with pytest.raises(HardwareModelError):
            cache.window(center_column=4, width=7)
        window = cache.window(center_column=28, width=7)
        assert np.array_equal(window, image.pixels[:, 25:32])

    def test_bram_requirement_reflects_geometry(self):
        cache = PingPongImageCache(rows=480, columns_per_line=8)
        requirement = cache.bram_requirement()
        assert requirement.copies == 3
        assert requirement.depth == 480
        assert requirement.width_bits == 64
