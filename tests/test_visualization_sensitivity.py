"""Tests for trajectory visualisation and the platform sensitivity sweeps."""

import numpy as np
import pytest

from repro.errors import DatasetError, PlatformModelError
from repro.geometry import Pose
from repro.platforms import (
    ARM_CORTEX_A9,
    ESLAM,
    INTEL_I7,
    SensitivityAnalysis,
    eslam_accelerator_resolution_latency,
)
from repro.slam import ascii_scatter, error_bars, matching_summary, trajectory_top_view


class TestAsciiScatter:
    def test_contains_all_markers_and_legend(self):
        a = np.array([[0.0, 0.0], [1.0, 1.0]])
        b = np.array([[0.5, 0.5]])
        plot = ascii_scatter([("truth", a), ("estimate", b)])
        assert "* = truth" in plot
        assert "o = estimate" in plot
        assert "*" in plot.split("\n", 3)[3]

    def test_dimension_validation(self):
        with pytest.raises(DatasetError):
            ascii_scatter([])
        with pytest.raises(DatasetError):
            ascii_scatter([("a", np.zeros((2, 3)))])
        with pytest.raises(DatasetError):
            ascii_scatter([("a", np.zeros((2, 2)))], width=5)

    def test_grid_size(self):
        plot = ascii_scatter([("a", np.array([[0.0, 0.0], [1.0, 2.0]]))], width=30, height=10)
        body = [line for line in plot.splitlines() if line.startswith("|")]
        assert len(body) == 10
        assert all(len(line) == 32 for line in body)


class TestTrajectoryView:
    def test_top_view_renders(self, tiny_slam_result):
        plot = trajectory_top_view(
            tiny_slam_result.estimated_poses, tiny_slam_result.ground_truth_poses
        )
        assert "ground truth" in plot
        assert "estimated" in plot

    def test_length_mismatch(self):
        with pytest.raises(DatasetError):
            trajectory_top_view([Pose.identity()], [Pose.identity(), Pose.identity()])

    def test_error_bars(self):
        text = error_bars(np.array([0.01, 0.02, 0.005]))
        assert text.count("cm") == 4  # header + 3 rows
        assert "#" in text

    def test_error_bars_validation(self):
        with pytest.raises(DatasetError):
            error_bars(np.array([]))

    def test_matching_summary(self):
        line = matching_summary(400, 300, 250)
        assert "400 features" in line
        assert "75%" in line
        assert matching_summary(0, 0, 0) == "no features extracted"


class TestSensitivityAnalysis:
    @pytest.fixture(scope="class")
    def analysis(self):
        return SensitivityAnalysis(keyframe_ratio=0.25)

    def test_map_size_sweep_monotonic_for_cpus(self, analysis):
        points = analysis.map_size_sweep((500, 1500, 3000))
        arm_runtimes = [p.runtime_ms[ARM_CORTEX_A9.name] for p in points]
        assert arm_runtimes == sorted(arm_runtimes)
        # eSLAM's matcher also slows down, but the normal-frame time is hidden
        # behind the host, so the average grows much more slowly
        eslam_growth = points[-1].runtime_ms[ESLAM.name] / points[0].runtime_ms[ESLAM.name]
        arm_growth = arm_runtimes[-1] / arm_runtimes[0]
        assert eslam_growth < arm_growth

    def test_eslam_always_fastest(self, analysis):
        for point in analysis.map_size_sweep((500, 3000)):
            assert point.frame_rate_fps[ESLAM.name] > point.frame_rate_fps[INTEL_I7.name]
            assert point.frame_rate_fps[INTEL_I7.name] > point.frame_rate_fps[ARM_CORTEX_A9.name]

    def test_feature_budget_sweep(self, analysis):
        points = analysis.feature_budget_sweep((256, 1024, 2048))
        arm = [p.runtime_ms[ARM_CORTEX_A9.name] for p in points]
        assert arm[0] < arm[-1]

    def test_resolution_sweep(self, analysis):
        points = analysis.resolution_sweep((0.5, 1.0, 1.5))
        i7 = [p.runtime_ms[INTEL_I7.name] for p in points]
        assert i7 == sorted(i7)

    def test_real_time_limit(self, analysis):
        points = analysis.map_size_sweep((500, 1500, 3000, 6000))
        eslam_limit = SensitivityAnalysis.real_time_limit(points, ESLAM.name, fps=30.0)
        arm_limit = SensitivityAnalysis.real_time_limit(points, ARM_CORTEX_A9.name, fps=30.0)
        assert eslam_limit is not None and eslam_limit >= 1500
        assert arm_limit is None  # the ARM never reaches 30 fps

    def test_invalid_keyframe_ratio(self):
        with pytest.raises(PlatformModelError):
            SensitivityAnalysis(keyframe_ratio=1.5)

    def test_accelerator_resolution_latency(self):
        latencies = eslam_accelerator_resolution_latency((0.5, 1.0))
        assert latencies[1.0] > 3 * latencies[0.5]
