"""Tests for the streaming front-end simulation (cache -> FAST -> NMS)."""

import pytest

from repro.config import FastConfig
from repro.errors import HardwareModelError
from repro.hw.orb_extractor import StreamingFrontEnd, compare_with_software
from repro.image import GrayImage, random_blocks


@pytest.fixture(scope="module")
def streaming_image():
    # small enough for the per-window Python loop to stay fast
    return random_blocks(80, 96, block=8, seed=17)


@pytest.fixture(scope="module")
def streaming_result(streaming_image):
    return StreamingFrontEnd(FastConfig(threshold=20), border=16).process(streaming_image)


class TestStreamingFrontEnd:
    def test_emits_keypoints(self, streaming_result):
        assert len(streaming_result.keypoints) > 10

    def test_fsm_state_count(self, streaming_result, streaming_image):
        assert streaming_result.fsm_states == streaming_image.width // 8

    def test_keypoints_inside_border(self, streaming_result, streaming_image):
        for keypoint in streaming_result.keypoints:
            assert 16 <= keypoint.x < streaming_image.width - 16
            assert 16 <= keypoint.y < streaming_image.height - 16

    def test_keypoints_emitted_in_column_order(self, streaming_result):
        """The streaming order follows the column groups, as in hardware."""
        states = [kp.emitted_in_state for kp in streaming_result.keypoints]
        assert states == sorted(states)

    def test_no_adjacent_keypoints_after_nms(self, streaming_result):
        coords = streaming_result.keypoint_set()
        for x, y in coords:
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    if (dx, dy) == (0, 0):
                        continue
                    assert (x + dx, y + dy) not in coords

    def test_agrees_with_software_detector(self, streaming_image):
        """The streamed keypoints must essentially match the vectorised pipeline."""
        comparison = compare_with_software(streaming_image, FastConfig(threshold=20))
        assert comparison["streaming_keypoints"] > 0
        # exact positions can shift by one pixel because the hardware unit's
        # windowed Harris score differs from the software Sobel-based score;
        # within a 1-pixel radius the two detectors must agree almost everywhere
        assert comparison["streaming_coverage_1px"] > 0.85
        assert comparison["software_coverage_1px"] > 0.85

    def test_flat_image_produces_nothing(self):
        result = StreamingFrontEnd(border=16).process(GrayImage.full(64, 64, 100))
        assert result.keypoints == []

    def test_rejects_too_narrow_cache_lines(self):
        with pytest.raises(HardwareModelError):
            StreamingFrontEnd(columns_per_line=4)

    def test_windows_evaluated_counted(self, streaming_result):
        assert streaming_result.windows_evaluated > 1000
