"""Detection-engine parity: the vectorized front-end must be bit-identical.

The ``vectorized`` detection engine replaces the dense per-stage front-end
(full corner map, full Harris map, per-survivor NMS tie-break loop) with a
fused arc-LUT / sparse-Harris / loop-free-NMS pass.  These tests pin down
that it is a pure reformulation — same corner sets, same Harris scores (to
the bit), same NMS survivors including tie chains, same retained features
for both workflow orders — on randomized synthetic images.
"""

import numpy as np
import pytest

from repro.config import ExtractorConfig, FastConfig, PyramidConfig
from repro.errors import FeatureError
from repro.features import (
    OrbExtractor,
    detect_fast_keypoints,
    detect_fast_keypoints_arrays,
    fast_corner_mask,
    harris_response_map,
    harris_scores_at,
    harris_scores_sparse,
    non_maximum_suppression,
    segment_arc_lut,
    suppress_keypoints_sparse,
)
from repro.features.fast import FAST_CARDINAL_POSITIONS, cardinal_prefilter_lut
from repro.frontend import (
    ReferenceEngine,
    VectorizedEngine,
    available_engines,
    create_engine,
)
from repro.image import GrayImage, checkerboard, gaussian_blur, random_blocks


def _config(frontend: str, width: int = 160, height: int = 120, **kwargs) -> ExtractorConfig:
    defaults = dict(
        image_width=width,
        image_height=height,
        pyramid=PyramidConfig(num_levels=2),
        max_features=100,
    )
    defaults.update(kwargs)
    return ExtractorConfig(frontend=frontend, **defaults)


@pytest.fixture(scope="module")
def engines():
    config = ExtractorConfig()
    return create_engine("reference", config), create_engine("vectorized", config)


class TestEngineRegistry:
    def test_builtin_engines_registered(self):
        assert "reference" in available_engines()
        assert "vectorized" in available_engines()

    def test_unknown_engine_rejected(self):
        with pytest.raises(FeatureError):
            create_engine("nonexistent")

    def test_config_selects_engine_class(self):
        assert isinstance(
            OrbExtractor(ExtractorConfig(frontend="reference")).frontend, ReferenceEngine
        )
        assert isinstance(
            OrbExtractor(ExtractorConfig(frontend="vectorized")).frontend, VectorizedEngine
        )
        assert OrbExtractor().frontend.name == "vectorized"  # the default

    def test_invalid_frontend_config_rejected(self):
        with pytest.raises(ValueError):
            ExtractorConfig(frontend="")

    def test_with_frontend_helper(self):
        assert ExtractorConfig().with_frontend("reference").frontend == "reference"


class TestArcLut:
    def test_lut_matches_run_counting(self):
        # exhaustive spot check of the 65536-entry LUT against a literal
        # wrap-around run counter on a random sample plus edge masks
        lut = segment_arc_lut(9)
        rng = np.random.default_rng(0)
        samples = set(int(v) for v in rng.integers(0, 1 << 16, 500))
        samples.update([0, 0xFFFF, 0x01FF, 0xFF80, 0b1111000011110000])
        for mask in samples:
            bits = [(mask >> i) & 1 for i in range(16)]
            doubled = bits + bits[:8]
            run = best = 0
            for flag in doubled:
                run = run + 1 if flag else 0
                best = max(best, run)
            assert bool(lut[mask]) == (best >= 9), bin(mask)

    def test_lut_arc_length_bounds(self):
        assert segment_arc_lut(1)[1]  # any set bit passes
        assert segment_arc_lut(16)[0xFFFF]
        assert not segment_arc_lut(16)[0xFFFE]
        with pytest.raises(FeatureError):
            segment_arc_lut(17)

    def test_cardinal_prefilter_is_necessary(self):
        # every mask that passes the arc test must pass the compass prefilter
        arc = segment_arc_lut(9)
        quick = cardinal_prefilter_lut(9)
        masks = np.arange(1 << 16)
        patterns = np.zeros(1 << 16, dtype=np.int64)
        for bit, position in enumerate(FAST_CARDINAL_POSITIONS):
            patterns |= ((masks >> position) & 1) << bit
        assert bool(np.all(~arc | quick[patterns]))


class TestFastParity:
    @pytest.mark.parametrize("seed", [1, 2, 5])
    @pytest.mark.parametrize("threshold", [10, 20, 45])
    def test_corner_sets_match_dense_mask(self, seed, threshold):
        image = random_blocks(120, 160, block=9, seed=seed)
        config = ExtractorConfig(fast=FastConfig(threshold=threshold))
        engine = create_engine("vectorized", config)
        xs, ys = engine._fast_corners(image, engine._workspace())
        mask = fast_corner_mask(image, config.fast)
        ref_ys, ref_xs = np.nonzero(mask)
        assert np.array_equal(xs, ref_xs)
        assert np.array_equal(ys, ref_ys)

    def test_dense_fallback_matches(self):
        # a noisy image pushes the candidate ratio over the dense-path switch
        rng = np.random.default_rng(3)
        image = GrayImage(rng.integers(0, 256, (96, 128), dtype=np.uint8))
        config = ExtractorConfig(fast=FastConfig(threshold=1))
        engine = create_engine("vectorized", config)
        xs, ys = engine._fast_corners(image, engine._workspace())
        ref_ys, ref_xs = np.nonzero(fast_corner_mask(image, config.fast))
        assert np.array_equal(xs, ref_xs)
        assert np.array_equal(ys, ref_ys)

    def test_checkerboard_and_flat_images(self):
        config = ExtractorConfig()
        engine = create_engine("vectorized", config)
        board = checkerboard(96, 96, square=12)
        xs, ys = engine._fast_corners(board, engine._workspace())
        assert xs.size == int(fast_corner_mask(board, config.fast).sum())
        flat = GrayImage.full(64, 64, 100)
        xs, ys = engine._fast_corners(flat, engine._workspace())
        assert xs.size == 0

    def test_detect_arrays_wrapper_equivalence(self, blocks_image):
        xs, ys = detect_fast_keypoints_arrays(blocks_image)
        points = detect_fast_keypoints(blocks_image)
        assert points == list(zip(xs.tolist(), ys.tolist()))
        mask = fast_corner_mask(blocks_image)
        assert xs.size == int(mask.sum())


class TestSparseHarrisParity:
    @pytest.mark.parametrize("seed", [0, 4])
    def test_bit_identical_to_response_map(self, seed):
        image = random_blocks(120, 160, block=10, seed=seed)
        rng = np.random.default_rng(seed)
        xs = rng.integers(0, 160, 300).astype(np.int64)
        ys = rng.integers(0, 120, 300).astype(np.int64)
        sparse = harris_scores_sparse(image, xs, ys)
        dense = harris_response_map(image)[ys, xs]
        assert sparse.tobytes() == dense.tobytes()

    def test_border_points_included(self, blocks_image):
        # clipped windows at the image edge must match the padded dense path
        edge_points = [(0, 0), (159, 0), (0, 119), (159, 119), (1, 2), (158, 117)]
        xs = np.array([p[0] for p in edge_points])
        ys = np.array([p[1] for p in edge_points])
        sparse = harris_scores_sparse(blocks_image, xs, ys)
        dense = harris_response_map(blocks_image)[ys, xs]
        assert sparse.tobytes() == dense.tobytes()

    def test_scores_at_matches_response_map(self, blocks_image):
        points = [(20, 30), (40, 50), (0, 0), (159, 119)]
        scores = harris_scores_at(blocks_image, points)
        dense = harris_response_map(blocks_image)
        assert scores == [dense[y, x] for x, y in points]

    def test_rejects_outside_points(self, blocks_image):
        with pytest.raises(FeatureError):
            harris_scores_sparse(blocks_image, np.array([1000]), np.array([10]))

    def test_empty_points(self, blocks_image):
        assert harris_scores_sparse(blocks_image, np.zeros(0), np.zeros(0)).size == 0


class TestSparseNmsParity:
    def _dense_keep(self, xs, ys, scores, shape, radius=1):
        corner = np.zeros(shape, dtype=bool)
        score_map = np.full(shape, -np.inf)
        corner[ys, xs] = True
        score_map[ys, xs] = scores
        keep_map = non_maximum_suppression(corner, score_map, radius=radius)
        return keep_map[ys, xs]

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("radius", [1, 2])
    def test_random_corners_with_forced_ties(self, seed, radius):
        rng = np.random.default_rng(seed)
        shape = (48, 64)
        count = 160
        flat = rng.choice(shape[0] * shape[1], size=count, replace=False)
        ys, xs = np.divmod(flat, shape[1])
        # quantized scores force plenty of exact ties, incl. tie chains
        scores = rng.integers(0, 4, count).astype(np.float64)
        keep = suppress_keypoints_sparse(xs, ys, scores, shape, radius=radius)
        assert np.array_equal(keep, self._dense_keep(xs, ys, scores, shape, radius))

    def test_tie_chain_resurrection(self):
        # A kills B, so C (B's neighbour) survives — the sequential raster
        # semantics the vectorised rounds must reproduce
        xs = np.array([3, 4, 5])
        ys = np.array([3, 3, 3])
        scores = np.array([5.0, 5.0, 5.0])
        keep = suppress_keypoints_sparse(xs, ys, scores, (8, 8), radius=1)
        assert keep.tolist() == [True, False, True]
        assert np.array_equal(keep, self._dense_keep(xs, ys, scores, (8, 8)))

    def test_unsorted_input_raster_tie_break(self):
        # raster-first wins regardless of the input order (lexsort path)
        xs = np.array([4, 3])
        ys = np.array([3, 3])
        scores = np.array([7.0, 7.0])
        keep = suppress_keypoints_sparse(xs, ys, scores, (8, 8), radius=1)
        assert keep.tolist() == [False, True]

    def test_validation(self):
        with pytest.raises(FeatureError):
            suppress_keypoints_sparse(np.array([1]), np.array([1]), np.array([1.0, 2.0]), (8, 8))
        with pytest.raises(FeatureError):
            suppress_keypoints_sparse(np.array([9]), np.array([1]), np.array([1.0]), (8, 8))
        with pytest.raises(FeatureError):
            suppress_keypoints_sparse(
                np.array([1]), np.array([1]), np.array([1.0]), (8, 8), radius=0
            )
        assert suppress_keypoints_sparse(
            np.zeros(0), np.zeros(0), np.zeros(0), (8, 8)
        ).size == 0


class TestEngineParity:
    @pytest.mark.parametrize("seed", [3, 7, 11])
    def test_detect_bit_identical(self, engines, seed):
        reference, vectorized = engines
        image = random_blocks(240, 320, block=11, seed=seed)
        ref = reference.detect_with_count(image)
        vec = vectorized.detect_with_count(image)
        assert ref[3] == vec[3]  # corner counts
        assert np.array_equal(ref[0], vec[0])
        assert np.array_equal(ref[1], vec[1])
        assert ref[2].tobytes() == vec[2].tobytes()  # scores, to the bit
        assert ref[0].size > 50  # the scene must actually exercise the path

    def test_smooth_bit_identical(self, engines):
        reference, vectorized = engines
        for seed, shape in ((0, (120, 160)), (1, (75, 99)), (2, (33, 47))):
            image = random_blocks(shape[0], shape[1], block=7, seed=seed)
            assert np.array_equal(
                reference.smooth(image).pixels, vectorized.smooth(image).pixels
            )
            assert np.array_equal(
                vectorized.smooth(image).pixels, gaussian_blur(image).pixels
            )

    def test_workspace_reuse_across_level_sizes(self):
        # big frame first grows the scratch buffers; smaller frames then use
        # sliced views — results must stay identical to fresh engines
        config = ExtractorConfig()
        vectorized = create_engine("vectorized", config)
        reference = create_engine("reference", config)
        for shape in ((240, 320), (96, 128), (200, 264), (54, 76)):
            image = random_blocks(shape[0], shape[1], block=8, seed=shape[1])
            ref = reference.detect_with_count(image)
            vec = vectorized.detect_with_count(image)
            assert np.array_equal(ref[0], vec[0])
            assert ref[2].tobytes() == vec[2].tobytes()
            assert np.array_equal(
                reference.smooth(image).pixels, vectorized.smooth(image).pixels
            )

    def test_small_border_falls_back_to_dense(self):
        config = ExtractorConfig(fast=FastConfig(border=2))
        vectorized = create_engine("vectorized", config)
        reference = create_engine("reference", config)
        image = random_blocks(64, 64, block=6, seed=9)
        ref = reference.detect_with_count(image)
        vec = vectorized.detect_with_count(image)
        assert np.array_equal(ref[0], vec[0])
        assert ref[2].tobytes() == vec[2].tobytes()


class TestEndToEndParity:
    @pytest.mark.parametrize("rescheduled", [True, False], ids=["rescheduled", "original"])
    def test_bit_identical_extraction(self, rescheduled):
        image = random_blocks(120, 160, block=10, seed=7)
        reference = OrbExtractor(
            _config("reference", rescheduled_workflow=rescheduled)
        ).extract(image)
        vectorized = OrbExtractor(
            _config("vectorized", rescheduled_workflow=rescheduled)
        ).extract(image)
        assert len(reference.features) == len(vectorized.features)
        assert len(reference.features) > 50
        for ref, vec in zip(reference.features, vectorized.features):
            assert (ref.keypoint.level, ref.keypoint.x, ref.keypoint.y) == (
                vec.keypoint.level,
                vec.keypoint.x,
                vec.keypoint.y,
            )
            # bit-exact: == on the raw floats, not approx
            assert ref.score == vec.score
            assert ref.keypoint.orientation_rad == vec.keypoint.orientation_rad
            assert ref.descriptor.tobytes() == vec.descriptor.tobytes()
            assert (ref.x0, ref.y0) == (vec.x0, vec.y0)

    @pytest.mark.parametrize("rescheduled", [True, False], ids=["rescheduled", "original"])
    def test_identical_profiles(self, rescheduled):
        """The workload counters feeding the hardware models must not drift."""
        image = random_blocks(120, 160, block=10, seed=7)
        reference = OrbExtractor(
            _config("reference", rescheduled_workflow=rescheduled)
        ).extract(image)
        vectorized = OrbExtractor(
            _config("vectorized", rescheduled_workflow=rescheduled)
        ).extract(image)
        assert vars(reference.profile) == vars(vectorized.profile)


class TestFrontendSpeedup:
    def test_vectorized_front_end_at_least_2x_reference(self):
        """A modest tier-1 bar; the >=4x VGA bar lives in the benchmark.

        The true ratio is ~4-5x at VGA and ~3-4x at quarter resolution, so
        2x leaves ample headroom for machine noise.
        """
        import time

        config = ExtractorConfig(image_width=320, image_height=240)
        image = random_blocks(240, 320, block=12, seed=4)
        timings = {}
        for name in ("reference", "vectorized"):
            engine = create_engine(name, config)
            engine.detect_with_count(image)
            engine.smooth(image)  # warm-up
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                engine.detect_with_count(image)
                engine.smooth(image)
                best = min(best, time.perf_counter() - start)
            timings[name] = best
        assert timings["reference"] / timings["vectorized"] >= 2.0
