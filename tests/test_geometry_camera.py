"""Tests for the pinhole camera model and triangulation."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import (
    PinholeCamera,
    Pose,
    projection_matrix,
    reprojection_error,
    so3_exp,
    triangulate_dlt,
    triangulate_midpoint,
)


class TestIntrinsics:
    def test_tum_calibrations(self):
        fr1 = PinholeCamera.tum_freiburg1()
        fr2 = PinholeCamera.tum_freiburg2()
        assert fr1.width == 640 and fr1.height == 480
        assert fr1.fx != fr2.fx

    def test_scaled_camera(self):
        camera = PinholeCamera.tum_freiburg1().scaled(0.5)
        assert camera.width == 320
        assert camera.fx == pytest.approx(517.3 * 0.5)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(GeometryError):
            PinholeCamera(fx=-1, fy=1, cx=0, cy=0)
        with pytest.raises(GeometryError):
            PinholeCamera.tum_freiburg1().scaled(0.0)

    def test_intrinsic_matrix(self, camera):
        matrix = camera.intrinsic_matrix()
        assert matrix[0, 0] == camera.fx
        assert matrix[1, 2] == camera.cy
        assert matrix[2, 2] == 1.0


class TestProjection:
    def test_principal_point(self, camera):
        pixel = camera.project(np.array([0.0, 0.0, 2.0]))
        assert pixel == pytest.approx([camera.cx, camera.cy])

    def test_projection_scale_invariance(self, camera):
        point = np.array([0.3, -0.2, 2.0])
        assert np.allclose(camera.project(point), camera.project(point * 3.0))

    def test_rejects_nonpositive_depth(self, camera):
        with pytest.raises(GeometryError):
            camera.project(np.array([0.0, 0.0, -1.0]))

    def test_project_backproject_roundtrip(self, camera):
        point = np.array([0.4, -0.3, 2.5])
        pixel = camera.project(point)
        recovered = camera.back_project(pixel[0], pixel[1], 2.5)
        assert np.allclose(recovered, point, atol=1e-9)

    def test_back_project_many(self, camera):
        rng = np.random.default_rng(0)
        points = rng.uniform([-1, -1, 1], [1, 1, 4], size=(20, 3))
        pixels = camera.project(points)
        recovered = camera.back_project_many(pixels, points[:, 2])
        assert np.allclose(recovered, points, atol=1e-9)

    def test_back_project_rejects_bad_depth(self, camera):
        with pytest.raises(GeometryError):
            camera.back_project(320, 240, 0.0)

    def test_pixel_rays_unit_depth(self, camera):
        rays = camera.pixel_rays(np.array([[camera.cx, camera.cy]]))
        assert np.allclose(rays[0], [0.0, 0.0, 1.0])

    def test_is_visible(self, camera):
        assert camera.is_visible(np.array([320.0, 240.0]))
        assert not camera.is_visible(np.array([-1.0, 240.0]))
        assert not camera.is_visible(np.array([320.0, 240.0]), margin=300)

    def test_project_world_point(self, camera, example_pose):
        point_world = example_pose.inverse().transform(np.array([0.1, 0.2, 3.0]))
        pixel, depth = camera.project_world_point(point_world, example_pose)
        assert depth == pytest.approx(3.0)
        assert camera.is_visible(pixel)

    def test_project_world_point_behind_camera(self, camera):
        with pytest.raises(GeometryError):
            camera.project_world_point(np.array([0.0, 0.0, -2.0]), Pose.identity())


class TestTriangulation:
    @pytest.fixture()
    def two_views(self, camera):
        pose_a = Pose.identity()
        pose_b = Pose(so3_exp(np.array([0.0, 0.05, 0.0])), np.array([-0.2, 0.0, 0.0]))
        point = np.array([0.3, -0.1, 2.5])
        pixel_a = camera.project(pose_a.transform(point))
        pixel_b = camera.project(pose_b.transform(point))
        return camera, pose_a, pose_b, pixel_a, pixel_b, point

    def test_dlt_recovers_point(self, two_views):
        camera, pose_a, pose_b, pixel_a, pixel_b, point = two_views
        recovered = triangulate_dlt(camera, pose_a, pose_b, pixel_a, pixel_b)
        assert np.allclose(recovered, point, atol=1e-6)

    def test_midpoint_recovers_point(self, two_views):
        camera, pose_a, pose_b, pixel_a, pixel_b, point = two_views
        recovered = triangulate_midpoint(camera, pose_a, pose_b, pixel_a, pixel_b)
        assert np.allclose(recovered, point, atol=1e-6)

    def test_methods_agree(self, two_views):
        camera, pose_a, pose_b, pixel_a, pixel_b, _ = two_views
        dlt = triangulate_dlt(camera, pose_a, pose_b, pixel_a, pixel_b)
        mid = triangulate_midpoint(camera, pose_a, pose_b, pixel_a, pixel_b)
        assert np.allclose(dlt, mid, atol=1e-5)

    def test_degenerate_identical_views_rejected(self, camera):
        with pytest.raises(GeometryError):
            triangulate_midpoint(
                camera,
                Pose.identity(),
                Pose.identity(),
                np.array([320.0, 240.0]),
                np.array([320.0, 240.0]),
            )

    def test_projection_matrix_shape(self, camera, example_pose):
        assert projection_matrix(camera, example_pose).shape == (3, 4)

    def test_reprojection_error_zero_for_exact(self, two_views):
        camera, pose_a, _, pixel_a, _, point = two_views
        assert reprojection_error(camera, pose_a, point, pixel_a) == pytest.approx(0.0, abs=1e-9)

    def test_reprojection_error_for_offset(self, two_views):
        camera, pose_a, _, pixel_a, _, point = two_views
        error = reprojection_error(camera, pose_a, point, pixel_a + np.array([3.0, 4.0]))
        assert error == pytest.approx(5.0)
