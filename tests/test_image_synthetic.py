"""Tests for the synthetic texture and test-image generators."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.image import (
    add_gaussian_noise,
    checkerboard,
    isolated_corner,
    random_blocks,
    rotate_image,
    shift_image,
    textured_noise,
)


class TestCheckerboard:
    def test_shape_and_values(self):
        board = checkerboard(64, 96, square=8, low=10, high=200)
        assert board.shape == (64, 96)
        assert set(np.unique(board.pixels).tolist()) == {10, 200}

    def test_square_period(self):
        board = checkerboard(32, 32, square=8)
        assert board.pixels[0, 0] != board.pixels[0, 8]
        assert board.pixels[0, 0] == board.pixels[0, 16]

    def test_rejects_bad_square(self):
        with pytest.raises(ImageError):
            checkerboard(10, 10, square=0)


class TestRandomBlocks:
    def test_deterministic_for_seed(self):
        a = random_blocks(40, 40, seed=5)
        b = random_blocks(40, 40, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        assert random_blocks(40, 40, seed=1) != random_blocks(40, 40, seed=2)

    def test_block_structure(self):
        image = random_blocks(32, 32, block=8, seed=0)
        block = image.pixels[:8, :8]
        assert np.all(block == block[0, 0])

    def test_intensity_range_respected(self):
        image = random_blocks(64, 64, seed=3, low=50, high=60)
        assert image.pixels.min() >= 50
        assert image.pixels.max() <= 60


class TestTexturedNoiseAndCorner:
    def test_textured_noise_uses_full_range(self):
        image = textured_noise(64, 64, seed=0)
        assert image.pixels.min() == 0
        assert image.pixels.max() == 255

    def test_isolated_corner_location(self):
        image = isolated_corner(64, 64, corner_xy=(20, 30))
        assert image.pixels[30, 20] == 220
        assert image.pixels[29, 19] == 30

    def test_isolated_corner_rejects_boundary(self):
        with pytest.raises(ImageError):
            isolated_corner(32, 32, corner_xy=(0, 5))


class TestNoiseShiftRotate:
    def test_noise_changes_pixels_but_not_shape(self, blocks_image):
        noisy = add_gaussian_noise(blocks_image, sigma=5.0, seed=1)
        assert noisy.shape == blocks_image.shape
        assert noisy != blocks_image

    def test_zero_sigma_is_identity(self, blocks_image):
        assert add_gaussian_noise(blocks_image, sigma=0.0) == blocks_image

    def test_negative_sigma_rejected(self, blocks_image):
        with pytest.raises(ImageError):
            add_gaussian_noise(blocks_image, sigma=-1.0)

    def test_shift_moves_content(self, blocks_image):
        shifted = shift_image(blocks_image, 5, 3, fill=0)
        assert np.array_equal(
            shifted.pixels[3:, 5:], blocks_image.pixels[:-3, :-5]
        )
        assert np.all(shifted.pixels[:3, :] == 0)

    def test_shift_negative_direction(self, blocks_image):
        shifted = shift_image(blocks_image, -4, -2, fill=7)
        assert np.array_equal(
            shifted.pixels[:-2, :-4], blocks_image.pixels[2:, 4:]
        )
        assert np.all(shifted.pixels[-2:, :] == 7)

    def test_rotate_zero_is_identity_in_the_interior(self, blocks_image):
        rotated = rotate_image(blocks_image, 0.0)
        assert rotated == blocks_image

    def test_rotate_half_turn_reverses(self):
        image = random_blocks(41, 41, block=5, seed=9)
        rotated = rotate_image(image, np.pi)
        # rotating 180 degrees about the centre flips both axes
        assert np.array_equal(rotated.pixels[20, 10], image.pixels[20, 30])
