"""Integration tests for the tracker and the full SLAM system."""

import numpy as np
import pytest

from repro.config import SlamConfig
from repro.errors import TrackingError
from repro.geometry import Pose
from repro.slam import Frame, SlamSystem, Tracker, run_slam


class TestFrame:
    def test_depth_shape_validated(self, tiny_sequence, small_camera):
        rgbd = tiny_sequence[0]
        with pytest.raises(TrackingError):
            Frame(
                index=0,
                timestamp=0.0,
                image=rgbd.image,
                depth=np.zeros((10, 10)),
                camera=small_camera,
            )

    def test_feature_accessors_empty_before_extraction(self, tiny_sequence):
        rgbd = tiny_sequence[0]
        frame = Frame(
            index=0,
            timestamp=0.0,
            image=rgbd.image,
            depth=rgbd.depth,
            camera=tiny_sequence.camera,
        )
        assert frame.descriptor_matrix().shape == (0, 32)
        assert frame.keypoint_pixels().shape == (0, 2)

    def test_back_projection_requires_pose(self, tiny_sequence, tiny_slam_config):
        from repro.features import OrbExtractor

        rgbd = tiny_sequence[0]
        frame = Frame(
            index=0,
            timestamp=0.0,
            image=rgbd.image,
            depth=rgbd.depth,
            camera=tiny_sequence.camera,
        )
        frame.set_features(OrbExtractor(tiny_slam_config.extractor).extract(rgbd.image))
        with pytest.raises(TrackingError):
            frame.back_project_feature(0)
        frame.pose = Pose.identity()
        point = frame.back_project_feature(0)
        assert point is None or point.shape == (3,)


class TestTrackerOnSequence:
    def test_first_frame_initialises_map(self, tiny_sequence, tiny_slam_config):
        tracker = Tracker(tiny_slam_config)
        rgbd = tiny_sequence[0]
        frame = Frame(
            index=0, timestamp=0.0, image=rgbd.image, depth=rgbd.depth,
            camera=tiny_sequence.camera,
        )
        result = tracker.process(frame)
        assert result.is_keyframe
        assert result.pose.is_close(Pose.identity())
        assert len(tracker.map) > 50

    def test_second_frame_tracks_against_map(self, tiny_sequence, tiny_slam_config):
        tracker = Tracker(tiny_slam_config)
        for index in range(2):
            rgbd = tiny_sequence[index]
            frame = Frame(
                index=index, timestamp=rgbd.timestamp, image=rgbd.image,
                depth=rgbd.depth, camera=tiny_sequence.camera,
            )
            result = tracker.process(frame)
        assert result.tracked
        assert result.num_inliers >= tiny_slam_config.tracker.min_matches

    def test_workload_counters_populated(self, tiny_slam_result):
        workload = tiny_slam_result.frame_results[1].workload
        assert workload.pixels_processed > 0
        assert workload.distance_evaluations > 0
        assert workload.ransac_inliers > 0
        assert workload.map_size_after > 0


class TestSlamSystem:
    def test_tracks_every_frame(self, tiny_slam_result):
        assert tiny_slam_result.tracking_success_ratio == 1.0
        assert tiny_slam_result.num_frames == 5

    def test_trajectory_error_is_small(self, tiny_slam_result):
        """The headline functional requirement: SLAM recovers the trajectory."""
        ate = tiny_slam_result.ate()
        assert ate.rmse_cm < 5.0

    def test_estimated_poses_follow_motion_direction(self, tiny_slam_result, tiny_sequence):
        estimated = tiny_slam_result.estimated_poses
        ground_truth = tiny_slam_result.ground_truth_poses
        est_step = estimated[0].camera_center() - estimated[-1].camera_center()
        gt_step = ground_truth[0].camera_center() - ground_truth[-1].camera_center()
        # displacement direction must agree (positive dot product)
        assert float(est_step @ gt_step) > 0

    def test_keyframe_bookkeeping(self, tiny_slam_result):
        assert tiny_slam_result.num_keyframes >= 1
        assert 0 < tiny_slam_result.keyframe_ratio <= 1.0
        assert tiny_slam_result.frame_results[0].is_keyframe

    def test_mean_workload_keys(self, tiny_slam_result):
        workload = tiny_slam_result.mean_workload()
        assert workload["pixels_processed"] > 0
        assert "lm_iterations" in workload

    def test_run_slam_respects_max_frames(self, tiny_sequence, tiny_slam_config):
        result = run_slam(tiny_sequence, tiny_slam_config, max_frames=3)
        assert result.num_frames == 3

    def test_independent_systems_do_not_share_state(self, tiny_sequence, tiny_slam_config):
        """Each SlamSystem owns its own map; separate runs must agree exactly."""
        first = SlamSystem(tiny_slam_config).run(tiny_sequence, max_frames=3)
        second = SlamSystem(tiny_slam_config).run(tiny_sequence, max_frames=3)
        for a, b in zip(first.estimated_poses, second.estimated_poses):
            assert a.is_close(b, atol=1e-12)

    def test_original_orb_configuration_also_tracks(self, tiny_sequence, tiny_slam_config):
        config = SlamConfig(
            extractor=tiny_slam_config.extractor.with_descriptor_mode(False),
            matcher=tiny_slam_config.matcher,
            tracker=tiny_slam_config.tracker,
        )
        result = run_slam(tiny_sequence, config, max_frames=3)
        assert result.tracking_success_ratio == 1.0
        assert result.ate().rmse_cm < 8.0
