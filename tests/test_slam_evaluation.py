"""Tests for trajectory evaluation: alignment, ATE and RPE."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.geometry import Pose, rotation_from_euler, so3_exp
from repro.slam import (
    absolute_trajectory_error,
    camera_centers,
    relative_pose_error,
    umeyama_alignment,
)


def _circle_trajectory(num=20, radius=1.0):
    poses = []
    for k in range(num):
        angle = 2 * np.pi * k / num
        center = np.array([radius * np.cos(angle), 0.0, radius * np.sin(angle)])
        rotation_wc = rotation_from_euler(0, 0, 0)
        poses.append(Pose(rotation_wc, -rotation_wc @ center))
    return poses


def _transform_trajectory(poses, rotation, translation):
    """Apply a rigid world-frame transform to every camera centre."""
    out = []
    for pose in poses:
        center = rotation @ pose.camera_center() + translation
        rotation_wc = pose.rotation @ rotation.T
        out.append(Pose(rotation_wc, -rotation_wc @ center))
    return out


class TestUmeyama:
    def test_identity_alignment(self):
        points = np.random.default_rng(0).normal(size=(20, 3))
        rotation, translation, scale = umeyama_alignment(points, points)
        assert np.allclose(rotation, np.eye(3), atol=1e-9)
        assert np.allclose(translation, np.zeros(3), atol=1e-9)
        assert scale == 1.0

    def test_recovers_known_rigid_transform(self):
        rng = np.random.default_rng(1)
        source = rng.normal(size=(30, 3))
        true_rotation = so3_exp(np.array([0.2, -0.3, 0.5]))
        true_translation = np.array([1.0, -2.0, 0.5])
        target = source @ true_rotation.T + true_translation
        rotation, translation, _ = umeyama_alignment(source, target)
        assert np.allclose(rotation, true_rotation, atol=1e-9)
        assert np.allclose(translation, true_translation, atol=1e-9)

    def test_scale_estimation(self):
        rng = np.random.default_rng(2)
        source = rng.normal(size=(30, 3))
        target = 2.5 * source
        _, _, scale = umeyama_alignment(source, target, with_scale=True)
        assert scale == pytest.approx(2.5)

    def test_rejects_too_few_points(self):
        with pytest.raises(DatasetError):
            umeyama_alignment(np.zeros((2, 3)), np.zeros((2, 3)))


class TestAte:
    def test_identical_trajectories_zero_error(self):
        poses = _circle_trajectory()
        result = absolute_trajectory_error(poses, poses)
        assert result.rmse == pytest.approx(0.0, abs=1e-12)
        assert result.mean_cm == pytest.approx(0.0, abs=1e-9)

    def test_alignment_removes_rigid_offset(self):
        ground_truth = _circle_trajectory()
        offset = _transform_trajectory(
            ground_truth, so3_exp(np.array([0.0, 0.4, 0.0])), np.array([2.0, 1.0, -3.0])
        )
        aligned = absolute_trajectory_error(offset, ground_truth, align=True)
        unaligned = absolute_trajectory_error(offset, ground_truth, align=False)
        assert aligned.rmse == pytest.approx(0.0, abs=1e-9)
        assert unaligned.rmse > 1.0

    def test_known_error_magnitude(self):
        ground_truth = _circle_trajectory()
        # add a 5 cm error to one pose out of 20
        noisy = list(ground_truth)
        pose = noisy[3]
        center = pose.camera_center() + np.array([0.05, 0.0, 0.0])
        noisy[3] = Pose(pose.rotation, -pose.rotation @ center)
        result = absolute_trajectory_error(noisy, ground_truth, align=False)
        assert result.max == pytest.approx(0.05, abs=1e-9)
        assert result.per_frame_errors.shape == (20,)

    def test_cm_conversion(self):
        ground_truth = _circle_trajectory(num=5)
        shifted = _transform_trajectory(ground_truth, np.eye(3), np.array([0.0, 0.0, 0.0]))
        result = absolute_trajectory_error(shifted, ground_truth, align=False)
        assert result.mean_cm == pytest.approx(result.mean * 100.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(DatasetError):
            absolute_trajectory_error(_circle_trajectory(5), _circle_trajectory(6))

    def test_camera_centers_helper(self):
        poses = _circle_trajectory(8)
        centers = camera_centers(poses)
        assert centers.shape == (8, 3)
        assert np.allclose(np.linalg.norm(centers[:, [0, 2]], axis=1), 1.0)


class TestRpe:
    def test_zero_for_identical(self):
        poses = _circle_trajectory()
        result = relative_pose_error(poses, poses, delta_frames=1)
        assert result.translation_rmse == pytest.approx(0.0, abs=1e-12)
        assert result.rotation_rmse_rad == pytest.approx(0.0, abs=1e-9)

    def test_detects_drift(self):
        ground_truth = _circle_trajectory(20)
        # simulate drift: each estimated pose slides an extra 1 cm along x
        drifted = []
        for index, pose in enumerate(ground_truth):
            center = pose.camera_center() + np.array([0.01 * index, 0.0, 0.0])
            drifted.append(Pose(pose.rotation, -pose.rotation @ center))
        result = relative_pose_error(drifted, ground_truth, delta_frames=1)
        assert result.translation_mean == pytest.approx(0.01, abs=1e-3)

    def test_delta_validation(self):
        poses = _circle_trajectory(5)
        with pytest.raises(DatasetError):
            relative_pose_error(poses, poses, delta_frames=0)
        with pytest.raises(DatasetError):
            relative_pose_error(poses, poses, delta_frames=5)

    def test_pair_counts(self):
        poses = _circle_trajectory(10)
        result = relative_pose_error(poses, poses, delta_frames=3)
        assert result.per_pair_translation.shape == (7,)
