"""Tests for the software ORB extractor (both workflow orders)."""

import numpy as np
import pytest

from repro.config import DescriptorConfig, ExtractorConfig, PyramidConfig
from repro.features import (
    Feature,
    Keypoint,
    OrbExtractor,
    check_workflow_equivalence,
    extract_features,
)
from repro.image import GrayImage, shift_image


class TestExtraction:
    def test_finds_features_on_textured_image(self, extraction_result):
        assert len(extraction_result.features) > 50

    def test_respects_max_features(self, extraction_result, small_extractor_config):
        assert len(extraction_result.features) <= small_extractor_config.max_features

    def test_descriptors_shape(self, extraction_result):
        matrix = extraction_result.descriptor_matrix()
        assert matrix.shape == (len(extraction_result.features), 32)
        assert matrix.dtype == np.uint8

    def test_keypoint_array_shape(self, extraction_result):
        array = extraction_result.keypoint_array()
        assert array.shape == (len(extraction_result.features), 2)

    def test_features_sorted_by_score(self, extraction_result):
        scores = [f.score for f in extraction_result.features]
        assert scores == sorted(scores, reverse=True)

    def test_all_features_have_orientation(self, extraction_result):
        for feature in extraction_result.features:
            assert feature.keypoint.orientation_bin is not None
            assert 0 <= feature.keypoint.orientation_bin < 32

    def test_flat_image_yields_no_features(self, flat_image, small_extractor_config):
        result = OrbExtractor(small_extractor_config).extract(flat_image)
        assert result.features == []

    def test_profile_counts_consistent(self, extraction_result):
        profile = extraction_result.profile
        assert profile.keypoints_after_nms <= profile.keypoints_detected
        assert profile.features_retained <= profile.descriptors_computed
        assert profile.features_retained == len(extraction_result.features)
        assert profile.pixels_processed > 0
        assert len(profile.per_level_keypoints) == 2  # two pyramid levels

    def test_level0_coordinates_scaled(self, extraction_result, small_extractor_config):
        for feature in extraction_result.features:
            if feature.keypoint.level > 0:
                scale = small_extractor_config.pyramid.level_scale(feature.keypoint.level)
                assert feature.x0 == pytest.approx(feature.keypoint.x * scale)
                break
        else:
            pytest.skip("no level-1 features found")

    def test_multi_level_features_present(self, extraction_result):
        levels = {f.keypoint.level for f in extraction_result.features}
        assert 0 in levels

    def test_convenience_function(self, blocks_image, small_extractor_config):
        result = extract_features(blocks_image, small_extractor_config)
        assert len(result.features) > 0


class TestWorkflows:
    def test_rescheduled_equals_original_keypoints(self, blocks_image):
        config = ExtractorConfig(
            image_width=160,
            image_height=120,
            pyramid=PyramidConfig(num_levels=2),
            max_features=150,
        )
        assert check_workflow_equivalence(blocks_image, config) == 0

    def test_rescheduled_computes_more_descriptors(self, blocks_image):
        base = dict(
            image_width=160,
            image_height=120,
            pyramid=PyramidConfig(num_levels=2),
            max_features=50,
        )
        rescheduled = OrbExtractor(
            ExtractorConfig(rescheduled_workflow=True, **base)
        ).extract(blocks_image)
        original = OrbExtractor(
            ExtractorConfig(rescheduled_workflow=False, **base)
        ).extract(blocks_image)
        # rescheduling describes every detected keypoint (M), the original
        # order only the retained N < M
        assert (
            rescheduled.profile.descriptors_computed
            > original.profile.descriptors_computed
        )
        assert rescheduled.profile.extra_descriptors > 0

    def test_descriptors_identical_across_workflows(self, blocks_image):
        base = dict(
            image_width=160,
            image_height=120,
            pyramid=PyramidConfig(num_levels=2),
            max_features=100,
        )
        rescheduled = OrbExtractor(
            ExtractorConfig(rescheduled_workflow=True, **base)
        ).extract(blocks_image)
        original = OrbExtractor(
            ExtractorConfig(rescheduled_workflow=False, **base)
        ).extract(blocks_image)
        key = lambda f: (f.keypoint.level, f.keypoint.x, f.keypoint.y)  # noqa: E731
        descriptors_a = {key(f): f.descriptor.tobytes() for f in rescheduled.features}
        descriptors_b = {key(f): f.descriptor.tobytes() for f in original.features}
        assert descriptors_a == descriptors_b


class TestMatchingStability:
    def test_shifted_image_features_match(self, blocks_image, small_extractor_config):
        """Features must be repeatable under small translations (tracking relies on it)."""
        from repro.matching import BruteForceMatcher

        extractor = OrbExtractor(small_extractor_config)
        original = extractor.extract(blocks_image)
        shifted = extractor.extract(shift_image(blocks_image, 3, 2, fill=128))
        matches = BruteForceMatcher().match(
            original.descriptor_matrix(), shifted.descriptor_matrix()
        )
        assert len(matches) > 0.5 * len(original.features)
        distances = sorted(match.distance for match in matches)
        assert distances[len(distances) // 2] <= 16  # median near-exact


class TestFeatureDataclass:
    def test_descriptor_validation(self):
        keypoint = Keypoint(x=5, y=5, score=1.0)
        with pytest.raises(Exception):
            Feature(keypoint=keypoint, descriptor=np.zeros((2, 2), dtype=np.uint8))

    def test_default_level0_coordinates(self):
        keypoint = Keypoint(x=7, y=9, score=1.0)
        feature = Feature(keypoint=keypoint, descriptor=np.zeros(32, dtype=np.uint8))
        assert feature.x0 == 7.0
        assert feature.y0 == 9.0
        assert feature.num_bits == 256

    def test_descriptor_bits_roundtrip(self):
        rng = np.random.default_rng(0)
        descriptor = rng.integers(0, 256, 32, dtype=np.uint8)
        feature = Feature(
            keypoint=Keypoint(x=1, y=1, score=0.0), descriptor=descriptor
        )
        assert np.array_equal(
            np.packbits(feature.descriptor_bits(), bitorder="little"), descriptor
        )
