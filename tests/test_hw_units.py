"""Tests for the ORB Extractor datapath units (functional behaviour vs software)."""

import numpy as np
import pytest

from repro.config import DescriptorConfig, FastConfig
from repro.errors import HardwareModelError
from repro.features import (
    Keypoint,
    RsBriefDescriptorEngine,
    compute_orientation,
    fast_corner_mask,
    is_fast_corner,
)
from repro.hw.orb_extractor import (
    BriefComputingUnit,
    BriefRotatorUnit,
    FastDetectionUnit,
    FeatureHeapUnit,
    HeapEntry,
    ImageSmootherUnit,
    NmsUnit,
    OrientationUnit,
)
from repro.image import GrayImage, gaussian_blur, random_blocks


@pytest.fixture(scope="module")
def texture():
    return random_blocks(96, 96, block=8, seed=31)


class TestFastDetectionUnit:
    def test_matches_software_segment_test(self, texture):
        unit = FastDetectionUnit(FastConfig(threshold=20))
        config = FastConfig(threshold=20, border=16)
        software_mask = fast_corner_mask(texture, config)
        checked = 0
        for y in range(20, 70, 3):
            for x in range(20, 70, 3):
                window = texture.pixels[y - 3 : y + 4, x - 3 : x + 4]
                is_corner, _ = unit.evaluate_window(window)
                assert is_corner == bool(software_mask[y, x]) or is_corner == is_fast_corner(
                    texture, x, y, config
                )
                checked += 1
        assert checked > 100

    def test_corner_has_positive_harris_score(self):
        unit = FastDetectionUnit()
        window = np.full((7, 7), 30, dtype=np.uint8)
        window[3:, 3:] = 220
        is_corner, score = unit.evaluate_window(window)
        if is_corner:
            assert score > 0

    def test_flat_window_is_not_a_corner(self):
        unit = FastDetectionUnit()
        is_corner, score = unit.evaluate_window(np.full((7, 7), 100, dtype=np.uint8))
        assert not is_corner
        assert score == 0.0

    def test_rejects_wrong_window_size(self):
        with pytest.raises(HardwareModelError):
            FastDetectionUnit().evaluate_window(np.zeros((5, 5)))

    def test_counts_windows(self):
        unit = FastDetectionUnit()
        unit.evaluate_window(np.zeros((7, 7)))
        unit.evaluate_window(np.zeros((7, 7)))
        assert unit.windows_evaluated == 2


class TestImageSmootherUnit:
    def test_quantised_kernel_sums_to_scale(self):
        unit = ImageSmootherUnit(weight_bits=8)
        assert unit.kernel_fixed.sum() == 256

    def test_constant_window_unchanged(self):
        unit = ImageSmootherUnit()
        assert unit.smooth_window(np.full((7, 7), 93, dtype=np.uint8)) == 93

    def test_close_to_floating_point_reference(self, texture):
        unit = ImageSmootherUnit()
        reference = gaussian_blur(texture)
        errors = []
        for y in range(10, 80, 7):
            for x in range(10, 80, 7):
                window = texture.pixels[y - 3 : y + 4, x - 3 : x + 4]
                errors.append(abs(unit.smooth_window(window) - int(reference.pixels[y, x])))
        # 8-bit quantised weights vs the float kernel: a few intensity levels at most
        assert max(errors) <= 4
        assert float(np.mean(errors)) <= 1.5

    def test_multiplier_count(self):
        assert ImageSmootherUnit().multipliers_required() == 49

    def test_rejects_wrong_window(self):
        with pytest.raises(HardwareModelError):
            ImageSmootherUnit().smooth_window(np.zeros((3, 3)))


class TestNmsUnit:
    def test_center_maximum_survives(self):
        window = np.array([[1, 2, 3], [4, 9, 5], [6, 7, 8]], dtype=float)
        assert NmsUnit().is_local_maximum(window)

    def test_center_not_maximum_suppressed(self):
        window = np.array([[1, 2, 3], [4, 5, 9], [6, 7, 8]], dtype=float)
        assert not NmsUnit().is_local_maximum(window)

    def test_tie_with_earlier_neighbour_suppressed(self):
        window = np.zeros((3, 3))
        window[1, 1] = 5.0
        window[0, 0] = 5.0  # earlier in raster order wins
        assert not NmsUnit().is_local_maximum(window)

    def test_tie_with_later_neighbour_kept(self):
        window = np.zeros((3, 3))
        window[1, 1] = 5.0
        window[2, 2] = 5.0  # later in raster order loses
        assert NmsUnit().is_local_maximum(window)

    def test_nonpositive_center_rejected(self):
        window = np.zeros((3, 3))
        assert not NmsUnit().is_local_maximum(window)

    def test_window_shape_validated(self):
        with pytest.raises(HardwareModelError):
            NmsUnit().is_local_maximum(np.zeros((5, 5)))


class TestOrientationUnit:
    def test_matches_software_orientation(self, texture):
        smoothed = gaussian_blur(texture)
        unit = OrientationUnit()
        agreements = 0
        total = 0
        for y in range(20, 76, 5):
            for x in range(20, 76, 5):
                software_bin, _ = compute_orientation(smoothed, x, y, radius=15)
                patch = smoothed.patch(x, y, 15)
                hardware_bin = unit.orientation_bin(patch)
                total += 1
                # fixed-point v/u quantisation may move the angle across a bin
                # boundary; allow a one-bin difference but require it to be rare
                difference = min((software_bin - hardware_bin) % 32, (hardware_bin - software_bin) % 32)
                assert difference <= 1
                if difference == 0:
                    agreements += 1
        assert agreements / total > 0.9

    def test_uniform_patch_bin_zero(self):
        unit = OrientationUnit()
        assert unit.orientation_bin(np.full((31, 31), 90, dtype=np.uint8)) == 0

    def test_cycles_per_feature_positive(self):
        assert OrientationUnit().cycles_per_feature() > 0
        with pytest.raises(HardwareModelError):
            OrientationUnit().cycles_per_feature(lanes=0)


class TestBriefComputingAndRotator:
    def test_descriptor_matches_software_engine(self, texture):
        """Hardware BRIEF unit + rotator must be bit-exact with the software engine."""
        smoothed = gaussian_blur(texture)
        config = DescriptorConfig()
        engine = RsBriefDescriptorEngine(config)
        unit = BriefComputingUnit(config)
        rotator = BriefRotatorUnit()
        for (x, y) in [(40, 40), (50, 60), (64, 30)]:
            orientation_bin, orientation_rad = compute_orientation(smoothed, x, y)
            keypoint = Keypoint(x, y, 1.0).with_orientation(orientation_bin, orientation_rad)
            software = engine.describe(smoothed, keypoint)
            patch = smoothed.patch(x, y, config.patch_radius)
            hardware = rotator.rotate(unit.describe(patch), orientation_bin)
            assert np.array_equal(software, hardware)

    def test_cycles_per_feature(self):
        unit = BriefComputingUnit(comparators_per_cycle=32)
        assert unit.cycles_per_feature() == pytest.approx(8.0)

    def test_patch_too_small_rejected(self):
        unit = BriefComputingUnit()
        with pytest.raises(HardwareModelError):
            unit.describe(np.zeros((7, 7), dtype=np.uint8))

    def test_rotator_validates_bin(self):
        with pytest.raises(HardwareModelError):
            BriefRotatorUnit().rotate(np.zeros(32, dtype=np.uint8), 32)

    def test_rotator_is_byte_roll(self):
        descriptor = np.arange(32, dtype=np.uint8)
        rotated = BriefRotatorUnit().rotate(descriptor, 3)
        assert np.array_equal(rotated, np.roll(descriptor, -3))


class TestFeatureHeapUnit:
    def _entry(self, score):
        return HeapEntry(x=0, y=0, level=0, score=score, descriptor=np.zeros(32, dtype=np.uint8))

    def test_keeps_best_scores(self):
        heap = FeatureHeapUnit(capacity=3)
        for score in (1.0, 5.0, 3.0, 7.0, 2.0):
            heap.offer(self._entry(score))
        retained_scores = [entry.score for entry in heap.retained()]
        assert retained_scores == [7.0, 5.0, 3.0]

    def test_insertion_cycles_logarithmic(self):
        assert FeatureHeapUnit(capacity=1024).insertion_cycles() == 11

    def test_cycle_breakdown_counts_offers(self):
        heap = FeatureHeapUnit(capacity=4)
        for score in range(10):
            heap.offer(self._entry(float(score)))
        breakdown = heap.cycle_breakdown()
        assert breakdown.components["heap.insert"] == 10 * heap.insertion_cycles()
        assert breakdown.components["heap.flush"] == 4
