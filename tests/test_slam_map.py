"""Tests for map points, the global map and the key-frame policy."""

import numpy as np
import pytest

from repro.config import TrackerConfig
from repro.errors import MapError
from repro.geometry import Pose, so3_exp
from repro.slam import GlobalMap, KeyframePolicy, MapPoint


def _descriptor(seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 256, 32, dtype=np.uint8)


class TestMapPoint:
    def test_construction_defaults(self):
        point = MapPoint(
            point_id=3, position=[1, 2, 3], descriptor=_descriptor(), created_frame=5
        )
        assert point.last_matched_frame == 5
        assert point.times_matched == 0
        assert point.position.shape == (3,)

    def test_record_match_updates_state(self):
        point = MapPoint(0, [0, 0, 1], _descriptor(), created_frame=0)
        point.record_match(4, descriptor=_descriptor(1))
        assert point.last_matched_frame == 4
        assert point.times_matched == 1

    def test_record_match_rejects_time_travel(self):
        point = MapPoint(0, [0, 0, 1], _descriptor(), created_frame=10)
        with pytest.raises(MapError):
            point.record_match(5)

    def test_frames_since_match(self):
        point = MapPoint(0, [0, 0, 1], _descriptor(), created_frame=2)
        assert point.frames_since_match(10) == 8

    def test_invalid_descriptor_rejected(self):
        with pytest.raises(MapError):
            MapPoint(0, [0, 0, 1], np.zeros((0,), dtype=np.uint8), created_frame=0)


class TestGlobalMap:
    def test_add_and_get(self):
        global_map = GlobalMap()
        point = global_map.add_point([1, 2, 3], _descriptor(), created_frame=0)
        assert len(global_map) == 1
        assert point.point_id in global_map
        assert global_map.get(point.point_id).position[2] == 3

    def test_ids_are_unique_and_increasing(self):
        global_map = GlobalMap()
        ids = [global_map.add_point([0, 0, i], _descriptor(i), 0).point_id for i in range(5)]
        assert ids == sorted(set(ids))

    def test_dense_matrices_match_points(self):
        global_map = GlobalMap()
        for i in range(4):
            global_map.add_point([i, 0, 1], _descriptor(i), 0)
        descriptors = global_map.descriptor_matrix()
        positions = global_map.position_matrix()
        assert descriptors.shape == (4, 32)
        assert positions.shape == (4, 3)
        assert positions[2, 0] == 2

    def test_matrices_update_after_insertion(self):
        global_map = GlobalMap()
        global_map.add_point([0, 0, 1], _descriptor(0), 0)
        assert global_map.descriptor_matrix().shape[0] == 1
        global_map.add_point([0, 0, 2], _descriptor(1), 0)
        assert global_map.descriptor_matrix().shape[0] == 2

    def test_empty_map_matrices(self):
        global_map = GlobalMap()
        assert global_map.descriptor_matrix().shape == (0, 32)
        assert global_map.position_matrix().shape == (0, 3)

    def test_capacity_enforced(self):
        global_map = GlobalMap(max_points=2)
        global_map.add_point([0, 0, 1], _descriptor(0), 0)
        global_map.add_point([0, 0, 2], _descriptor(1), 0)
        with pytest.raises(MapError):
            global_map.add_point([0, 0, 3], _descriptor(2), 0)

    def test_bulk_add_stops_at_capacity(self):
        global_map = GlobalMap(max_points=3)
        created = global_map.add_points(
            [[0, 0, i] for i in range(5)], [_descriptor(i) for i in range(5)], 0
        )
        assert len(created) == 3
        assert len(global_map) == 3

    def test_cull_removes_stale_points(self):
        global_map = GlobalMap()
        stale = global_map.add_point([0, 0, 1], _descriptor(0), created_frame=0)
        fresh = global_map.add_point([0, 0, 2], _descriptor(1), created_frame=0)
        global_map.record_match(fresh.point_id, 20)
        removed = global_map.cull(current_frame=40, ttl_frames=30)
        assert removed == 1
        assert stale.point_id not in global_map
        assert fresh.point_id in global_map

    def test_cull_requires_positive_ttl(self):
        with pytest.raises(MapError):
            GlobalMap().cull(10, 0)

    def test_get_missing_point(self):
        with pytest.raises(MapError):
            GlobalMap().get(99)

    def test_point_ids_align_with_matrix_rows(self):
        global_map = GlobalMap()
        for i in range(3):
            global_map.add_point([0, 0, i], _descriptor(i), 0)
        ids = global_map.point_ids()
        positions = global_map.position_matrix()
        for row, point_id in enumerate(ids):
            assert np.allclose(global_map.get(point_id).position, positions[row])


class TestKeyframePolicy:
    def test_first_frame_is_keyframe(self):
        policy = KeyframePolicy()
        decision = policy.evaluate(Pose.identity())
        assert decision.is_keyframe
        assert decision.reason == "first frame"

    def test_small_motion_is_not_keyframe(self):
        policy = KeyframePolicy(TrackerConfig(keyframe_translation_m=0.1, keyframe_rotation_rad=0.2))
        policy.evaluate(Pose.identity())
        decision = policy.evaluate(Pose(np.eye(3), np.array([0.01, 0, 0])))
        assert not decision.is_keyframe

    def test_translation_threshold_triggers(self):
        policy = KeyframePolicy(TrackerConfig(keyframe_translation_m=0.05, keyframe_rotation_rad=10.0))
        policy.evaluate(Pose.identity())
        decision = policy.evaluate(Pose(np.eye(3), np.array([0.2, 0, 0])))
        assert decision.is_keyframe
        assert decision.reason == "translation threshold"

    def test_rotation_threshold_triggers(self):
        policy = KeyframePolicy(TrackerConfig(keyframe_translation_m=10.0, keyframe_rotation_rad=0.05))
        policy.evaluate(Pose.identity())
        decision = policy.evaluate(Pose(so3_exp(np.array([0, 0.2, 0])), np.zeros(3)))
        assert decision.is_keyframe
        assert decision.reason == "rotation threshold"

    def test_threshold_measured_from_last_keyframe(self):
        policy = KeyframePolicy(TrackerConfig(keyframe_translation_m=0.1, keyframe_rotation_rad=10.0))
        policy.evaluate(Pose.identity())
        # two small steps that only together exceed the threshold
        policy.evaluate(Pose(np.eye(3), np.array([0.06, 0, 0])))
        decision = policy.evaluate(Pose(np.eye(3), np.array([0.12, 0, 0])))
        assert decision.is_keyframe

    def test_keyframe_ratio(self):
        policy = KeyframePolicy(TrackerConfig(keyframe_translation_m=100.0, keyframe_rotation_rad=100.0))
        for i in range(4):
            policy.evaluate(Pose(np.eye(3), np.array([0.001 * i, 0, 0])))
        assert policy.keyframe_ratio == pytest.approx(0.25)

    def test_reset(self):
        policy = KeyframePolicy()
        policy.evaluate(Pose.identity())
        policy.reset()
        assert policy.num_frames == 0
        assert policy.evaluate(Pose.identity()).is_keyframe
