"""Tests for nearest-neighbour resizing and the image pyramid."""

import numpy as np
import pytest

from repro.config import PyramidConfig
from repro.errors import ImageError
from repro.image import (
    GrayImage,
    ImagePyramid,
    nearest_neighbor_resize,
    pyramid_level_shapes,
    pyramid_pixel_ratio,
    resize_dimensions,
)


class TestNearestNeighborResize:
    def test_identity_scale(self, blocks_image):
        resized = nearest_neighbor_resize(blocks_image, 1.0)
        assert resized == blocks_image

    def test_output_dimensions(self, blocks_image):
        resized = nearest_neighbor_resize(blocks_image, 2.0)
        assert resized.shape == (60, 80)

    def test_values_come_from_source(self, blocks_image):
        resized = nearest_neighbor_resize(blocks_image, 1.2)
        source_values = set(np.unique(blocks_image.pixels).tolist())
        assert set(np.unique(resized.pixels).tolist()) <= source_values

    def test_rejects_upscaling(self, blocks_image):
        with pytest.raises(ImageError):
            nearest_neighbor_resize(blocks_image, 0.5)

    def test_exact_sampling_grid(self):
        pixels = np.arange(100, dtype=np.uint8).reshape(10, 10)
        resized = nearest_neighbor_resize(GrayImage(pixels), 2.0)
        assert resized.pixels[0, 0] == 0
        assert resized.pixels[1, 1] == pixels[2, 2]


class TestImagePyramid:
    def test_default_has_four_levels(self, large_blocks_image):
        pyramid = ImagePyramid(large_blocks_image)
        assert pyramid.num_levels == 4
        assert len(pyramid) == 4

    def test_level_zero_is_input(self, large_blocks_image):
        pyramid = ImagePyramid(large_blocks_image)
        assert pyramid.level(0).image == large_blocks_image

    def test_levels_shrink_by_scale_factor(self, large_blocks_image):
        pyramid = ImagePyramid(large_blocks_image, PyramidConfig(num_levels=3, scale_factor=2.0))
        assert pyramid.level(1).image.shape == (120, 160)
        assert pyramid.level(2).image.shape == (60, 80)

    def test_total_pixels_and_counts(self, large_blocks_image):
        pyramid = ImagePyramid(large_blocks_image, PyramidConfig(num_levels=2))
        counts = pyramid.pixel_counts()
        assert len(counts) == 2
        assert pyramid.total_pixels() == sum(counts)
        assert counts[0] == large_blocks_image.num_pixels

    def test_level_out_of_range(self, large_blocks_image):
        pyramid = ImagePyramid(large_blocks_image)
        with pytest.raises(ImageError):
            pyramid.level(10)

    def test_to_level0_coordinate_mapping(self, large_blocks_image):
        pyramid = ImagePyramid(large_blocks_image, PyramidConfig(num_levels=3, scale_factor=1.5))
        level = pyramid.level(2)
        x0, y0 = level.to_level0(10, 20)
        assert x0 == pytest.approx(10 * 1.5**2)
        assert y0 == pytest.approx(20 * 1.5**2)

    def test_iteration_order(self, large_blocks_image):
        pyramid = ImagePyramid(large_blocks_image)
        levels = [level.level for level in pyramid]
        assert levels == [0, 1, 2, 3]


class TestSharedResizeArithmetic:
    """One rounding rule for software levels, providers and the hw resizer."""

    def test_resize_dimensions_matches_resize_output(self, blocks_image):
        for scale in (1.0, 1.2, 1.5, 2.0):
            resized = nearest_neighbor_resize(blocks_image, scale)
            assert resized.shape == resize_dimensions(120, 160, scale)

    def test_level_shapes_match_built_pyramid(self, large_blocks_image):
        config = PyramidConfig(num_levels=4)
        pyramid = ImagePyramid(large_blocks_image, config)
        shapes = pyramid_level_shapes(240, 320, config)
        assert shapes == [level.image.shape for level in pyramid]
        assert pyramid.pixel_counts() == [h * w for h, w in shapes]

    def test_hw_resizer_uses_the_same_rule(self, large_blocks_image):
        from repro.hw.resizer import ImageResizerModule

        module = ImageResizerModule(PyramidConfig(num_levels=4))
        assert module.output_shape(large_blocks_image) == resize_dimensions(
            240, 320, module.pyramid_config.scale_factor
        )
        assert module.resize(large_blocks_image).shape == module.output_shape(
            large_blocks_image
        )

    def test_from_levels_wraps_without_rebuilding(self, large_blocks_image):
        config = PyramidConfig(num_levels=2)
        source = ImagePyramid(large_blocks_image, config)
        wrapped = ImagePyramid.from_levels(source.levels, config)
        assert wrapped.num_levels == 2
        assert wrapped.level(1).image is source.level(1).image
        with pytest.raises(ImageError):
            ImagePyramid.from_levels([], config)


class TestPyramidPixelRatio:
    def test_four_vs_two_layers_matches_paper(self):
        # Section 4.4: the 4-layer pyramid processes ~48% more pixels than 2 layers
        ratio = pyramid_pixel_ratio(4, 2, scale=1.2)
        assert ratio == pytest.approx(1.48, abs=0.01)

    def test_same_levels_is_one(self):
        assert pyramid_pixel_ratio(3, 3) == pytest.approx(1.0)

    def test_monotonic_in_levels(self):
        assert pyramid_pixel_ratio(4, 1) > pyramid_pixel_ratio(3, 1) > 1.0

    def test_rejects_invalid_levels(self):
        with pytest.raises(ImageError):
            pyramid_pixel_ratio(0, 2)
