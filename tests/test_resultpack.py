"""repro.serving.resultpack: flat-buffer codec round-trip guarantees.

Property-style sweep: randomized frames and feature counts (empty results
and full-heap results included) packed and unpacked across every engine
pair, asserting record-level bit-identity, exact buffer sizing and the
header validation that protects ring slots from corrupt payloads.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.config import ExtractorConfig, PyramidConfig
from repro.errors import ReproError
from repro.features import OrbExtractor
from repro.image import GrayImage, random_blocks
from repro.serving.resultpack import (
    RESULT_PACK_MAGIC,
    max_packed_nbytes,
    pack_into,
    pack_result,
    packed_nbytes,
    unpack_result,
)

ENGINES = ["reference", "vectorized", "hwexact"]


def _config(engine="vectorized", max_features=150):
    return ExtractorConfig(
        image_width=160,
        image_height=120,
        pyramid=PyramidConfig(num_levels=3),
        max_features=max_features,
        frontend=engine,
        backend=engine,
    )


def _assert_bit_identical(original, rebuilt):
    assert rebuilt.feature_records() == original.feature_records()
    assert rebuilt.profile == original.profile
    left = original.feature_arrays()
    right = rebuilt.feature_arrays()
    for field in (
        "levels",
        "xs",
        "ys",
        "orientation_bins",
        "scores",
        "orientation_rads",
        "x0",
        "y0",
        "descriptors",
    ):
        assert np.array_equal(
            getattr(left, field), getattr(right, field), equal_nan=True
        ), field


class TestRoundTrip:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_randomized_frames_round_trip_bit_identical(self, engine):
        """Property sweep: varied textures and retention caps per engine."""
        extractor_cache = {}
        rng = np.random.default_rng(1234)
        for trial in range(6):
            max_features = int(rng.choice([5, 40, 150]))
            key = (engine, max_features)
            if key not in extractor_cache:
                extractor_cache[key] = OrbExtractor(
                    _config(engine, max_features=max_features)
                )
            block = int(rng.choice([5, 9, 15]))
            frame = random_blocks(120, 160, block=block, seed=trial)
            result = extractor_cache[key].extract(frame)
            rebuilt = unpack_result(pack_result(result))
            _assert_bit_identical(result, rebuilt)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_empty_result_round_trips(self, engine):
        flat = GrayImage(np.full((120, 160), 128, dtype=np.uint8))
        result = OrbExtractor(_config(engine)).extract(flat)
        assert result.feature_count == 0
        rebuilt = unpack_result(pack_result(result))
        _assert_bit_identical(result, rebuilt)

    def test_full_heap_result_fills_worst_case_slot(self):
        """A result at heap capacity packs to exactly ``max_packed_nbytes``."""
        config = _config(max_features=20)
        frame = random_blocks(120, 160, block=5, seed=7)
        result = OrbExtractor(config).extract(frame)
        assert result.feature_count == config.max_features
        blob = pack_result(result)
        assert len(blob) == packed_nbytes(result) == max_packed_nbytes(config)
        _assert_bit_identical(result, unpack_result(blob))

    def test_zero_copy_unpack_views_the_buffer(self):
        result = OrbExtractor(_config()).extract(
            random_blocks(120, 160, block=9, seed=3)
        )
        buffer = np.frombuffer(pack_result(result), dtype=np.uint8)
        rebuilt = unpack_result(buffer, copy=False)
        assert rebuilt.feature_arrays().levels.base is not None
        _assert_bit_identical(result, rebuilt)


class TestPackInto:
    def test_oversized_buffer_reports_exact_bytes_used(self):
        result = OrbExtractor(_config()).extract(
            random_blocks(120, 160, block=9, seed=5)
        )
        buffer = np.zeros(packed_nbytes(result) + 4096, dtype=np.uint8)
        used = pack_into(result, buffer)
        assert used == packed_nbytes(result)
        _assert_bit_identical(result, unpack_result(buffer[:used]))

    def test_undersized_buffer_refused_not_truncated(self):
        result = OrbExtractor(_config()).extract(
            random_blocks(120, 160, block=9, seed=5)
        )
        buffer = np.zeros(packed_nbytes(result) - 1, dtype=np.uint8)
        with pytest.raises(ReproError, match="exceeds"):
            pack_into(result, buffer)
        assert not buffer.any()  # nothing was written before the size check


class TestValidation:
    def test_bad_magic_rejected(self):
        result = OrbExtractor(_config()).extract(
            random_blocks(120, 160, block=9, seed=1)
        )
        blob = np.frombuffer(pack_result(result), dtype=np.uint8).copy()
        blob[:8] = 0
        with pytest.raises(ReproError, match="magic"):
            unpack_result(blob)

    def test_truncated_payload_rejected(self):
        result = OrbExtractor(_config()).extract(
            random_blocks(120, 160, block=9, seed=1)
        )
        blob = np.frombuffer(pack_result(result), dtype=np.uint8)
        with pytest.raises(ReproError, match="truncated"):
            unpack_result(blob[: len(blob) // 2])

    def test_short_header_rejected(self):
        with pytest.raises(ReproError, match="header"):
            unpack_result(np.zeros(8, dtype=np.uint8))

    def test_magic_spells_the_format_tag(self):
        assert RESULT_PACK_MAGIC.to_bytes(4, "big") == b"RPK1"
