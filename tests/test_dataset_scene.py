"""Tests for the synthetic scenes and their exact ray-plane rendering."""

import numpy as np
import pytest

from repro.dataset import PlanarScene, TexturedPlane, room_scene, wall_scene
from repro.errors import DatasetError
from repro.geometry import PinholeCamera, Pose, rotation_from_euler
from repro.image import random_blocks


@pytest.fixture(scope="module")
def small_camera_module():
    return PinholeCamera.tum_freiburg1().scaled(0.25)


class TestTexturedPlane:
    def test_normal_is_cross_product(self):
        plane = TexturedPlane(
            origin=np.zeros(3),
            axis_u=np.array([1.0, 0, 0]),
            axis_v=np.array([0, 1.0, 0]),
            extent_u=2.0,
            extent_v=2.0,
            texture=random_blocks(32, 32),
        )
        assert np.allclose(plane.normal, [0, 0, 1])

    def test_axes_are_normalised(self):
        plane = TexturedPlane(
            origin=np.zeros(3),
            axis_u=np.array([2.0, 0, 0]),
            axis_v=np.array([0, 3.0, 0]),
            extent_u=1.0,
            extent_v=1.0,
            texture=random_blocks(16, 16),
        )
        assert np.linalg.norm(plane.axis_u) == pytest.approx(1.0)
        assert np.linalg.norm(plane.axis_v) == pytest.approx(1.0)

    def test_rejects_non_orthogonal_axes(self):
        with pytest.raises(DatasetError):
            TexturedPlane(
                origin=np.zeros(3),
                axis_u=np.array([1.0, 0, 0]),
                axis_v=np.array([1.0, 1.0, 0]),
                extent_u=1.0,
                extent_v=1.0,
                texture=random_blocks(16, 16),
            )

    def test_texture_sampling_corners(self):
        texture = random_blocks(64, 64, block=8, seed=5)
        plane = TexturedPlane(
            origin=np.zeros(3),
            axis_u=np.array([1.0, 0, 0]),
            axis_v=np.array([0, 1.0, 0]),
            extent_u=4.0,
            extent_v=4.0,
            texture=texture,
        )
        value = plane.sample_texture(np.array([0.0]), np.array([0.0]))
        assert value[0] == texture.pixels[0, 0]


class TestRendering:
    def test_wall_scene_fills_view(self, small_camera_module):
        scene = wall_scene()
        view = scene.render(small_camera_module, Pose.identity())
        assert view.image.shape == (small_camera_module.height, small_camera_module.width)
        assert view.valid_mask().all()

    def test_wall_depth_increases_off_axis(self, small_camera_module):
        # a fronto-parallel wall at z=d: depth is exactly d for every pixel
        scene = wall_scene(distance=2.5)
        view = scene.render(small_camera_module, Pose.identity())
        assert np.allclose(view.depth, 2.5, atol=1e-9)

    def test_depth_matches_backprojection(self, small_camera_module):
        """Rendered depth must be metrically consistent with the camera model."""
        scene = wall_scene(distance=3.0)
        view = scene.render(small_camera_module, Pose.identity())
        u, v = 10, 20
        point = small_camera_module.back_project(u, v, float(view.depth[v, u]))
        assert point[2] == pytest.approx(3.0, abs=1e-9)

    def test_translation_shifts_image(self, small_camera_module):
        scene = wall_scene()
        identity_view = scene.render(small_camera_module, Pose.identity())
        moved_pose = Pose(np.eye(3), np.array([-0.1, 0.0, 0.0]))  # camera moves +x
        moved_view = scene.render(small_camera_module, moved_pose)
        assert not np.array_equal(identity_view.image.pixels, moved_view.image.pixels)

    def test_moving_toward_wall_reduces_depth(self, small_camera_module):
        scene = wall_scene(distance=2.5)
        # world-to-camera translation +z means the camera centre is at -z... use
        # the camera-centre convention explicitly:
        pose = Pose(np.eye(3), np.array([0.0, 0.0, -0.5]))  # centre at +0.5 toward wall
        view = scene.render(small_camera_module, pose)
        assert np.allclose(view.depth[view.depth > 0], 2.0, atol=1e-9)

    def test_room_scene_renders_all_pixels(self, small_camera_module):
        scene = room_scene()
        view = scene.render(small_camera_module, Pose.identity())
        assert view.valid_mask().all()
        assert view.depth.max() <= 3.0 * np.sqrt(3) + 1e-6

    def test_room_scene_rotation_changes_view(self, small_camera_module):
        scene = room_scene()
        rotated_pose = Pose(rotation_from_euler(0.0, 0.3, 0.0).T, np.zeros(3))
        front = scene.render(small_camera_module, Pose.identity())
        rotated = scene.render(small_camera_module, rotated_pose)
        assert not np.array_equal(front.image.pixels, rotated.image.pixels)

    def test_empty_scene_rejected(self):
        with pytest.raises(DatasetError):
            PlanarScene([])

    def test_background_used_when_no_hit(self, small_camera_module):
        # a tiny plane far off to the side leaves most pixels unhit
        plane = TexturedPlane(
            origin=np.array([10.0, 10.0, 2.0]),
            axis_u=np.array([1.0, 0, 0]),
            axis_v=np.array([0, 1.0, 0]),
            extent_u=0.5,
            extent_v=0.5,
            texture=random_blocks(16, 16),
        )
        scene = PlanarScene([plane], background=37)
        view = scene.render(small_camera_module, Pose.identity())
        assert (view.depth == 0).any()
        assert (view.image.pixels[view.depth == 0] == 37).all()
