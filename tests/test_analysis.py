"""Tests for table formatting and the experiment runners."""

import pytest

from repro.analysis import (
    format_comparison,
    format_table,
    run_fig9_trajectory,
    run_pyramid_ablation,
    run_rescheduling_ablation,
    run_sequence_accuracy,
    run_table1_resources,
    run_table2_runtime,
    run_table3_energy,
)


class TestFormatting:
    def test_format_table_alignment(self):
        rows = [
            {"stage": "FE", "eSLAM": 9.1, "ARM": 291.6},
            {"stage": "FM", "eSLAM": 4.0, "ARM": 246.2},
        ]
        text = format_table(rows, title="Table 2")
        lines = text.splitlines()
        assert lines[0] == "Table 2"
        assert "stage" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(empty table)" in format_table([])

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_comparison_deviation(self):
        line = format_comparison("FE latency", 9.1, 8.1, unit="ms")
        assert "paper 9.10 ms" in line
        assert "-11.0%" in line

    def test_format_comparison_zero_paper_value(self):
        assert "n/a" in format_comparison("x", 0.0, 1.0)


class TestTableRunners:
    def test_table1_totals_match_paper(self):
        result = run_table1_resources()
        assert result["totals"] == {"LUT": 56954, "FF": 67809, "DSP": 111, "BRAM": 78}
        assert result["fits_xc7z045"]
        assert result["utilization_percent"]["LUT"] == pytest.approx(26.0, abs=0.3)

    def test_table2_rows_and_speedups(self):
        result = run_table2_runtime()
        assert len(result["rows"]) == 5
        assert result["stage_speedups"]["ARM Cortex-A9"]["feature_matching"] > 30

    def test_table3_reproduces_frame_rates(self):
        result = run_table3_energy()
        frame_rate_rows = [r for r in result["rows"] if r["metric"] == "frame_rate_fps"]
        normal = next(r for r in frame_rate_rows if r["frame_kind"] == "normal")
        assert normal["eSLAM"] == pytest.approx(55.87, rel=0.05)
        assert result["speedups"]["ARM Cortex-A9"]["normal"] == pytest.approx(31, rel=0.05)


class TestAblationRunners:
    def test_rescheduling_ablation_direction(self):
        result = run_rescheduling_ablation()
        assert result["rescheduled"]["latency_ms"] < result["original"]["latency_ms"]
        assert result["rescheduled"]["on_chip_bytes"] < result["original"]["on_chip_bytes"]
        assert result["latency_reduction_percent"] > 15

    def test_pyramid_ablation_matches_48_percent(self):
        result = run_pyramid_ablation()
        assert result["extra_pixels_percent"] == pytest.approx(48.0, abs=1.0)


class TestAccuracyRunners:
    def test_sequence_accuracy_small_error(self):
        error_cm = run_sequence_accuracy(
            "fr1/xyz", use_rs_brief=True, num_frames=5, image_width=160, image_height=120
        )
        assert 0 <= error_cm < 10

    def test_fig9_outputs_both_descriptors(self):
        result = run_fig9_trajectory(num_frames=5, image_width=160, image_height=120)
        assert set(result) == {"rs_brief", "original_orb"}
        assert len(result["rs_brief"]["estimated_xyz"]) == 5
        assert result["rs_brief"]["ate_rmse_cm"] < 10
