"""Tests for the RS-BRIEF pattern: the paper's core algorithmic contribution."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DescriptorConfig
from repro.errors import DescriptorError
from repro.features import (
    generate_seed,
    pattern_symmetry_error,
    rotate_descriptor_bits,
    rotate_descriptor_bytes,
    rs_brief_pattern,
)


class TestSeedGeneration:
    def test_seed_has_eight_pairs(self):
        seed = generate_seed()
        assert seed.num_pairs == 8
        assert seed.s_seed.shape == (8, 2)

    def test_seed_deterministic(self):
        a = generate_seed(DescriptorConfig(seed=3))
        b = generate_seed(DescriptorConfig(seed=3))
        assert np.allclose(a.s_seed, b.s_seed)

    def test_seed_locations_inside_patch(self):
        config = DescriptorConfig()
        seed = generate_seed(config)
        radii = np.sqrt((seed.s_seed**2).sum(axis=1))
        assert radii.max() <= config.patch_radius


class TestRsBriefPattern:
    def test_full_pattern_has_256_pairs(self):
        pattern = rs_brief_pattern()
        assert pattern.num_bits == 256

    def test_pattern_is_exactly_32_fold_symmetric(self):
        pattern = rs_brief_pattern()
        assert pattern_symmetry_error(pattern, symmetry=32, seed_pairs=8) < 1e-9

    def test_original_brief_is_not_symmetric(self):
        from repro.features import original_brief_pattern

        random_pattern = original_brief_pattern()
        assert pattern_symmetry_error(random_pattern, symmetry=32, seed_pairs=8) > 1.0

    def test_bit_layout_rotation_first(self):
        # bit r*8+g is seed pair g rotated by r steps: check r=1 explicitly
        config = DescriptorConfig()
        seed = generate_seed(config)
        pattern = rs_brief_pattern(config, seed)
        step = 2 * math.pi / 32
        rotation = np.array(
            [[math.cos(step), -math.sin(step)], [math.sin(step), math.cos(step)]]
        )
        expected = seed.s_seed @ rotation.T
        assert np.allclose(pattern.s_locations[8:16], expected, atol=1e-9)

    def test_pattern_fits_inside_patch_radius(self):
        config = DescriptorConfig()
        pattern = rs_brief_pattern(config)
        assert pattern.max_radius() <= config.patch_radius

    def test_mismatched_seed_rejected(self):
        config = DescriptorConfig()
        small_seed = generate_seed(DescriptorConfig(num_bits=128, seed_pairs=4, symmetry=32))
        with pytest.raises(DescriptorError):
            rs_brief_pattern(config, small_seed)

    def test_rotating_pattern_by_one_step_permutes_tests(self):
        """The rotational symmetry that makes descriptor-shifting equivalent."""
        pattern = rs_brief_pattern()
        step = 2 * math.pi / 32
        rotation = np.array(
            [[math.cos(step), -math.sin(step)], [math.sin(step), math.cos(step)]]
        )
        rotated = pattern.s_locations @ rotation.T
        shifted = np.roll(pattern.s_locations, -8, axis=0)
        assert np.allclose(rotated, shifted, atol=1e-9)


class TestDescriptorRotation:
    def test_bit_rotation_moves_prefix_to_end(self):
        bits = np.arange(256) % 2
        rotated = rotate_descriptor_bits(bits, orientation_bin=1, seed_pairs=8)
        assert np.array_equal(rotated[:248], bits[8:])
        assert np.array_equal(rotated[248:], bits[:8])

    def test_bit_rotation_by_zero_is_identity(self):
        bits = (np.arange(256) * 7 % 2).astype(np.uint8)
        assert np.array_equal(rotate_descriptor_bits(bits, 0), bits)

    def test_full_turn_is_identity(self):
        bits = (np.arange(256) * 3 % 2).astype(np.uint8)
        assert np.array_equal(rotate_descriptor_bits(bits, 32), bits)

    def test_byte_rotation_equals_bit_rotation(self):
        rng = np.random.default_rng(0)
        descriptor = rng.integers(0, 256, size=32, dtype=np.uint8)
        bits = np.unpackbits(descriptor, bitorder="little")
        for orientation in (0, 1, 5, 17, 31):
            rotated_bytes = rotate_descriptor_bytes(descriptor, orientation)
            rotated_bits = rotate_descriptor_bits(bits, orientation)
            assert np.array_equal(
                np.unpackbits(rotated_bytes, bitorder="little"), rotated_bits
            )

    def test_rotation_composition_is_additive(self):
        rng = np.random.default_rng(1)
        descriptor = rng.integers(0, 256, size=32, dtype=np.uint8)
        once = rotate_descriptor_bytes(rotate_descriptor_bytes(descriptor, 3), 7)
        direct = rotate_descriptor_bytes(descriptor, 10)
        assert np.array_equal(once, direct)

    def test_rejects_bad_lengths(self):
        with pytest.raises(DescriptorError):
            rotate_descriptor_bits(np.zeros(100), 1, seed_pairs=8)
        with pytest.raises(DescriptorError):
            rotate_descriptor_bits(np.zeros((2, 8)), 1)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=63), st.integers(min_value=0, max_value=63))
    def test_rotation_is_invertible(self, a, b):
        rng = np.random.default_rng(a * 64 + b)
        descriptor = rng.integers(0, 256, size=32, dtype=np.uint8)
        forward = rotate_descriptor_bytes(descriptor, a % 32)
        backward = rotate_descriptor_bytes(forward, (32 - a % 32) % 32)
        assert np.array_equal(backward, descriptor)
