"""Tests for the configuration dataclasses."""

import pytest

from repro.config import (
    AcceleratorConfig,
    DescriptorConfig,
    ExtractorConfig,
    FastConfig,
    PyramidConfig,
    SlamConfig,
    TrackerConfig,
)


class TestPyramidConfig:
    def test_default_matches_paper(self):
        config = PyramidConfig()
        assert config.num_levels == 4
        assert config.scale_factor == pytest.approx(1.2)

    def test_level_scale_grows_geometrically(self):
        config = PyramidConfig(num_levels=4, scale_factor=1.5)
        assert config.level_scale(0) == pytest.approx(1.0)
        assert config.level_scale(2) == pytest.approx(2.25)

    def test_level_scale_rejects_out_of_range(self):
        config = PyramidConfig(num_levels=3)
        with pytest.raises(ValueError):
            config.level_scale(3)
        with pytest.raises(ValueError):
            config.level_scale(-1)


class TestFastConfig:
    def test_defaults(self):
        config = FastConfig()
        assert config.arc_length == 9
        assert config.threshold == 20

    def test_rejects_invalid_arc_length(self):
        with pytest.raises(ValueError):
            FastConfig(arc_length=0)
        with pytest.raises(ValueError):
            FastConfig(arc_length=17)

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            FastConfig(threshold=-1)


class TestDescriptorConfig:
    def test_default_is_256_bit_32_fold(self):
        config = DescriptorConfig()
        assert config.num_bits == 256
        assert config.seed_pairs == 8
        assert config.symmetry == 32
        assert config.num_bytes == 32

    def test_rejects_inconsistent_bit_budget(self):
        with pytest.raises(ValueError):
            DescriptorConfig(num_bits=256, seed_pairs=8, symmetry=16)

    def test_alternative_consistent_configuration(self):
        config = DescriptorConfig(num_bits=128, seed_pairs=4, symmetry=32)
        assert config.num_bytes == 16


class TestExtractorConfig:
    def test_default_image_shape_is_vga(self):
        config = ExtractorConfig()
        assert config.image_shape == (480, 640)
        assert config.max_features == 1024

    def test_with_descriptor_mode_flips_only_the_flag(self):
        config = ExtractorConfig()
        flipped = config.with_descriptor_mode(False)
        assert flipped.use_rs_brief is False
        assert flipped.max_features == config.max_features
        assert config.use_rs_brief is True

    def test_default_backend_is_vectorized(self):
        assert ExtractorConfig().backend == "vectorized"

    def test_with_backend_flips_only_the_backend(self):
        config = ExtractorConfig().with_backend("reference")
        assert config.backend == "reference"
        assert config.max_features == ExtractorConfig().max_features

    def test_rejects_non_positive_max_features(self):
        with pytest.raises(ValueError):
            ExtractorConfig(max_features=0)
        with pytest.raises(ValueError):
            ExtractorConfig(max_features=-5)

    def test_rejects_non_positive_image_dimensions(self):
        with pytest.raises(ValueError):
            ExtractorConfig(image_width=0)
        with pytest.raises(ValueError):
            ExtractorConfig(image_height=-1)

    def test_rejects_empty_backend_name(self):
        with pytest.raises(ValueError):
            ExtractorConfig(backend="")


class TestRegistryErrorMessages:
    """Unknown backend/frontend names must list the registered alternatives."""

    def test_unknown_backend_lists_available_names(self):
        from repro.errors import FeatureError
        from repro.features import OrbExtractor

        with pytest.raises(FeatureError) as excinfo:
            OrbExtractor(ExtractorConfig(backend="nonexistent"))
        message = str(excinfo.value)
        for name in ("hwexact", "reference", "vectorized"):
            assert name in message

    def test_unknown_frontend_suggests_closest_match(self):
        from repro.errors import FeatureError
        from repro.features import OrbExtractor

        with pytest.raises(FeatureError) as excinfo:
            OrbExtractor(ExtractorConfig(frontend="vectorised"))
        message = str(excinfo.value)
        assert "did you mean 'vectorized'?" in message
        assert "detection engine" in message

    def test_shared_helper_formats_empty_registry(self):
        from repro.registry import unknown_name_message

        message = unknown_name_message("widget", "x", [])
        assert "unknown widget 'x'" in message
        assert "<none registered>" in message


class TestMatcherConfig:
    def test_defaults_valid(self):
        from repro.config import MatcherConfig

        config = MatcherConfig()
        assert config.max_hamming_distance == 64
        assert 0 < config.ratio_threshold <= 1

    def test_rejects_negative_max_distance(self):
        from repro.config import MatcherConfig

        with pytest.raises(ValueError):
            MatcherConfig(max_hamming_distance=-1)

    def test_rejects_ratio_outside_unit_interval(self):
        from repro.config import MatcherConfig

        with pytest.raises(ValueError):
            MatcherConfig(ratio_threshold=0.0)
        with pytest.raises(ValueError):
            MatcherConfig(ratio_threshold=1.5)

    def test_ratio_of_exactly_one_allowed(self):
        from repro.config import MatcherConfig

        assert MatcherConfig(ratio_threshold=1.0).ratio_threshold == 1.0


class TestAcceleratorConfig:
    def test_clock_matches_paper(self):
        config = AcceleratorConfig()
        assert config.clock_hz == pytest.approx(100e6)
        assert config.clock_period_s == pytest.approx(1e-8)

    def test_heap_capacity_default(self):
        assert AcceleratorConfig().heap_capacity == 1024


class TestCompositeConfigs:
    def test_slam_config_composes_defaults(self):
        config = SlamConfig()
        assert config.extractor.max_features == 1024
        assert config.tracker.min_matches > 0
        assert config.matcher.max_hamming_distance > 0

    def test_tracker_thresholds_positive(self):
        tracker = TrackerConfig()
        assert tracker.keyframe_translation_m > 0
        assert tracker.keyframe_rotation_rad > 0
