"""FrameServer: many frames in flight, results identical to sequential."""

import numpy as np
import pytest

from repro.analysis import BatchRunner
from repro.config import ExtractorConfig, PyramidConfig, SlamConfig, TrackerConfig
from repro.dataset import SequenceSpec, make_sequence
from repro.errors import ReproError
from repro.features import OrbExtractor
from repro.image import random_blocks
from repro.serving import FrameServer
from repro.slam import SlamSystem


@pytest.fixture(scope="module")
def serving_config():
    return ExtractorConfig(
        image_width=160,
        image_height=120,
        pyramid=PyramidConfig(num_levels=2),
        max_features=150,
    )


@pytest.fixture(scope="module")
def serving_images():
    return [random_blocks(120, 160, block=9, seed=seed) for seed in range(6)]


def _feature_key(result):
    return result.feature_records()


class TestFrameServer:
    def test_results_identical_to_sequential(self, serving_config, serving_images):
        extractor = OrbExtractor(serving_config)
        sequential = [extractor.extract(image) for image in serving_images]
        with FrameServer(extractor=extractor, max_workers=3) as server:
            served = server.extract_many(serving_images)
        assert len(served) == len(sequential)
        for seq_result, par_result in zip(sequential, served):
            assert _feature_key(seq_result) == _feature_key(par_result)
            assert vars(seq_result.profile) == vars(par_result.profile)

    def test_shares_one_engine_and_backend(self, serving_config):
        extractor = OrbExtractor(serving_config)
        with FrameServer(extractor=extractor) as server:
            assert server.extractor is extractor
            assert server.extractor.frontend is extractor.frontend
            assert server.extractor.backend is extractor.backend

    def test_stats_and_bounded_in_flight(self, serving_config, serving_images):
        with FrameServer(
            config=serving_config, max_workers=2, max_in_flight=3
        ) as server:
            server.extract_many(serving_images)
            stats = server.stats
        assert stats.frames_submitted == len(serving_images)
        assert stats.frames_completed == len(serving_images)
        assert 1 <= stats.max_in_flight <= 3
        # latency/throughput metrics, comparable with ClusterStats
        assert len(stats.latencies_s) == len(serving_images)
        assert stats.latency_p95_ms >= stats.latency_p50_ms > 0.0
        assert stats.elapsed_s > 0.0
        assert stats.throughput_fps > 0.0
        report = stats.as_dict()
        assert report["frames_completed"] == len(serving_images)
        assert report["latency_p50_ms"] == stats.latency_p50_ms

    def test_submit_after_close_rejected(self, serving_config, serving_images):
        server = FrameServer(config=serving_config)
        server.close()
        with pytest.raises(ReproError):
            server.submit(serving_images[0])

    def test_invalid_configuration_rejected(self, serving_config):
        with pytest.raises(ReproError):
            FrameServer(config=serving_config, max_workers=0)
        with pytest.raises(ReproError):
            FrameServer(config=serving_config, max_workers=4, max_in_flight=2)
        with pytest.raises(ReproError):
            FrameServer(
                extractor=OrbExtractor(serving_config),
                config=ExtractorConfig(image_width=64, image_height=64),
            )


class TestServedSlam:
    @pytest.fixture(scope="class")
    def slam_setup(self, serving_config):
        config = SlamConfig(
            extractor=serving_config,
            tracker=TrackerConfig(ransac_iterations=32, pose_iterations=6),
        )
        sequence = make_sequence(
            SequenceSpec(name="fr1/xyz", num_frames=5, image_width=160, image_height=120)
        )
        return config, sequence

    def test_pipelined_run_identical(self, slam_setup):
        config, sequence = slam_setup
        extractor = OrbExtractor(config.extractor)
        sequential = SlamSystem(config, extractor=extractor).run(sequence)
        with FrameServer(extractor=extractor, max_workers=3) as server:
            served = SlamSystem(config, extractor=extractor).run(
                sequence, frame_server=server
            )
        assert served.num_frames == sequential.num_frames
        assert served.ate().mean_cm == sequential.ate().mean_cm
        for a, b in zip(sequential.frame_results, served.frame_results):
            assert a.num_matches == b.num_matches
            assert a.num_inliers == b.num_inliers
            assert np.array_equal(a.pose.rotation, b.pose.rotation)
            assert np.array_equal(a.pose.translation, b.pose.translation)

    def test_mismatched_server_config_rejected(self, slam_setup):
        config, sequence = slam_setup
        with FrameServer(config=ExtractorConfig(image_width=64, image_height=64)) as server:
            with pytest.raises(ReproError):
                SlamSystem(config).run(sequence, frame_server=server)


class TestServingEngineMatrix:
    """FrameServer must serve every registered engine pair unchanged."""

    @pytest.mark.parametrize("engine", ["reference", "vectorized", "hwexact"])
    def test_served_results_identical_to_sequential(
        self, engine, serving_config, serving_images
    ):
        from dataclasses import replace

        config = replace(serving_config, frontend=engine, backend=engine)
        extractor = OrbExtractor(config)
        sequential = [extractor.extract(image) for image in serving_images[:4]]
        with FrameServer(extractor=extractor, max_workers=3) as server:
            served = server.extract_many(serving_images[:4])
        assert extractor.frontend.name == engine
        assert extractor.backend.name == engine
        for seq_result, par_result in zip(sequential, served):
            assert _feature_key(seq_result) == _feature_key(par_result)
            assert vars(seq_result.profile) == vars(par_result.profile)


class TestParallelBatchRunner:
    def test_parallel_sweep_identical_to_sequential(self, serving_config):
        config = SlamConfig(
            extractor=serving_config,
            tracker=TrackerConfig(ransac_iterations=32, pose_iterations=6),
        )
        specs = [
            SequenceSpec(name=name, num_frames=3, image_width=160, image_height=120)
            for name in ("fr1/xyz", "fr1/desk", "fr2/rpy")
        ]
        sequential = BatchRunner(config=config)
        parallel = BatchRunner(config=config)
        seq_records = sequential.run_all(specs)
        par_records = parallel.run_all_parallel(specs, max_workers=3)
        assert par_records == seq_records
        assert parallel.records == sequential.records  # appended in spec order
        assert parallel.summary()["backend"] == "vectorized"
