"""Tests for BRIEF patterns: original, rotated and the 30-angle LUT."""

import math

import numpy as np
import pytest

from repro.errors import DescriptorError
from repro.features import (
    BriefPattern,
    RotatedPatternLUT,
    original_brief_pattern,
    rotated_pattern,
)


class TestBriefPattern:
    def test_default_has_256_pairs_inside_radius(self):
        pattern = original_brief_pattern()
        assert pattern.num_bits == 256
        assert pattern.max_radius() <= 15.0 + 1e-9

    def test_deterministic_for_seed(self):
        a = original_brief_pattern(seed=1)
        b = original_brief_pattern(seed=1)
        assert np.allclose(a.s_locations, b.s_locations)
        assert np.allclose(a.d_locations, b.d_locations)

    def test_different_seeds_differ(self):
        a = original_brief_pattern(seed=1)
        b = original_brief_pattern(seed=2)
        assert not np.allclose(a.s_locations, b.s_locations)

    def test_rounded_is_integer(self):
        pattern = original_brief_pattern()
        s_int, d_int = pattern.rounded()
        assert s_int.dtype == np.int64
        assert d_int.shape == (256, 2)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(DescriptorError):
            BriefPattern(np.zeros((4, 2)), np.zeros((5, 2)), patch_radius=15)

    def test_rejects_out_of_radius_locations(self):
        s = np.array([[20.0, 0.0]])
        d = np.array([[0.0, 0.0]])
        with pytest.raises(DescriptorError):
            BriefPattern(s, d, patch_radius=15)

    def test_rejects_empty_pattern(self):
        with pytest.raises(DescriptorError):
            BriefPattern(np.zeros((0, 2)), np.zeros((0, 2)), patch_radius=15)

    def test_gaussian_locations_concentrated_near_center(self):
        pattern = original_brief_pattern(num_bits=512, patch_radius=15, seed=3)
        radii = np.sqrt((pattern.s_locations**2).sum(axis=1))
        # a Gaussian with sigma = radius/2 puts well over half the mass inside r/2... loosely
        assert (radii < 15 / 2).mean() > 0.4


class TestRotatedPattern:
    def test_rotation_preserves_radii(self):
        pattern = original_brief_pattern(seed=4)
        rotated = rotated_pattern(pattern, 0.7)
        original_radii = np.sqrt((pattern.s_locations**2).sum(axis=1))
        rotated_radii = np.sqrt((rotated.s_locations**2).sum(axis=1))
        assert np.allclose(original_radii, rotated_radii)

    def test_rotation_by_zero_is_identity(self):
        pattern = original_brief_pattern(seed=4)
        rotated = rotated_pattern(pattern, 0.0)
        assert np.allclose(pattern.s_locations, rotated.s_locations)

    def test_rotation_composition(self):
        pattern = original_brief_pattern(seed=4)
        once = rotated_pattern(rotated_pattern(pattern, 0.3), 0.4)
        direct = rotated_pattern(pattern, 0.7)
        assert np.allclose(once.s_locations, direct.s_locations, atol=1e-9)

    def test_equation_2_explicit(self):
        # verify the paper's rotation formula on a single point
        pattern = BriefPattern(
            np.array([[1.0, 0.0]]), np.array([[0.0, 1.0]]), patch_radius=2
        )
        rotated = rotated_pattern(pattern, math.pi / 2)
        assert rotated.s_locations[0] == pytest.approx([0.0, 1.0], abs=1e-12)
        assert rotated.d_locations[0] == pytest.approx([-1.0, 0.0], abs=1e-12)


class TestRotatedPatternLUT:
    def test_thirty_angles_by_default(self):
        lut = RotatedPatternLUT(original_brief_pattern(seed=5))
        assert len(lut) == 30

    def test_angle_index_rounding(self):
        lut = RotatedPatternLUT(original_brief_pattern(seed=5))
        assert lut.angle_index(0.0) == 0
        assert lut.angle_index(math.radians(12.0)) == 1
        assert lut.angle_index(math.radians(5.0)) == 0
        assert lut.angle_index(math.radians(7.0)) == 1

    def test_max_discretization_error_is_6_degrees(self):
        lut = RotatedPatternLUT(original_brief_pattern(seed=5))
        assert lut.max_discretization_error_rad() == pytest.approx(math.radians(6.0))

    def test_storage_cost_matches_paper_motivation(self):
        # 30 patterns x 2 sets x 256 locations = 15360 stored locations;
        # this is the memory cost RS-BRIEF eliminates
        lut = RotatedPatternLUT(original_brief_pattern(seed=5))
        assert lut.storage_locations() == 30 * 2 * 256

    def test_pattern_at_bounds(self):
        lut = RotatedPatternLUT(original_brief_pattern(seed=5))
        with pytest.raises(DescriptorError):
            lut.pattern_at(30)

    def test_lut_patterns_are_rotations_of_base(self):
        base = original_brief_pattern(seed=6)
        lut = RotatedPatternLUT(base, num_angles=12)
        fifth = lut.pattern_at(5)
        expected = rotated_pattern(base, 2 * math.pi * 5 / 12)
        assert np.allclose(fifth.s_locations, expected.s_locations)
