"""Tests for the Markdown reproduction-report generator."""

from repro.analysis.report import ReportOptions, build_report, write_report


class TestReportGeneration:
    def test_report_contains_all_model_sections(self):
        report = build_report()
        assert report.startswith("# eSLAM reproduction report")
        assert "Table 1" in report
        assert "Table 2" in report
        assert "Table 3" in report
        assert "ablations" in report
        # accuracy is optional and off by default
        assert "Figure 8" not in report

    def test_report_quotes_paper_totals(self):
        report = build_report()
        assert "56954" in report
        assert "feature_extraction" in report

    def test_report_with_accuracy_section(self):
        options = ReportOptions(
            include_accuracy=True,
            accuracy_frames=5,
            accuracy_width=160,
            accuracy_height=120,
        )
        report = build_report(options)
        assert "Figure 8" in report
        assert "RS-BRIEF" in report

    def test_write_report(self, tmp_path):
        path = write_report(tmp_path / "report.md")
        assert path.exists()
        assert path.read_text().startswith("# eSLAM reproduction report")
