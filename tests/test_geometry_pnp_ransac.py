"""Tests for PnP pose estimation and RANSAC outlier rejection."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import (
    PinholeCamera,
    PnpRansac,
    Pose,
    RansacConfig,
    adaptive_iterations,
    estimate_pose_3d3d,
    ransac_generic,
    so3_exp,
    solve_pnp,
)


@pytest.fixture()
def synthetic_pnp_problem(camera):
    rng = np.random.default_rng(42)
    points_world = rng.uniform([-1.5, -1.0, 1.5], [1.5, 1.0, 4.0], size=(120, 3))
    true_pose = Pose(so3_exp(np.array([0.04, -0.06, 0.09])), np.array([0.12, -0.04, 0.06]))
    pixels = camera.project(true_pose.transform(points_world))
    return camera, points_world, true_pose, pixels


class TestKabschAlignment:
    def test_recovers_known_transform(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(30, 3))
        pose = Pose(so3_exp(np.array([0.2, -0.1, 0.3])), np.array([0.5, -0.2, 1.0]))
        transformed = pose.transform(points)
        recovered = estimate_pose_3d3d(points, transformed)
        assert recovered.is_close(pose, atol=1e-9)

    def test_identity_for_same_sets(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(10, 3))
        assert estimate_pose_3d3d(points, points).is_close(Pose.identity(), atol=1e-9)

    def test_rejects_too_few_points(self):
        with pytest.raises(GeometryError):
            estimate_pose_3d3d(np.zeros((2, 3)), np.zeros((2, 3)))

    def test_robust_to_small_noise(self):
        rng = np.random.default_rng(3)
        points = rng.normal(size=(100, 3))
        pose = Pose(so3_exp(np.array([0.1, 0.2, -0.1])), np.array([0.3, 0.1, -0.2]))
        noisy = pose.transform(points) + rng.normal(0, 1e-3, size=(100, 3))
        recovered = estimate_pose_3d3d(points, noisy)
        assert recovered.translation_distance(pose) < 1e-2
        assert recovered.rotation_angle(pose) < 1e-2


class TestIterativePnp:
    def test_recovers_pose_from_clean_data(self, synthetic_pnp_problem):
        camera, points, true_pose, pixels = synthetic_pnp_problem
        result = solve_pnp(points, pixels, camera)
        assert result.pose.translation_distance(true_pose) < 1e-4
        assert result.pose.rotation_angle(true_pose) < 1e-4
        assert result.inlier_rmse_px < 0.1

    def test_benefits_from_initial_guess(self, synthetic_pnp_problem):
        camera, points, true_pose, pixels = synthetic_pnp_problem
        warm = solve_pnp(points, pixels, camera, initial_pose=true_pose, max_iterations=3)
        assert warm.pose.translation_distance(true_pose) < 1e-6

    def test_handles_noisy_observations(self, synthetic_pnp_problem):
        camera, points, true_pose, pixels = synthetic_pnp_problem
        rng = np.random.default_rng(5)
        noisy = pixels + rng.normal(0, 0.5, pixels.shape)
        result = solve_pnp(points, noisy, camera)
        assert result.pose.translation_distance(true_pose) < 0.01

    def test_rejects_too_few_points(self, camera):
        with pytest.raises(GeometryError):
            solve_pnp(np.zeros((3, 3)), np.zeros((3, 2)), camera)

    def test_shape_validation(self, camera):
        with pytest.raises(GeometryError):
            solve_pnp(np.zeros((5, 3)), np.zeros((4, 2)), camera)


class TestPnpRansac:
    def test_rejects_outliers(self, synthetic_pnp_problem):
        camera, points, true_pose, pixels = synthetic_pnp_problem
        rng = np.random.default_rng(7)
        corrupted = pixels.copy()
        outliers = rng.choice(len(points), size=30, replace=False)
        corrupted[outliers] += rng.uniform(40, 120, size=(30, 2))
        depths = true_pose.transform(points)[:, 2]
        result = PnpRansac(camera, RansacConfig(num_iterations=100)).estimate(
            points, corrupted, observed_depths=depths
        )
        assert result.success
        assert result.num_inliers >= len(points) - 35
        assert result.model.translation_distance(true_pose) < 0.01
        # no outlier should be classified as an inlier
        assert not set(outliers.tolist()) & set(result.inlier_indices().tolist())

    def test_all_inliers(self, synthetic_pnp_problem):
        camera, points, true_pose, pixels = synthetic_pnp_problem
        depths = true_pose.transform(points)[:, 2]
        result = PnpRansac(camera).estimate(points, pixels, observed_depths=depths)
        assert result.num_inliers == len(points)

    def test_too_few_correspondences_rejected(self, camera):
        with pytest.raises(GeometryError):
            PnpRansac(camera).estimate(np.zeros((2, 3)), np.zeros((2, 2)))

    def test_adaptive_termination_runs_fewer_iterations(self, synthetic_pnp_problem):
        camera, points, true_pose, pixels = synthetic_pnp_problem
        depths = true_pose.transform(points)[:, 2]
        result = PnpRansac(camera, RansacConfig(num_iterations=500)).estimate(
            points, pixels, observed_depths=depths
        )
        assert result.num_iterations < 500


class TestAdaptiveIterations:
    def test_high_inlier_ratio_needs_few_iterations(self):
        assert adaptive_iterations(0.9, 4, 0.99, 1000) <= 5

    def test_low_inlier_ratio_hits_cap(self):
        assert adaptive_iterations(0.05, 4, 0.99, 200) == 200

    def test_zero_ratio_returns_max(self):
        assert adaptive_iterations(0.0, 4, 0.99, 123) == 123

    def test_perfect_ratio_returns_one(self):
        assert adaptive_iterations(1.0, 4, 0.99, 123) == 1


class TestGenericRansac:
    def test_line_fitting_with_outliers(self):
        rng = np.random.default_rng(11)
        xs = np.linspace(0, 10, 50)
        ys = 2.0 * xs + 1.0 + rng.normal(0, 0.05, 50)
        ys[:10] += rng.uniform(5, 10, 10)  # outliers

        def fit(indices):
            a = np.polyfit(xs[indices], ys[indices], 1)
            return a

        def score(model):
            return np.abs(np.polyval(model, xs) - ys)

        model, mask = ransac_generic(
            data_size=50, fit=fit, score=score, sample_size=2,
            num_iterations=60, inlier_threshold=0.3,
        )
        assert model is not None
        assert mask.sum() >= 38
        assert model[0] == pytest.approx(2.0, abs=0.1)

    def test_rejects_insufficient_data(self):
        with pytest.raises(GeometryError):
            ransac_generic(1, lambda idx: None, lambda m: np.zeros(1), 2, 10, 1.0)
