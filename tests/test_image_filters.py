"""Tests for Gaussian/box filtering and Sobel gradients."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.image import (
    GrayImage,
    box_blur,
    gaussian_blur,
    gaussian_kernel_1d,
    gaussian_kernel_2d,
    sobel_gradients,
)


class TestKernels:
    def test_kernel_normalised(self):
        kernel = gaussian_kernel_1d(7, 2.0)
        assert kernel.sum() == pytest.approx(1.0)

    def test_kernel_symmetric_and_peaked(self):
        kernel = gaussian_kernel_1d(7, 2.0)
        assert np.allclose(kernel, kernel[::-1])
        assert kernel.argmax() == 3

    def test_kernel_2d_is_outer_product(self):
        k1 = gaussian_kernel_1d(5, 1.5)
        k2 = gaussian_kernel_2d(5, 1.5)
        assert np.allclose(k2, np.outer(k1, k1))
        assert k2.sum() == pytest.approx(1.0)

    def test_invalid_kernel_parameters(self):
        with pytest.raises(ImageError):
            gaussian_kernel_1d(4, 1.0)
        with pytest.raises(ImageError):
            gaussian_kernel_1d(5, 0.0)


class TestGaussianBlur:
    def test_preserves_constant_image(self):
        image = GrayImage.full(32, 32, 77)
        blurred = gaussian_blur(image)
        assert np.all(blurred.pixels == 77)

    def test_reduces_variance_of_noise(self):
        rng = np.random.default_rng(0)
        image = GrayImage(rng.integers(0, 256, size=(64, 64), dtype=np.uint8))
        blurred = gaussian_blur(image)
        assert blurred.pixels.astype(float).var() < image.pixels.astype(float).var()

    def test_preserves_mean_approximately(self):
        rng = np.random.default_rng(1)
        image = GrayImage(rng.integers(0, 256, size=(64, 64), dtype=np.uint8))
        blurred = gaussian_blur(image)
        assert abs(blurred.pixels.mean() - image.pixels.mean()) < 2.0

    def test_output_shape_matches_input(self, blocks_image):
        blurred = gaussian_blur(blocks_image)
        assert blurred.shape == blocks_image.shape

    def test_smooths_a_step_edge(self):
        pixels = np.zeros((20, 20), dtype=np.uint8)
        pixels[:, 10:] = 200
        blurred = gaussian_blur(GrayImage(pixels))
        # intermediate values appear near the step
        assert np.any((blurred.pixels > 20) & (blurred.pixels < 180))


class TestBoxBlur:
    def test_constant_invariance(self):
        image = GrayImage.full(16, 16, 42)
        assert np.all(box_blur(image).pixels == 42)

    def test_rejects_even_kernel(self, blocks_image):
        with pytest.raises(ImageError):
            box_blur(blocks_image, size=4)


class TestSobel:
    def test_vertical_edge_gives_horizontal_gradient(self):
        pixels = np.zeros((20, 20), dtype=np.uint8)
        pixels[:, 10:] = 100
        gx, gy = sobel_gradients(GrayImage(pixels))
        assert np.abs(gx[:, 9:11]).max() > 0
        interior_gy = gy[2:-2, 2:-2]
        assert np.abs(interior_gy).max() == pytest.approx(0.0)

    def test_horizontal_edge_gives_vertical_gradient(self):
        pixels = np.zeros((20, 20), dtype=np.uint8)
        pixels[10:, :] = 100
        gx, gy = sobel_gradients(GrayImage(pixels))
        assert np.abs(gy[9:11, :]).max() > 0
        interior_gx = gx[2:-2, 2:-2]
        assert np.abs(interior_gx).max() == pytest.approx(0.0)

    def test_flat_image_zero_gradient(self, flat_image):
        gx, gy = sobel_gradients(flat_image)
        assert np.abs(gx).max() == pytest.approx(0.0)
        assert np.abs(gy).max() == pytest.approx(0.0)

    def test_output_shapes(self, blocks_image):
        gx, gy = sobel_gradients(blocks_image)
        assert gx.shape == blocks_image.shape
        assert gy.shape == blocks_image.shape
