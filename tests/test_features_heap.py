"""Tests for the bounded score heap (the feature-filtering Heap module)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FeatureError
from repro.features import BoundedScoreHeap, top_k_by_score


class TestBoundedScoreHeap:
    def test_keeps_all_when_under_capacity(self):
        heap = BoundedScoreHeap(capacity=10)
        for i in range(5):
            assert heap.offer(float(i), f"item{i}")
        assert len(heap) == 5

    def test_keeps_only_best_when_full(self):
        heap = BoundedScoreHeap(capacity=3)
        for i in range(10):
            heap.offer(float(i), i)
        assert sorted(heap.items_by_score()) == [7, 8, 9]

    def test_items_sorted_by_descending_score(self):
        heap = BoundedScoreHeap(capacity=4)
        for score, item in [(3.0, "c"), (1.0, "a"), (4.0, "d"), (2.0, "b")]:
            heap.offer(score, item)
        assert heap.items_by_score() == ["d", "c", "b", "a"]

    def test_equal_scores_keep_earlier_item(self):
        heap = BoundedScoreHeap(capacity=1)
        heap.offer(5.0, "first")
        retained = heap.offer(5.0, "second")
        assert retained is False
        assert heap.items_by_score() == ["first"]

    def test_min_score_threshold(self):
        heap = BoundedScoreHeap(capacity=3)
        for score in (1.0, 5.0, 3.0, 7.0):
            heap.offer(score, score)
        assert heap.min_score() == 3.0

    def test_min_score_on_empty_raises(self):
        with pytest.raises(FeatureError):
            BoundedScoreHeap(capacity=2).min_score()

    def test_statistics_counts(self):
        heap = BoundedScoreHeap(capacity=2)
        heap.offer(1.0, "a")
        heap.offer(2.0, "b")
        heap.offer(3.0, "c")  # replacement
        heap.offer(0.5, "d")  # rejection
        assert heap.stats.insertions == 2
        assert heap.stats.replacements == 1
        assert heap.stats.rejections == 1
        assert heap.stats.total_offered() == 4
        assert heap.stats.comparisons > 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(FeatureError):
            BoundedScoreHeap(capacity=0)

    def test_extend(self):
        heap = BoundedScoreHeap(capacity=2)
        heap.extend([(1.0, "a"), (3.0, "c"), (2.0, "b")])
        assert heap.items_by_score() == ["c", "b"]

    def test_scores_descending(self):
        heap = BoundedScoreHeap(capacity=5)
        heap.extend([(float(i % 7), i) for i in range(20)])
        scores = heap.scores()
        assert scores == sorted(scores, reverse=True)


class TestEquivalenceWithSort:
    @settings(max_examples=50, deadline=None)
    @given(
        scores=st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=200),
        capacity=st.integers(min_value=1, max_value=64),
    )
    def test_heap_matches_sort_reference(self, scores, capacity):
        """Streaming heap filtering retains exactly the same set as batch sorting."""
        items = list(range(len(scores)))
        heap = BoundedScoreHeap(capacity=capacity)
        heap.extend(zip(scores, items))
        expected = top_k_by_score(zip(scores, items), capacity)
        assert heap.items_by_score() == expected

    def test_top_k_rejects_bad_k(self):
        with pytest.raises(FeatureError):
            top_k_by_score([(1.0, "a")], 0)
