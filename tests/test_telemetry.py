"""repro.telemetry: metrics primitives, tracing, the journal, docs drift.

The unit half exercises the primitives in isolation (counters, gauges,
log-bucket histograms, the activity window with an injected clock, the
tracer's no-op discipline, clock calibration and structural validation on
synthetic traces, the journal).  The integration half drives real servers:
a traced 2-worker cluster run must merge into a structurally valid trace
with every frame covered, spans flushed before a worker crash must survive
the crash, results must stay bit-identical with tracing enabled on every
engine, and every registered metric name must appear in
``docs/observability.md`` (the drift check that keeps the doc honest).
"""

import os
from dataclasses import replace

import pytest

from repro.chaos import FaultEvent, FaultPlan
from repro.cluster import ClusterServer, ClusterStats, SupervisorConfig, WorkerStats
from repro.config import ExtractorConfig, PyramidConfig
from repro.errors import ReproError
from repro.features import OrbExtractor
from repro.image import random_blocks
from repro.serving import FrameServer
from repro.telemetry import (
    ActivityWindow,
    Counter,
    EventJournal,
    Gauge,
    Histogram,
    MetricsRegistry,
    Trace,
    Tracer,
    current_tracer,
    load_chrome_trace,
    set_tracer,
)

ENGINES = ("reference", "vectorized", "hwexact")

FAST_SUPERVISION = SupervisorConfig(
    restart_backoff_s=0.02, restart_backoff_max_s=0.2, heartbeat_timeout_s=30.0
)


@pytest.fixture(scope="module")
def telemetry_config():
    return ExtractorConfig(
        image_width=160,
        image_height=120,
        pyramid=PyramidConfig(num_levels=2),
        max_features=150,
    )


@pytest.fixture(scope="module")
def telemetry_images():
    return [random_blocks(120, 160, block=9, seed=seed) for seed in range(6)]


def _feature_key(result):
    return result.feature_records()  # the repo-wide bit-identity key


# ---------------------------------------------------------------------------
# metrics primitives
# ---------------------------------------------------------------------------


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("events_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_inc_rejects_negative(self):
        counter = Counter("events_total")
        with pytest.raises(ReproError):
            counter.inc(-1)

    def test_signed_add_is_the_escape_hatch(self):
        counter = Counter("events_total")
        counter.inc(3)
        counter.add(-1)  # compensating bookkeeping (abandoned submission)
        assert counter.value == 2

    def test_bad_name_rejected(self):
        with pytest.raises(ReproError):
            Counter("bad name!")


class TestGauge:
    def test_set_inc_dec_set_max(self):
        gauge = Gauge("depth")
        gauge.set(3)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 2
        gauge.set_max(10)
        gauge.set_max(4)  # lower: ignored
        assert gauge.value == 10

    def test_callback_gauge_reads_fn_and_rejects_set(self):
        source = {"value": 7}
        gauge = Gauge("depth", fn=lambda: source["value"])
        assert gauge.value == 7
        source["value"] = 9
        assert gauge.value == 9
        with pytest.raises(ReproError):
            gauge.set(1)
        with pytest.raises(ReproError):
            gauge.inc()


class TestHistogram:
    def test_percentiles_within_one_bucket_width(self):
        histogram = Histogram("latency_s")
        samples = [0.001] * 50 + [0.1] * 50
        for sample in samples:
            histogram.observe(sample)
        assert histogram.count == 100
        assert histogram.sum == pytest.approx(sum(samples))
        # worst-case relative error is one bucket's width (growth - 1)
        assert histogram.percentile(25.0) == pytest.approx(0.001, rel=0.3)
        assert histogram.percentile(95.0) == pytest.approx(0.1, rel=0.3)

    def test_underflow_and_overflow_buckets(self):
        histogram = Histogram("latency_s", lowest=1e-3, num_buckets=8)
        histogram.observe(0.0)  # underflow bucket
        histogram.observe(1e9)  # clamped into the open-ended last bucket
        counts = histogram.bucket_counts()
        assert counts[0] == 1 and counts[-1] == 1
        assert histogram.count == 2

    def test_empty_percentile_is_zero_and_bad_q_raises(self):
        histogram = Histogram("latency_s")
        assert histogram.percentile(50.0) == 0.0
        with pytest.raises(ReproError):
            histogram.percentile(101.0)

    def test_summary_digest_keys(self):
        histogram = Histogram("latency_s")
        histogram.observe(0.01)
        digest = histogram.summary()
        assert set(digest) == {"count", "sum", "mean", "p50", "p95", "p99"}
        assert digest["count"] == 1


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total")
        second = registry.counter("x_total")
        assert first is second

    def test_labels_distinguish_series_but_fold_in_names(self):
        registry = MetricsRegistry()
        a = registry.counter("w_total", labels={"worker": "0"})
        b = registry.counter("w_total", labels={"worker": "1"})
        assert a is not b
        assert registry.metric_names() == ["w_total"]

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ReproError):
            registry.gauge("x_total")

    def test_snapshot_and_json(self):
        registry = MetricsRegistry()
        registry.counter("x_total").inc(3)
        registry.histogram("h_s").observe(0.01)
        snapshot = registry.snapshot()
        assert snapshot["x_total"] == 3
        assert snapshot["h_s"]["count"] == 1
        assert '"x_total": 3' in registry.to_json()

    def test_prometheus_text_exposition(self):
        registry = MetricsRegistry()
        registry.counter("x_total", help="things").inc(3)
        registry.gauge("g", labels={"worker": "1"}).set(2)
        histogram = registry.histogram("h_s")
        histogram.observe(0.01)
        histogram.observe(0.02)
        text = registry.prometheus_text()
        assert "# HELP x_total things" in text
        assert "# TYPE x_total counter" in text
        assert "x_total 3" in text
        assert 'g{worker="1"} 2' in text
        assert "# TYPE h_s histogram" in text
        assert 'h_s_bucket{le="+Inf"} 2' in text  # cumulative reaches count
        assert "h_s_count 2" in text


class TestActivityWindow:
    def test_idle_gaps_are_capped(self):
        now = [0.0]
        window = ActivityWindow(gap_s=0.5, clock=lambda: now[0])
        window.touch()  # first event: establishes the epoch, accrues nothing
        now[0] = 0.2
        window.touch()  # back-to-back: counts fully
        now[0] = 60.2
        window.touch()  # a minute idle: contributes at most gap_s
        assert window.active_s == pytest.approx(0.7)

    def test_gap_must_be_positive(self):
        with pytest.raises(ReproError):
            ActivityWindow(gap_s=0.0)


# ---------------------------------------------------------------------------
# tracer + trace merge
# ---------------------------------------------------------------------------


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("work", frame=1) as span:
            span.set(late="arg")  # accepted and discarded
        tracer.record("wait", 0.0, 1.0, frame=1)
        tracer.complete("body", 0.0, frame=1)
        tracer.instant("mark", frame=1)
        assert len(tracer) == 0
        assert tracer.drain() == []

    def test_disabled_span_is_one_shared_object(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is tracer.span("b")  # no per-call allocation

    def test_enabled_tracer_records_all_kinds(self):
        tracer = Tracer(enabled=True, track="t")
        with tracer.span("work", frame=1) as span:
            span.set(found=3)
        tracer.record("wait", 1.0, 2.0, frame=1)
        tracer.complete("body", 0.5, frame=1)
        tracer.instant("mark", frame=1)
        records = tracer.drain()
        assert [record[0] for record in records] == [
            "span",
            "async",
            "span",
            "instant",
        ]
        span_record = records[0]
        assert span_record[1] == "work" and span_record[6] == {"found": 3}
        assert tracer.drain() == []  # drain cleared the buffer

    def test_process_local_tracer_install_and_restore(self):
        assert not current_tracer().enabled  # default is a disabled tracer
        mine = Tracer(enabled=True, track="test")
        previous = set_tracer(mine)
        try:
            assert current_tracer() is mine
        finally:
            set_tracer(previous)
        assert current_tracer() is previous


class TestTraceMerge:
    def test_min_offset_clock_calibration(self):
        trace = Trace()
        records = [("span", "work", 10.0, 10.5, 1, 1, None)]
        # first flush arrives 100.0s "later" on the server clock
        trace.add_worker_spans("w", records, worker_clock_s=11.0, server_clock_s=111.0)
        # a slower transit over-estimates; the running minimum ignores it
        trace.add_worker_spans("w", [], worker_clock_s=12.0, server_clock_s=112.5)
        assert trace.clock_offset("w") == pytest.approx(100.0)
        # a faster transit is a strictly better bound and replaces it
        trace.add_worker_spans("w", [], worker_clock_s=13.0, server_clock_s=112.8)
        assert trace.clock_offset("w") == pytest.approx(99.8)
        (merged,) = trace.spans()
        assert merged[0] == "w"
        assert merged[3] == pytest.approx(10.0 + 99.8)  # start on server clock

    def test_merge_orders_across_tracks_by_corrected_start(self):
        trace = Trace()
        trace.add_spans("server", [("span", "submit", 5.0, 5.1, 1, 1, None)])
        trace.add_worker_spans(
            "w",
            [("span", "extract", 1.0, 1.4, 1, 9, None)],
            worker_clock_s=2.0,
            server_clock_s=12.0,  # offset 10 -> extract starts at 11.0
        )
        names = [item[2] for item in trace.spans()]
        assert names == ["submit", "extract"]

    def test_validate_accepts_nesting_and_rejects_overlap(self):
        clean = Trace()
        clean.add_spans(
            "t",
            [
                ("span", "outer", 0.0, 1.0, None, 1, None),
                ("span", "inner", 0.2, 0.8, None, 1, None),
            ],
        )
        assert clean.validate() == []

        crossed = Trace()
        crossed.add_spans(
            "t",
            [
                ("span", "a", 0.0, 1.0, None, 1, None),
                ("span", "b", 0.5, 1.5, None, 1, None),  # overlaps, not nested
            ],
        )
        assert any("overlaps" in problem for problem in crossed.validate())

        negative = Trace()
        negative.add_spans("t", [("span", "a", 1.0, 0.5, None, 1, None)])
        assert any("negative" in problem for problem in negative.validate())

    def test_async_waits_are_exempt_from_nesting(self):
        trace = Trace()
        trace.add_spans(
            "t",
            [
                ("async", "wait", 0.0, 1.0, 1, 1, None),
                ("async", "wait", 0.5, 1.5, 2, 1, None),  # overlap is fine
            ],
        )
        assert trace.validate() == []

    def test_frame_coverage(self):
        trace = Trace()
        trace.add_spans(
            "server",
            [
                ("span", "submit", 0.0, 0.1, 7, 1, None),
                ("instant", "resolve", 0.2, 0.2, 7, 1, None),
                ("span", "submit", 0.3, 0.4, 8, 1, None),  # never resolves
            ],
        )
        coverage = trace.frame_coverage()
        assert coverage[7]["covered"]
        assert not coverage[8]["covered"] and coverage[8]["submit"]

    def test_chrome_export_roundtrip(self, tmp_path):
        trace = Trace()
        trace.add_spans(
            "server",
            [
                ("span", "submit", 0.0, 0.1, 7, 1, {"worker": 0}),
                ("async", "backlog_wait", 0.0, 0.05, 7, 1, None),
                ("instant", "resolve", 0.2, 0.2, 7, 1, None),
            ],
        )
        path = trace.export_chrome_trace(str(tmp_path / "trace.json"))
        payload = load_chrome_trace(path)
        events = payload["traceEvents"]
        phases = {event["ph"] for event in events}
        assert {"M", "X", "b", "e", "i"} <= phases
        names = {
            event["args"]["name"] for event in events if event["ph"] == "M"
        }
        assert "server" in names  # process metadata names the track

    def test_load_rejects_non_trace_json(self, tmp_path):
        path = tmp_path / "not_a_trace.json"
        path.write_text('{"foo": 1}')
        with pytest.raises(ReproError):
            load_chrome_trace(str(path))


# ---------------------------------------------------------------------------
# event journal
# ---------------------------------------------------------------------------


class TestEventJournal:
    def test_log_filter_and_order(self):
        journal = EventJournal()
        journal.log("steal", worker_id=1, job=4)
        journal.log("shed", reason="backlog_full")
        journal.log("steal", worker_id=0, job=5)
        assert len(journal) == 3
        steals = journal.events(kind="steal")
        assert [event.worker_id for event in steals] == [1, 0]
        assert journal.as_dicts()[1]["reason"] == "backlog_full"
        at = [event.at_s for event in journal.events()]
        assert at == sorted(at)  # monotonic timestamps

    def test_fault_seed_stamps_subsequent_rows(self):
        journal = EventJournal()
        journal.log("steal")
        journal.fault_seed = 7
        journal.log("worker_dead", worker_id=1)
        rows = journal.events()
        assert rows[0].seed is None and rows[1].seed == 7
        assert "[seed 7]" in journal.timeline()

    def test_bounded_capacity_drops_oldest(self):
        journal = EventJournal(capacity=4)
        for index in range(10):
            journal.log("steal", job=index)
        assert len(journal) == 4
        assert journal.dropped == 6
        assert [event.detail["job"] for event in journal.events()] == [6, 7, 8, 9]

    def test_empty_timeline(self):
        assert EventJournal().timeline() == "(empty journal)"


# ---------------------------------------------------------------------------
# stats views: legacy keys preserved
# ---------------------------------------------------------------------------


class TestStatsGoldenKeys:
    CLUSTER_KEYS = {
        "frames_submitted", "frames_completed", "frames_failed",
        "max_in_flight", "queue_depth", "steals", "publish_fallbacks",
        "frames_zero_copy", "frames_via_ring", "ring_bytes_copied",
        "results_zero_copy", "results_via_pickle", "result_bytes_saved",
        "restarts", "retries", "requeued", "shed", "pool_grows",
        "pool_shrinks", "leaked_slots", "latency_p50_ms", "latency_p95_ms",
        "elapsed_s", "throughput_fps", "active_elapsed_s",
        "active_throughput_fps", "workers",
    }
    WORKER_KEYS = {
        "worker_id", "frames_completed", "frames_failed", "queue_depth",
        "steals", "restarts", "ewma_latency_ms", "alive", "state",
        "latency_p50_ms", "latency_p95_ms",
    }
    SERVING_KEYS = {
        "frames_submitted", "frames_completed", "max_in_flight",
        "latency_p50_ms", "latency_p95_ms", "elapsed_s", "throughput_fps",
        "active_elapsed_s", "active_throughput_fps",
    }

    def test_cluster_stats_keys_and_counter_semantics(self):
        clock = [100.0]
        stats = ClusterStats(_clock=lambda: clock[0])
        stats._add_worker(alive=True)
        assert set(stats.as_dict()) == self.CLUSTER_KEYS
        stats._submitted(0)
        clock[0] += 0.1
        stats._completed(0, latency_s=0.1)
        report = stats.as_dict()
        assert report["frames_submitted"] == 1
        assert report["frames_completed"] == 1
        assert report["max_in_flight"] == 1
        assert report["elapsed_s"] == pytest.approx(0.1)
        assert report["throughput_fps"] == pytest.approx(10.0)
        assert report["latency_p50_ms"] == pytest.approx(100.0, rel=0.3)
        assert report["workers"][0]["frames_completed"] == 1

    def test_active_throughput_ignores_idle_gap(self):
        clock = [0.0]
        stats = ClusterStats(_clock=lambda: clock[0])
        stats._add_worker(alive=True)
        for _ in range(2):  # two frames separated by a long idle gap
            stats._submitted(0)
            clock[0] += 0.1
            stats._completed(0, latency_s=0.1)
            clock[0] += 30.0
        report = stats.as_dict()
        assert report["throughput_fps"] < 0.1  # legacy key: deflated
        assert report["active_throughput_fps"] > 1.0  # active: honest
        assert report["active_elapsed_s"] < 2.0

    def test_worker_stats_keys(self):
        assert set(WorkerStats(0).as_dict()) == self.WORKER_KEYS

    def test_serving_stats_keys(self, telemetry_config, telemetry_images):
        with FrameServer(config=telemetry_config, max_workers=2) as server:
            server.extract_many(telemetry_images[:2])
            report = server.stats.as_dict()
        assert set(report) == self.SERVING_KEYS
        assert report["frames_completed"] == 2


# ---------------------------------------------------------------------------
# the traced cluster (integration)
# ---------------------------------------------------------------------------


class TestClusterTracing:
    def test_traced_run_is_valid_covered_and_calibrated(
        self, telemetry_config, telemetry_images
    ):
        tracer = Tracer(enabled=True, track="server")
        with ClusterServer(
            telemetry_config, num_workers=2, tracer=tracer
        ) as server:
            results = server.extract_many(telemetry_images)
            trace = server.trace()
        assert len(results) == len(telemetry_images)
        assert trace.tracks() == ["server", "worker-0", "worker-1"]
        assert trace.validate() == []
        coverage = trace.frame_coverage()
        assert len(coverage) == len(telemetry_images)
        assert all(row["covered"] for row in coverage.values())
        for track in ("worker-0", "worker-1"):
            assert trace.clock_offset(track) is not None
        worker_names = {
            item[2] for item in trace.spans() if item[0].startswith("worker")
        }
        assert {"extract", "serve_frame"} <= worker_names

    def test_flushed_spans_survive_worker_crash(
        self, telemetry_config, telemetry_images
    ):
        tracer = Tracer(enabled=True, track="server")
        with ClusterServer(
            telemetry_config,
            num_workers=1,
            supervision=FAST_SUPERVISION,
            tracer=tracer,
            result_batch=1,  # flush (and ship spans) after every frame
        ) as server:
            server.extract_many(telemetry_images[:3])
            spans_before = len(server.trace().spans("worker-0"))
            assert spans_before > 0  # shipped with the pre-crash flushes
            server.chaos_kill(0)
            results = server.extract_many(telemetry_images[3:5])
            trace = server.trace()
            journal = server.journal
        assert len(results) == 2
        assert len(trace.spans("worker-0")) > spans_before  # respawn traced too
        kinds = {event.kind for event in journal.events()}
        assert {"worker_dead", "restart"} <= kinds

    @pytest.mark.parametrize("engine", ENGINES)
    def test_tracing_never_changes_results(
        self, engine, telemetry_config, telemetry_images
    ):
        config = replace(telemetry_config, frontend=engine, backend=engine)
        sequential = [OrbExtractor(config).extract(im) for im in telemetry_images]
        tracer = Tracer(enabled=True, track="server")
        with ClusterServer(config, num_workers=2, tracer=tracer) as server:
            served = server.extract_many(telemetry_images)
        for seq_result, traced_result in zip(sequential, served):
            assert _feature_key(seq_result) == _feature_key(traced_result)

    def test_chaos_journal_carries_plan_seed(self, telemetry_images):
        config = ExtractorConfig(
            image_width=160,
            image_height=120,
            pyramid=PyramidConfig(num_levels=2, provider="shared"),
            max_features=150,
        )
        plan = FaultPlan([FaultEvent(at_submit=2, kind="publish_fail")], seed=11)
        with ClusterServer(
            config, num_workers=1, supervision=FAST_SUPERVISION, fault_plan=plan
        ) as server:
            server.extract_many(telemetry_images[:4])
            rows = server.journal.events(kind="chaos_publish_fail")
            fallbacks = server.journal.events(kind="publish_fallback")
        assert len(rows) == 1 and rows[0].seed == 11
        assert fallbacks and fallbacks[0].seed == 11


# ---------------------------------------------------------------------------
# docs drift check
# ---------------------------------------------------------------------------


class TestDocsDrift:
    def test_every_metric_name_is_documented(self, telemetry_images):
        """``docs/observability.md`` must name every registered metric."""
        doc_path = os.path.join(
            os.path.dirname(__file__), "..", "docs", "observability.md"
        )
        with open(doc_path) as handle:
            doc = handle.read()
        config = ExtractorConfig(
            image_width=160,
            image_height=120,
            pyramid=PyramidConfig(num_levels=2, provider="shared"),
            max_features=150,
        )
        registry = MetricsRegistry()
        with ClusterServer(config, num_workers=1, registry=registry) as server:
            server.extract_many(telemetry_images[:2])
        with FrameServer(config=ExtractorConfig(
            image_width=160,
            image_height=120,
            pyramid=PyramidConfig(num_levels=2),
            max_features=150,
        ), max_workers=1, registry=registry) as thread_server:
            thread_server.extract_many(telemetry_images[:1])
        missing = [
            name for name in registry.metric_names() if name not in doc
        ]
        assert not missing, (
            f"metrics missing from docs/observability.md: {missing}"
        )

    def test_every_cluster_as_dict_key_is_documented(self):
        doc_path = os.path.join(
            os.path.dirname(__file__), "..", "docs", "observability.md"
        )
        with open(doc_path) as handle:
            doc = handle.read()
        stats = ClusterStats()
        stats._add_worker(alive=True)
        missing = [f"`{key}`" for key in stats.as_dict() if f"`{key}`" not in doc]
        assert not missing, (
            f"ClusterStats.as_dict keys missing from docs: {missing}"
        )
