"""Tests for Levenberg-Marquardt, reprojection residuals and pose optimisation."""

import numpy as np
import pytest

from repro.errors import OptimizationError
from repro.geometry import PinholeCamera, Pose, se3_exp, so3_exp
from repro.optimization import (
    LMConfig,
    LevenbergMarquardt,
    PoseOptimizer,
    ReprojectionProblem,
    huber_weights,
    numerical_jacobian,
    optimize_pose,
)


class TestGenericLM:
    def test_quadratic_bowl_converges_to_minimum(self):
        target = np.array([2.0, -3.0])

        optimizer = LevenbergMarquardt(
            residual_fn=lambda p: p - target,
            update_fn=lambda p, d: p + d,
            parameter_dim=2,
        )
        result = optimizer.optimize(np.zeros(2))
        assert result.converged
        assert np.allclose(result.parameters, target, atol=1e-6)
        assert result.cost < 1e-10

    def test_exponential_curve_fit(self):
        xs = np.linspace(0, 1, 30)
        true_params = np.array([2.0, 1.5])
        ys = true_params[0] * np.exp(true_params[1] * xs)

        def residual(params):
            return params[0] * np.exp(params[1] * xs) - ys

        optimizer = LevenbergMarquardt(
            residual_fn=residual,
            update_fn=lambda p, d: p + d,
            parameter_dim=2,
            config=LMConfig(max_iterations=100),
        )
        result = optimizer.optimize(np.array([1.0, 1.0]))
        assert np.allclose(result.parameters, true_params, atol=1e-5)

    def test_cost_history_is_non_increasing_on_accepted_steps(self):
        xs = np.linspace(0, 1, 20)
        ys = 3.0 * xs + 0.5

        optimizer = LevenbergMarquardt(
            residual_fn=lambda p: p[0] * xs + p[1] - ys,
            update_fn=lambda p, d: p + d,
            parameter_dim=2,
        )
        result = optimizer.optimize(np.zeros(2))
        accepted_costs = [entry.cost for entry in result.history if entry.accepted]
        assert all(b <= a + 1e-12 for a, b in zip(accepted_costs, accepted_costs[1:]))

    def test_initial_cost_recorded(self):
        optimizer = LevenbergMarquardt(
            residual_fn=lambda p: p - 1.0,
            update_fn=lambda p, d: p + d,
            parameter_dim=1,
        )
        result = optimizer.optimize(np.array([5.0]))
        assert result.initial_cost == pytest.approx(16.0)
        assert result.cost_reduction > 15.9

    def test_invalid_parameter_dim(self):
        with pytest.raises(OptimizationError):
            LevenbergMarquardt(lambda p: p, lambda p, d: p + d, parameter_dim=0)

    def test_jacobian_shape_mismatch_detected(self):
        optimizer = LevenbergMarquardt(
            residual_fn=lambda p: p,
            update_fn=lambda p, d: p + d,
            parameter_dim=2,
            jacobian_fn=lambda p: np.zeros((3, 2)),
        )
        with pytest.raises(OptimizationError):
            optimizer.optimize(np.zeros(2))

    def test_numerical_jacobian_matches_analytic(self):
        xs = np.linspace(0, 1, 10)

        def residual(p):
            return p[0] * xs**2 + p[1] * xs

        params = np.array([2.0, -1.0])
        numeric = numerical_jacobian(residual, lambda p, d: p + d, params, 2)
        analytic = np.stack([xs**2, xs], axis=1)
        assert np.allclose(numeric, analytic, atol=1e-6)


class TestReprojectionProblem:
    @pytest.fixture()
    def problem(self, camera):
        rng = np.random.default_rng(0)
        points = rng.uniform([-1, -1, 2], [1, 1, 4], size=(40, 3))
        true_pose = Pose(so3_exp(np.array([0.05, 0.02, -0.04])), np.array([0.1, -0.05, 0.08]))
        observations = camera.project(true_pose.transform(points))
        return ReprojectionProblem(camera, points, observations), true_pose

    def test_zero_error_at_true_pose(self, problem):
        prob, true_pose = problem
        assert prob.total_error(true_pose) == pytest.approx(0.0, abs=1e-12)
        assert prob.rmse(true_pose) == pytest.approx(0.0, abs=1e-9)

    def test_positive_error_at_wrong_pose(self, problem):
        prob, _ = problem
        assert prob.total_error(Pose.identity()) > 0

    def test_analytic_jacobian_matches_numeric(self, problem):
        prob, true_pose = problem
        pose = Pose(so3_exp(np.array([0.02, 0.0, 0.01])), np.array([0.05, 0.0, 0.0]))
        analytic = prob.jacobian(pose)

        def residual_of_delta(delta):
            perturbed = se3_exp(delta[:3], delta[3:]).compose(pose)
            return prob.residuals(perturbed)

        numeric = numerical_jacobian(
            residual_of_delta, lambda p, d: p + d, np.zeros(6), 6, epsilon=1e-7
        )
        assert np.allclose(analytic, numeric, rtol=1e-4, atol=1e-4)

    def test_shape_validation(self, camera):
        with pytest.raises(OptimizationError):
            ReprojectionProblem(camera, np.zeros((3, 3)), np.zeros((2, 2)))
        with pytest.raises(OptimizationError):
            ReprojectionProblem(camera, np.zeros((0, 3)), np.zeros((0, 2)))


class TestHuberWeights:
    def test_small_residuals_weight_one(self):
        residuals = np.array([1.0, 2.0, 0.5, -1.0])
        assert np.allclose(huber_weights(residuals, delta=5.0), 1.0)

    def test_large_residuals_downweighted(self):
        residuals = np.array([30.0, 40.0])  # one observation with 50px error
        weights = huber_weights(residuals, delta=5.0)
        assert np.allclose(weights, 0.1)

    def test_pairs_share_weight(self):
        residuals = np.array([30.0, 40.0, 1.0, 1.0])
        weights = huber_weights(residuals, delta=5.0)
        assert weights[0] == weights[1]
        assert weights[2] == weights[3] == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(OptimizationError):
            huber_weights(np.array([1.0, 2.0]), delta=0.0)
        with pytest.raises(OptimizationError):
            huber_weights(np.array([1.0, 2.0, 3.0]))


class TestPoseOptimizer:
    @pytest.fixture()
    def noisy_problem(self, camera):
        rng = np.random.default_rng(3)
        points = rng.uniform([-1.5, -1, 2], [1.5, 1, 5], size=(80, 3))
        true_pose = Pose(so3_exp(np.array([0.06, -0.03, 0.08])), np.array([0.1, 0.05, -0.06]))
        observations = camera.project(true_pose.transform(points))
        observations += rng.normal(0, 0.4, observations.shape)
        return camera, points, observations, true_pose

    def test_refines_a_perturbed_pose(self, noisy_problem):
        camera, points, observations, true_pose = noisy_problem
        perturbed = se3_exp(np.array([0.03, -0.02, 0.01]), np.array([0.02, 0.01, -0.02])).compose(true_pose)
        result = optimize_pose(camera, points, observations, perturbed)
        assert result.final_rmse_px < result.initial_rmse_px
        assert result.pose.translation_distance(true_pose) < 0.01
        assert result.pose.rotation_angle(true_pose) < 0.01

    def test_robust_weighting_resists_outliers(self, noisy_problem):
        camera, points, observations, true_pose = noisy_problem
        corrupted = observations.copy()
        corrupted[:8] += 80.0
        robust = PoseOptimizer(camera, robust_delta_px=5.0).optimize(
            points, corrupted, true_pose
        )
        plain = PoseOptimizer(camera, robust_delta_px=None).optimize(
            points, corrupted, true_pose
        )
        assert robust.pose.translation_distance(true_pose) <= plain.pose.translation_distance(true_pose) + 1e-9

    def test_requires_minimum_observations(self, camera):
        with pytest.raises(OptimizationError):
            PoseOptimizer(camera).optimize(np.zeros((2, 3)), np.zeros((2, 2)), Pose.identity())

    def test_reports_iteration_count(self, noisy_problem):
        camera, points, observations, true_pose = noisy_problem
        result = optimize_pose(camera, points, observations, Pose.identity(), max_iterations=10)
        assert 1 <= result.iterations <= 10
