"""Tests for intensity-centroid orientation and its 32-bin discretisation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FeatureError
from repro.features import (
    NUM_ORIENTATION_BINS,
    compute_orientation,
    discretize_orientation,
    intensity_centroid,
    orientation_angle,
    orientation_lut_label,
)
from repro.image import GrayImage


def _gradient_patch(angle_rad: float, radius: int = 15) -> np.ndarray:
    """A patch whose intensity increases along ``angle_rad``."""
    coords = np.arange(-radius, radius + 1, dtype=np.float64)
    yy, xx = np.meshgrid(coords, coords, indexing="ij")
    direction = xx * math.cos(angle_rad) + yy * math.sin(angle_rad)
    normalized = (direction - direction.min()) / (direction.max() - direction.min())
    return (normalized * 255).astype(np.uint8)


class TestIntensityCentroid:
    def test_uniform_patch_centroid_at_origin(self):
        patch = np.full((31, 31), 100, dtype=np.uint8)
        u, v = intensity_centroid(patch)
        assert u == pytest.approx(0.0, abs=1e-9)
        assert v == pytest.approx(0.0, abs=1e-9)

    def test_gradient_points_along_gradient(self):
        patch = _gradient_patch(0.0)
        u, v = intensity_centroid(patch)
        assert u > 0.5
        assert abs(v) < 0.2

    def test_black_patch_returns_zero(self):
        u, v = intensity_centroid(np.zeros((31, 31), dtype=np.uint8))
        assert (u, v) == (0.0, 0.0)

    def test_rejects_even_patch(self):
        with pytest.raises(FeatureError):
            intensity_centroid(np.zeros((30, 30), dtype=np.uint8))

    def test_rejects_mismatched_mask(self):
        with pytest.raises(FeatureError):
            intensity_centroid(np.zeros((31, 31)), mask=np.ones((7, 7), dtype=bool))


class TestDiscretisation:
    def test_zero_angle_is_bin_zero(self):
        assert discretize_orientation(0.0) == 0

    def test_bin_width_is_11_25_degrees(self):
        assert discretize_orientation(math.radians(11.25)) == 1
        assert discretize_orientation(math.radians(22.5)) == 2

    def test_rounding_to_nearest_bin(self):
        assert discretize_orientation(math.radians(5.0)) == 0
        assert discretize_orientation(math.radians(6.0)) == 1

    def test_wraps_at_two_pi(self):
        assert discretize_orientation(2 * math.pi) == 0
        assert discretize_orientation(math.radians(359)) == 0

    def test_negative_angles(self):
        assert discretize_orientation(-math.radians(11.25)) == NUM_ORIENTATION_BINS - 1

    def test_rejects_invalid_bins(self):
        with pytest.raises(FeatureError):
            discretize_orientation(0.5, num_bins=0)

    @settings(max_examples=60, deadline=None)
    @given(st.floats(min_value=-10.0, max_value=10.0, allow_nan=False))
    def test_discretisation_error_bounded(self, angle):
        bin_index = discretize_orientation(angle)
        bin_angle = bin_index * 2 * math.pi / NUM_ORIENTATION_BINS
        error = abs((angle - bin_angle + math.pi) % (2 * math.pi) - math.pi)
        # at most half a bin (5.625 degrees)
        assert error <= math.pi / NUM_ORIENTATION_BINS + 1e-9


class TestLutLabel:
    @settings(max_examples=80, deadline=None)
    @given(
        st.floats(min_value=-10, max_value=10, allow_nan=False),
        st.floats(min_value=-10, max_value=10, allow_nan=False),
    )
    def test_lut_matches_atan2_discretisation(self, u, v):
        if abs(u) < 1e-6 and abs(v) < 1e-6:
            return
        expected = discretize_orientation(orientation_angle(u, v))
        assert orientation_lut_label(u, v) == expected

    def test_cardinal_directions(self):
        assert orientation_lut_label(1.0, 0.0) == 0
        assert orientation_lut_label(0.0, 1.0) == 8
        assert orientation_lut_label(-1.0, 0.0) == 16
        assert orientation_lut_label(0.0, -1.0) == 24

    def test_zero_vector_defaults_to_bin_zero(self):
        assert orientation_lut_label(0.0, 0.0) == 0


class TestComputeOrientation:
    def test_direction_follows_intensity_gradient(self):
        for angle_deg in (0, 45, 90, 180, 270):
            angle = math.radians(angle_deg)
            patch = _gradient_patch(angle, radius=20)
            image = GrayImage(patch)
            bin_index, measured = compute_orientation(image, 20, 20, radius=15)
            error = abs((measured - angle + math.pi) % (2 * math.pi) - math.pi)
            assert error < math.radians(15)
            assert 0 <= bin_index < NUM_ORIENTATION_BINS

    def test_rejects_patch_outside_image(self, blocks_image):
        with pytest.raises(Exception):
            compute_orientation(blocks_image, 2, 2, radius=15)
