"""Cross-module property-based tests.

These hypothesis tests check invariants that span subsystem boundaries --
the relationships the paper's correctness argument rests on, rather than the
behaviour of any single unit: descriptor rotation must not change Hamming
distances, pose round-trips must preserve trajectory error metrics, and the
platform models must respond monotonically to workload growth.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset import TrajectoryEntry
from repro.features import rotate_descriptor_bytes
from repro.geometry import Pose, se3_exp
from repro.matching import hamming_distance
from repro.platforms import ARM_CORTEX_A9, CpuRuntimeModel, NOMINAL_WORKLOAD
from repro.slam import absolute_trajectory_error


_small = st.floats(min_value=-0.5, max_value=0.5, allow_nan=False)


class TestDescriptorRotationInvariants:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=31), st.integers(min_value=0, max_value=2**31 - 1))
    def test_rotation_preserves_hamming_distance(self, orientation, seed):
        """Rotating two descriptors by the same orientation preserves their distance.

        This is why the BRIEF Rotator can be applied before matching without
        changing the matching result for features of equal orientation.
        """
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 256, 32, dtype=np.uint8)
        b = rng.integers(0, 256, 32, dtype=np.uint8)
        original = hamming_distance(a, b)
        rotated = hamming_distance(
            rotate_descriptor_bytes(a, orientation), rotate_descriptor_bytes(b, orientation)
        )
        assert rotated == original

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=31), st.integers(min_value=0, max_value=2**31 - 1))
    def test_rotation_preserves_popcount(self, orientation, seed):
        rng = np.random.default_rng(seed)
        descriptor = rng.integers(0, 256, 32, dtype=np.uint8)
        rotated = rotate_descriptor_bytes(descriptor, orientation)
        assert int(np.unpackbits(rotated).sum()) == int(np.unpackbits(descriptor).sum())


class TestPoseTrajectoryInvariants:
    @settings(max_examples=30, deadline=None)
    @given(_small, _small, _small, _small, _small, _small)
    def test_tum_entry_roundtrip(self, tx, ty, tz, wx, wy, wz):
        """Converting a pose to TUM convention and back is the identity."""
        pose = se3_exp(np.array([tx, ty, tz]), np.array([wx, wy, wz]))
        entry = TrajectoryEntry.from_world_to_camera(0.0, pose)
        assert entry.to_world_to_camera().is_close(pose, atol=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(_small, _small, _small)
    def test_ate_invariant_under_global_rigid_motion(self, tx, ty, yaw):
        """Applying one rigid transform to an entire trajectory leaves ATE at zero."""
        base = [
            se3_exp(np.array([0.05 * k, 0.01 * k, 0.0]), np.array([0.0, 0.02 * k, 0.0]))
            for k in range(6)
        ]
        offset = se3_exp(np.array([tx, ty, 0.0]), np.array([0.0, 0.0, yaw]))
        moved = [pose.compose(offset) for pose in base]
        result = absolute_trajectory_error(moved, base, align=True)
        assert result.rmse < 1e-6

    @settings(max_examples=30, deadline=None)
    @given(_small, _small, _small, _small, _small, _small)
    def test_pose_inverse_composition_identity(self, a, b, c, d, e, f):
        pose = se3_exp(np.array([a, b, c]), np.array([d, e, f]))
        assert pose.compose(pose.inverse()).is_close(Pose.identity(), atol=1e-9)
        assert pose.inverse().inverse().is_close(pose, atol=1e-9)


class TestRuntimeModelMonotonicity:
    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=1.0, max_value=4.0), st.floats(min_value=1.0, max_value=4.0))
    def test_more_work_never_runs_faster(self, factor_a, factor_b):
        """CPU stage runtimes are monotone in the workload scale."""
        model = CpuRuntimeModel(ARM_CORTEX_A9)
        small_factor, large_factor = sorted((factor_a, factor_b))
        small = model.stage_runtimes(NOMINAL_WORKLOAD.scaled(small_factor))
        large = model.stage_runtimes(NOMINAL_WORKLOAD.scaled(large_factor))
        for stage in (
            "feature_extraction",
            "feature_matching",
            "pose_estimation",
            "pose_optimization",
            "map_updating",
        ):
            assert large.as_dict()[stage] >= small.as_dict()[stage] - 1e-9

    def test_nominal_workload_total_matches_table2_sum(self):
        """The serial ARM frame time implied by the model equals Table 3's 555.7 ms."""
        runtimes = CpuRuntimeModel(ARM_CORTEX_A9).stage_runtimes(NOMINAL_WORKLOAD)
        serial_normal = runtimes.front_end_ms + runtimes.back_end_ms
        assert serial_normal == pytest.approx(555.7, rel=0.01)
