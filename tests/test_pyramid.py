"""repro.pyramid: provider parity, streaming laziness, shared-cache lifecycle.

The provider parity matrix extracts through every pyramid provider x every
engine pair and asserts bit-identical retained features against the eager
reference; the cache classes pin down refcounted leases, slot reclamation
under concurrent workers, eviction and the cache-miss fallback; the
integration classes cover the cluster producer-publish/worker-attach path
and in-process multi-engine fan-out.
"""

import threading
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.config import ExtractorConfig, PyramidConfig
from repro.errors import ImageError, ReproError
from repro.features import OrbExtractor
from repro.image import (
    GrayImage,
    ImagePyramid,
    pyramid_level_shapes,
    random_blocks,
    resize_dimensions,
    resize_nearest_into,
)
from repro.pyramid import (
    SharedProvider,
    SharedPyramidCache,
    StreamingPyramid,
    available_providers,
    create_provider,
    minimum_level_size,
)


@pytest.fixture(scope="module")
def pyramid_config():
    return ExtractorConfig(
        image_width=160,
        image_height=120,
        pyramid=PyramidConfig(num_levels=3),
        max_features=150,
    )


@pytest.fixture(scope="module")
def frames():
    return [random_blocks(120, 160, block=9, seed=seed) for seed in range(3)]


def _with(config, provider, engine="vectorized"):
    return replace(
        config,
        pyramid=replace(config.pyramid, provider=provider),
        frontend=engine,
        backend=engine,
    )


class TestProviderRegistry:
    def test_registered_providers(self):
        assert available_providers() == ["eager", "shared", "streaming"]

    def test_unknown_provider_lists_alternatives(self, pyramid_config):
        with pytest.raises(ReproError) as excinfo:
            OrbExtractor(_with(pyramid_config, "streamed"))
        message = str(excinfo.value)
        for name in available_providers():
            assert name in message
        assert "streaming" in message  # closest-match hint

    def test_extractor_exposes_selected_provider(self, pyramid_config):
        extractor = OrbExtractor(_with(pyramid_config, "streaming"))
        assert extractor.pyramid_provider.name == "streaming"
        assert OrbExtractor(pyramid_config).pyramid_provider.name == "eager"


class TestProviderParityMatrix:
    """3 providers x 3 engine pairs: bit-identical retained features."""

    @pytest.fixture(scope="class")
    def eager_by_engine(self, pyramid_config, frames):
        results = {}
        for engine in ("reference", "vectorized", "hwexact"):
            extractor = OrbExtractor(_with(pyramid_config, "eager", engine))
            results[engine] = [extractor.extract(image) for image in frames]
        return results

    @pytest.mark.parametrize("engine", ["reference", "vectorized", "hwexact"])
    @pytest.mark.parametrize("provider", ["eager", "streaming", "shared"])
    def test_bit_identical_features(
        self, provider, engine, pyramid_config, frames, eager_by_engine
    ):
        extractor = OrbExtractor(_with(pyramid_config, provider, engine))
        try:
            for index, image in enumerate(frames):
                result = extractor.extract(image, frame_id=index)
                expected = eager_by_engine[engine][index]
                assert result.feature_records() == expected.feature_records()
                assert vars(result.profile) == vars(expected.profile)
        finally:
            extractor.close()


class TestStreamingPyramid:
    def test_levels_build_on_demand(self, frames):
        config = PyramidConfig(num_levels=4)
        pyramid = StreamingPyramid(frames[0], config)
        assert pyramid.levels_built() == 1
        assert pyramid.total_pixels() > 0  # shape arithmetic, no build
        assert pyramid.levels_built() == 1
        pyramid.level(2)
        assert pyramid.levels_built() == 3
        assert len(pyramid) == 4

    def test_levels_bit_identical_to_eager(self, frames):
        config = PyramidConfig(num_levels=4)
        eager = ImagePyramid(frames[0], config)
        streaming = StreamingPyramid(frames[0], config)
        for eager_level, streaming_level in zip(eager, streaming):
            assert np.array_equal(
                eager_level.image.pixels, streaming_level.image.pixels
            )
            assert eager_level.scale == streaming_level.scale
        assert streaming.pixel_counts() == eager.pixel_counts()
        assert streaming.total_pixels() == eager.total_pixels()

    def test_banded_resize_matches_whole_level(self, frames):
        src = frames[0].pixels
        out_shape = resize_dimensions(*src.shape, 1.2)
        whole = np.empty(out_shape, dtype=np.uint8)
        banded = np.empty(out_shape, dtype=np.uint8)
        resize_nearest_into(src, 1.2, whole)
        resize_nearest_into(src, 1.2, banded, band_rows=7, workspace={})
        assert np.array_equal(whole, banded)

    def test_level_out_of_range(self, frames):
        pyramid = StreamingPyramid(frames[0], PyramidConfig(num_levels=2))
        with pytest.raises(ImageError):
            pyramid.level(2)


class TestPyramidInputValidation:
    def test_rejects_non_uint8_array(self):
        with pytest.raises(ImageError, match="uint8"):
            ImagePyramid(np.zeros((64, 64), dtype=np.float64))

    def test_accepts_uint8_array(self):
        pyramid = ImagePyramid(np.full((64, 64), 9, dtype=np.uint8))
        assert pyramid.level(0).image.shape == (64, 64)

    def test_rejects_non_image_types(self):
        with pytest.raises(ImageError, match="GrayImage"):
            ImagePyramid([[1, 2], [3, 4]])

    @pytest.mark.parametrize("provider", ["eager", "streaming", "shared"])
    def test_extractor_rejects_too_small_image(self, provider, pyramid_config):
        config = _with(pyramid_config, provider)
        tiny = GrayImage(np.zeros((40, 40), dtype=np.uint8))
        extractor = OrbExtractor(config)
        try:
            with pytest.raises(ReproError, match="deepest"):
                extractor.extract(tiny, frame_id=0)
        finally:
            extractor.close()

    def test_minimum_level_size_covers_patch_and_border(self, pyramid_config):
        window = minimum_level_size(pyramid_config)
        assert window == 2 * pyramid_config.fast.border + 1
        deepest = pyramid_level_shapes(120, 160, pyramid_config.pyramid)[-1]
        assert min(deepest) >= window  # the test workload itself is legal


class TestSharedPyramidCache:
    def test_publish_attach_release_roundtrip(self, pyramid_config, frames):
        with SharedPyramidCache.create(pyramid_config, num_slots=2) as cache:
            assert cache.publish(0, frames[0].pixels)
            eager = ImagePyramid(frames[0], pyramid_config.pyramid)
            cached = cache.attach(0)
            assert cached is not None
            for eager_level, cached_level in zip(eager, cached):
                assert np.array_equal(
                    eager_level.image.pixels, cached_level.image.pixels
                )
            assert cache.refcount(0) == 1
            cached.close()
            assert cache.refcount(0) == 0
            cached.close()  # idempotent
            assert cache.refcount(0) == 0

    def test_publish_is_idempotent_per_frame(self, pyramid_config, frames):
        with SharedPyramidCache.create(pyramid_config, num_slots=2) as cache:
            assert cache.publish(5, frames[0].pixels)
            assert cache.publish(5, frames[1].pixels)  # already cached: no-op
            assert cache.stats()["publishes"] == 1

    def test_attach_miss_returns_none(self, pyramid_config):
        with SharedPyramidCache.create(pyramid_config, num_slots=1) as cache:
            assert cache.attach(42) is None
            assert cache.stats()["misses"] == 1

    def test_retire_reclaims_slot_after_release(self, pyramid_config, frames):
        with SharedPyramidCache.create(pyramid_config, num_slots=1) as cache:
            assert cache.publish(0, frames[0].pixels)
            lease = cache.attach(0)
            cache.retire(0)  # still leased: slot must survive until release
            assert not cache.publish(1, frames[1].pixels)
            lease.close()
            assert cache.publish(1, frames[1].pixels)
            assert cache.attach(0) is None  # retired entry is gone

    def test_forced_retire_voids_open_leases(self, pyramid_config, frames):
        with SharedPyramidCache.create(pyramid_config, num_slots=1) as cache:
            assert cache.publish(0, frames[0].pixels)
            cache.attach(0)  # lease deliberately never released (crash model)
            cache.retire(0, force=True)
            assert cache.publish(1, frames[1].pixels)

    def test_eviction_prefers_oldest_unreferenced(self, pyramid_config, frames):
        with SharedPyramidCache.create(pyramid_config, num_slots=2) as cache:
            assert cache.publish(0, frames[0].pixels)
            assert cache.publish(1, frames[1].pixels)
            lease = cache.attach(1)  # pin frame 1
            assert cache.publish(2, frames[2].pixels)  # evicts frame 0
            assert cache.stats()["evictions"] == 1
            assert cache.attach(0) is None
            assert cache.attach(2) is not None
            lease.close()

    def test_oversize_frame_refused_not_cached(self, pyramid_config):
        with SharedPyramidCache.create(pyramid_config, num_slots=1) as cache:
            big = np.zeros((240, 320), dtype=np.uint8)
            assert not cache.publish(0, big)

    def test_concurrent_lease_churn_leaves_refcounts_clean(
        self, pyramid_config, frames
    ):
        """Worker-style churn: many threads attach/release the same frames."""
        with SharedPyramidCache.create(pyramid_config, num_slots=3) as cache:
            for frame_id, image in enumerate(frames):
                assert cache.publish(frame_id, image.pixels)
            errors = []

            def churn(frame_id):
                try:
                    for _ in range(50):
                        lease = cache.attach(frame_id)
                        assert lease is not None
                        lease.close()
                except Exception as error:  # surfaced after join
                    errors.append(error)

            threads = [
                threading.Thread(target=churn, args=(index % len(frames),))
                for index in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            for frame_id in range(len(frames)):
                assert cache.refcount(frame_id) == 0
            stats = cache.stats()
            assert stats["hits"] == 6 * 50
            assert stats["local_builds"] == 0


class TestPyramidRetention:
    """Session-scoped TTL: retire retains, replays revive, expiries reclaim."""

    def test_retire_retains_and_replay_revives(self, pyramid_config, frames):
        with SharedPyramidCache.create(
            pyramid_config, num_slots=2, retention_s=30.0
        ) as cache:
            assert cache.publish(0, frames[0].pixels)
            cache.attach(0).close()
            cache.retire(0)
            # replay of the same frame id: publish is a no-op on the
            # retained copy and attach revives it instead of rebuilding
            assert cache.publish(0, frames[0].pixels)
            lease = cache.attach(0)
            assert lease is not None
            assert np.array_equal(lease.level(0).image.pixels, frames[0].pixels)
            lease.close()
            stats = cache.stats()
            assert stats["publishes"] == 1
            assert stats["retained_hits"] == 1

    def test_expired_retention_misses_and_reclaims(self, pyramid_config, frames):
        with SharedPyramidCache.create(
            pyramid_config, num_slots=1, retention_s=0.05
        ) as cache:
            assert cache.publish(0, frames[0].pixels)
            cache.retire(0)
            time.sleep(0.08)
            assert cache.attach(0) is None  # TTL lapsed: a plain miss
            stats = cache.stats()
            assert stats["retained_hits"] == 0
            assert stats["misses"] == 1
            # the lapsed slot is reusable without counting an eviction
            assert cache.publish(1, frames[1].pixels)
            assert cache.stats()["evictions"] == 0

    def test_publish_prefers_lapsed_slot_over_evicting_valid(
        self, pyramid_config, frames
    ):
        with SharedPyramidCache.create(
            pyramid_config, num_slots=2, retention_s=0.05
        ) as cache:
            assert cache.publish(0, frames[0].pixels)
            cache.retire(0)  # retained under a short TTL
            assert cache.publish(1, frames[1].pixels)  # still-useful entry
            time.sleep(0.08)
            assert cache.publish(2, frames[2].pixels)  # takes frame 0's slot
            assert cache.stats()["evictions"] == 0
            assert cache.attach(1) is not None

    def test_publish_can_evict_unexpired_retained_entry(
        self, pyramid_config, frames
    ):
        with SharedPyramidCache.create(
            pyramid_config, num_slots=1, retention_s=60.0
        ) as cache:
            assert cache.publish(0, frames[0].pixels)
            cache.retire(0)
            # retained frames never block new work: the single slot is
            # reclaimed for the new frame, counted as an eviction
            assert cache.publish(1, frames[1].pixels)
            assert cache.stats()["evictions"] == 1
            assert cache.attach(0) is None

    def test_forced_retire_ignores_retention(self, pyramid_config, frames):
        with SharedPyramidCache.create(
            pyramid_config, num_slots=1, retention_s=60.0
        ) as cache:
            assert cache.publish(0, frames[0].pixels)
            cache.retire(0, force=True)  # crash path: no retained copy
            assert cache.attach(0) is None
            assert cache.stats()["retained_hits"] == 0

    def test_retention_must_be_positive(self, pyramid_config):
        with pytest.raises(ImageError, match="retention_s"):
            SharedPyramidCache.create(pyramid_config, retention_s=0.0)


class TestSharedProviderFallback:
    def test_cache_full_falls_back_to_local_build(self, pyramid_config, frames):
        config = _with(pyramid_config, "shared")
        with SharedPyramidCache.create(config, num_slots=1) as cache:
            provider = SharedProvider(config, cache=cache)
            assert cache.publish(0, frames[0].pixels)
            lease = cache.attach(0)  # hold the only slot
            pyramid = provider.acquire(frames[1], frame_id=1)  # miss + no slot
            assert not hasattr(pyramid, "close")  # a plain local ImagePyramid
            eager = ImagePyramid(frames[1], config.pyramid)
            for eager_level, local_level in zip(eager, pyramid):
                assert np.array_equal(
                    eager_level.image.pixels, local_level.image.pixels
                )
            provider.release(pyramid)  # no-op for local builds
            assert cache.stats()["local_builds"] == 1
            lease.close()

    def test_extraction_correct_through_fallback(self, pyramid_config, frames):
        config = _with(pyramid_config, "shared")
        expected = OrbExtractor(_with(pyramid_config, "eager")).extract(frames[1])
        with SharedPyramidCache.create(config, num_slots=1) as cache:
            assert cache.publish(0, frames[0].pixels)
            lease = cache.attach(0)  # cache full: every new frame misses
            extractor = OrbExtractor(config, pyramid_cache=cache)
            result = extractor.extract(frames[1], frame_id=1)
            assert result.feature_records() == expected.feature_records()
            assert cache.stats()["local_builds"] == 1
            lease.close()


class TestMultiEngineFanOut:
    def test_two_extractors_share_one_build(self, pyramid_config, frames):
        """Multi-engine fan-out: N consumers of a frame, one pyramid build."""
        config = _with(pyramid_config, "shared")
        with SharedPyramidCache.create(config, num_slots=4) as cache:
            first = OrbExtractor(config, pyramid_cache=cache)
            second = OrbExtractor(
                _with(pyramid_config, "shared", "reference"), pyramid_cache=cache
            )
            for frame_id, image in enumerate(frames):
                first.extract(image, frame_id=frame_id)
                second.extract(image, frame_id=frame_id)
            stats = cache.stats()
            assert stats["publishes"] == len(frames)  # one build per frame
            assert stats["hits"] == 2 * len(frames)  # both consumers attach
            assert stats["local_builds"] == 0


class TestClusterSharedPyramid:
    def test_workers_attach_instead_of_rebuilding(self, pyramid_config, frames):
        from repro.cluster import ClusterServer

        config = _with(pyramid_config, "shared")
        expected = [OrbExtractor(_with(pyramid_config, "eager")).extract(f) for f in frames]
        with ClusterServer(config, num_workers=2) as server:
            served = server.extract_many(frames)
            stats = server.pyramid_cache_stats()
        for expected_result, served_result in zip(expected, served):
            assert expected_result.feature_records() == served_result.feature_records()
        assert stats["publishes"] == len(frames)  # producer builds once each
        assert stats["hits"] == len(frames)  # every worker attached zero-copy
        assert stats["local_builds"] == 0
        assert stats["slots_in_use"] == 0  # all slots retired after collection

    def test_cluster_replay_reuses_retained_pyramids(self, pyramid_config, frames):
        from repro.cluster import ClusterServer

        config = _with(pyramid_config, "shared")
        frame_ids = list(range(len(frames)))
        with ClusterServer(config, num_workers=2, pyramid_retention_s=60.0) as server:
            first = server.extract_many(frames, frame_ids=frame_ids)
            second = server.extract_many(frames, frame_ids=frame_ids)
            stats = server.pyramid_cache_stats()
        assert [r.feature_records() for r in first] == [
            r.feature_records() for r in second
        ]
        assert stats["publishes"] == len(frames)  # replay rebuilt nothing
        assert stats["retained_hits"] >= len(frames)

    def test_cache_stats_readable_after_close(self, pyramid_config, frames):
        from repro.cluster import ClusterServer

        config = _with(pyramid_config, "shared")
        server = ClusterServer(config, num_workers=1)
        with server:
            server.extract_many(frames)
        stats = server.pyramid_cache_stats()  # final snapshot, like .stats
        assert stats["publishes"] == len(frames)
        assert stats["local_builds"] == 0
        with pytest.raises(ImageError, match="closed"):
            server._pyramid_cache.attach(0)

    def test_eager_cluster_reports_no_cache(self, pyramid_config, frames):
        from repro.cluster import ClusterServer

        with ClusterServer(pyramid_config, num_workers=1) as server:
            server.extract_many(frames[:1])
            assert server.pyramid_cache_stats() is None
