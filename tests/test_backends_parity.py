"""Backend parity: the vectorized engine must be bit-identical to reference.

The ``vectorized`` keypoint compute backend replaces per-keypoint Python
call chains with whole-level array passes; these tests pin down that it is a
pure reformulation — same retained features, same orientations (to the bit),
same descriptors and same operation counts — for both workflow orders and
both descriptor modes.  They also cover the backend registry, the heap
bulk-insert equivalence and the batch-aware SLAM frame APIs.
"""

import numpy as np
import pytest

from repro.backends import (
    DescribedBatch,
    ReferenceBackend,
    VectorizedBackend,
    available_backends,
    create_backend,
)
from repro.config import ExtractorConfig, PyramidConfig, SlamConfig, TrackerConfig
from repro.errors import FeatureError
from repro.features import BoundedScoreHeap, OrbExtractor
from repro.image import random_blocks


def _config(backend: str, use_rs_brief: bool, rescheduled: bool) -> ExtractorConfig:
    return ExtractorConfig(
        image_width=160,
        image_height=120,
        pyramid=PyramidConfig(num_levels=2),
        max_features=100,
        use_rs_brief=use_rs_brief,
        rescheduled_workflow=rescheduled,
        backend=backend,
    )


@pytest.fixture(scope="module")
def parity_image():
    return random_blocks(120, 160, block=10, seed=7)


class TestBackendParity:
    @pytest.mark.parametrize("rescheduled", [True, False], ids=["rescheduled", "original"])
    @pytest.mark.parametrize("use_rs_brief", [True, False], ids=["rs_brief", "orb_brief"])
    def test_bit_identical_extraction(self, parity_image, use_rs_brief, rescheduled):
        reference = OrbExtractor(_config("reference", use_rs_brief, rescheduled)).extract(
            parity_image
        )
        vectorized = OrbExtractor(_config("vectorized", use_rs_brief, rescheduled)).extract(
            parity_image
        )
        assert len(reference.features) == len(vectorized.features)
        assert len(reference.features) > 50  # the scene must actually exercise the path
        for ref, vec in zip(reference.features, vectorized.features):
            assert (ref.keypoint.level, ref.keypoint.x, ref.keypoint.y) == (
                vec.keypoint.level,
                vec.keypoint.x,
                vec.keypoint.y,
            )
            assert ref.keypoint.orientation_bin == vec.keypoint.orientation_bin
            # bit-exact: == on the raw float, not approx
            assert ref.keypoint.orientation_rad == vec.keypoint.orientation_rad
            assert ref.descriptor.tobytes() == vec.descriptor.tobytes()
            assert ref.score == vec.score
            assert (ref.x0, ref.y0) == (vec.x0, vec.y0)

    @pytest.mark.parametrize("rescheduled", [True, False], ids=["rescheduled", "original"])
    @pytest.mark.parametrize("use_rs_brief", [True, False], ids=["rs_brief", "orb_brief"])
    def test_identical_profiles(self, parity_image, use_rs_brief, rescheduled):
        """The workload counters feeding the hardware models must not drift."""
        reference = OrbExtractor(_config("reference", use_rs_brief, rescheduled)).extract(
            parity_image
        )
        vectorized = OrbExtractor(_config("vectorized", use_rs_brief, rescheduled)).extract(
            parity_image
        )
        assert vars(reference.profile) == vars(vectorized.profile)

    def test_batch_level_parity(self, parity_image):
        """Backend-level check: same DescribedBatch contents on raw candidates."""
        from repro.image import gaussian_blur

        config = _config("vectorized", True, True)
        smoothed = gaussian_blur(parity_image)
        rng = np.random.default_rng(0)
        # include border keypoints so both backends exercise the drop path
        xs = rng.integers(0, 160, 64).astype(np.int64)
        ys = rng.integers(0, 120, 64).astype(np.int64)
        scores = rng.random(64)
        ref = create_backend("reference", config).describe(smoothed, xs, ys, scores)
        vec = create_backend("vectorized", config).describe(smoothed, xs, ys, scores)
        assert 0 < ref.size < 64  # some dropped, some kept
        assert np.array_equal(ref.kept, vec.kept)
        assert np.array_equal(ref.orientation_bins, vec.orientation_bins)
        assert ref.orientation_rads.tobytes() == vec.orientation_rads.tobytes()
        assert np.array_equal(ref.descriptors, vec.descriptors)


class TestBackendRegistry:
    def test_builtin_backends_registered(self):
        assert "reference" in available_backends()
        assert "vectorized" in available_backends()

    def test_unknown_backend_rejected(self):
        with pytest.raises(FeatureError):
            create_backend("nonexistent")

    def test_config_selects_backend_class(self):
        assert isinstance(
            OrbExtractor(ExtractorConfig(backend="reference")).backend, ReferenceBackend
        )
        assert isinstance(
            OrbExtractor(ExtractorConfig(backend="vectorized")).backend, VectorizedBackend
        )
        assert OrbExtractor().backend.name == "vectorized"  # the default

    def test_empty_batch(self):
        backend = create_backend("vectorized")
        empty = DescribedBatch.empty(32)
        assert empty.size == 0
        assert backend.descriptor_engine is not None


class TestHeapBulkInsert:
    def test_offer_batch_matches_sequential(self):
        rng = np.random.default_rng(3)
        scores = rng.random(500)
        sequential = BoundedScoreHeap(capacity=50)
        for index, score in enumerate(scores):
            sequential.offer(float(score), index)
        batched = BoundedScoreHeap(capacity=50)
        retained = batched.offer_batch(scores, list(range(500)))
        assert batched.items_by_score() == sequential.items_by_score()
        assert vars(batched.stats) == vars(sequential.stats)
        assert retained == sequential.stats.insertions + sequential.stats.replacements

    def test_offer_batch_tie_breaking(self):
        scores = np.array([1.0, 1.0, 1.0, 2.0, 1.0])
        heap = BoundedScoreHeap(capacity=2)
        heap.offer_batch(scores, ["a", "b", "c", "d", "e"])
        # ties favour the earlier item, as in the streaming hardware
        assert heap.items_by_score() == ["d", "a"]

    def test_offer_batch_validates_shapes(self):
        heap = BoundedScoreHeap(capacity=2)
        with pytest.raises(FeatureError):
            heap.offer_batch(np.array([1.0, 2.0]), ["only-one"])


class TestFrameBatchApis:
    def test_feature_depths_match_scalar(self, tiny_sequence, tiny_slam_config):
        from repro.slam.frame import Frame

        rgbd = next(iter(tiny_sequence))
        frame = Frame(
            index=rgbd.index,
            timestamp=rgbd.timestamp,
            image=rgbd.image,
            depth=rgbd.depth,
            camera=tiny_sequence.camera,
        )
        extractor = OrbExtractor(tiny_slam_config.extractor)
        frame.set_features(extractor.extract(rgbd.image))
        assert len(frame.features) > 0
        vectorized = frame.feature_depths()
        scalar = np.array(
            [frame.feature_depth(i) for i in range(len(frame.features))]
        )
        assert np.array_equal(vectorized, scalar)

    def test_descriptor_matrix_uses_extraction_cache(self, extraction_result):
        from repro.slam.frame import Frame  # noqa: F401  (import sanity)

        first = extraction_result.descriptor_matrix()
        second = extraction_result.descriptor_matrix()
        assert first is second  # cached, not rebuilt per call
        assert first.shape == (len(extraction_result.features), 32)
        assert extraction_result.keypoint_array().shape == (len(extraction_result.features), 2)
        assert extraction_result.score_array().shape == (len(extraction_result.features),)
        assert extraction_result.level_array().shape == (len(extraction_result.features),)


class TestComputeEngineSpeedup:
    def test_vectorized_engine_at_least_5x_reference(self):
        """The acceptance bar, enforced in tier-1 on a small workload.

        True ratio is ~10x+, so the 5x bar leaves ample headroom for machine
        noise.  The full bench workloads live in bench_backend_speedup.py.
        """
        import time

        from repro.features.orb import ExtractionProfile
        from repro.image import ImagePyramid, gaussian_blur

        config = ExtractorConfig(
            image_width=320,
            image_height=240,
            pyramid=PyramidConfig(num_levels=2),
            max_features=500,
        )
        image = random_blocks(240, 320, block=12, seed=4)
        extractor = OrbExtractor(config)
        level = ImagePyramid(image, config.pyramid).level(0)
        smoothed = gaussian_blur(level.image)
        xs, ys, scores = extractor._detect_level_candidates(
            level.image, 0, ExtractionProfile()
        )
        assert xs.size > 200
        timings = {}
        for name in ("reference", "vectorized"):
            backend = create_backend(name, config)
            backend.describe(smoothed, xs, ys, scores)  # warm-up
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                backend.describe(smoothed, xs, ys, scores)
                best = min(best, time.perf_counter() - start)
            timings[name] = best
        assert timings["reference"] / timings["vectorized"] >= 5.0


class TestSharedEngine:
    def test_tracker_rejects_mismatched_extractor(self):
        from repro.errors import TrackingError
        from repro.slam.tracker import Tracker

        foreign = OrbExtractor(ExtractorConfig(image_width=320, image_height=240))
        with pytest.raises(TrackingError):
            Tracker(SlamConfig(), extractor=foreign)

    def test_batch_runner_shares_one_engine(self):
        from repro.analysis import BatchRunner
        from repro.dataset import SequenceSpec

        config = SlamConfig(
            extractor=ExtractorConfig(
                image_width=160,
                image_height=120,
                pyramid=PyramidConfig(num_levels=2),
                max_features=200,
            ),
            tracker=TrackerConfig(ransac_iterations=32, pose_iterations=6),
        )
        runner = BatchRunner(config=config)
        engine = runner.extractor
        specs = [
            SequenceSpec(name="fr1/xyz", num_frames=3, image_width=160, image_height=120),
            SequenceSpec(name="fr1/desk", num_frames=3, image_width=160, image_height=120),
        ]
        records = runner.run_all(specs)
        assert runner.extractor is engine  # never rebuilt
        assert [record.sequence for record in records] == ["fr1/xyz", "fr1/desk"]
        summary = runner.summary()
        assert summary["runs"] == 2
        assert summary["backend"] == "vectorized"

    def test_batch_runner_rejects_resolution_mismatch(self):
        from repro.analysis import BatchRunner
        from repro.dataset import SequenceSpec
        from repro.errors import ReproError

        runner = BatchRunner()
        with pytest.raises(ReproError):
            runner.run_sequence(
                SequenceSpec(name="fr1/xyz", num_frames=2, image_width=64, image_height=64)
            )
