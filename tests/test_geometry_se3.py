"""Tests for SO(3)/SE(3) operations and the Pose type."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import (
    Pose,
    hat,
    interpolate_pose,
    quaternion_from_rotation,
    rotation_from_euler,
    rotation_from_quaternion,
    se3_exp,
    se3_log,
    so3_exp,
    so3_log,
    vee,
)

_small_floats = st.floats(min_value=-1.5, max_value=1.5, allow_nan=False)


class TestSo3:
    def test_exp_of_zero_is_identity(self):
        assert np.allclose(so3_exp(np.zeros(3)), np.eye(3))

    def test_exp_is_rotation_matrix(self):
        rotation = so3_exp(np.array([0.3, -0.2, 0.5]))
        assert np.allclose(rotation @ rotation.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(rotation) == pytest.approx(1.0)

    def test_exp_log_roundtrip(self):
        omega = np.array([0.4, -0.1, 0.7])
        assert np.allclose(so3_log(so3_exp(omega)), omega, atol=1e-9)

    def test_log_of_identity_is_zero(self):
        assert np.allclose(so3_log(np.eye(3)), np.zeros(3))

    def test_rotation_angle_magnitude(self):
        omega = np.array([0.0, 0.0, 0.25])
        rotation = so3_exp(omega)
        assert np.linalg.norm(so3_log(rotation)) == pytest.approx(0.25)

    def test_near_pi_rotation_recovered(self):
        omega = np.array([0.0, 3.14, 0.0])
        recovered = so3_log(so3_exp(omega))
        assert np.linalg.norm(recovered) == pytest.approx(3.14, abs=1e-6)

    def test_hat_vee_roundtrip(self):
        omega = np.array([1.0, -2.0, 3.0])
        assert np.allclose(vee(hat(omega)), omega)
        assert np.allclose(hat(omega), -hat(omega).T)

    @settings(max_examples=40, deadline=None)
    @given(_small_floats, _small_floats, _small_floats)
    def test_exp_log_roundtrip_property(self, x, y, z):
        omega = np.array([x, y, z])
        assert np.allclose(so3_log(so3_exp(omega)), omega, atol=1e-7)


class TestQuaternions:
    def test_identity_quaternion(self):
        quat = quaternion_from_rotation(np.eye(3))
        assert np.allclose(np.abs(quat), [0, 0, 0, 1])

    def test_quaternion_rotation_roundtrip(self):
        rotation = so3_exp(np.array([0.2, 0.5, -0.3]))
        recovered = rotation_from_quaternion(quaternion_from_rotation(rotation))
        assert np.allclose(recovered, rotation, atol=1e-9)

    def test_zero_quaternion_rejected(self):
        with pytest.raises(GeometryError):
            rotation_from_quaternion(np.zeros(4))

    @settings(max_examples=40, deadline=None)
    @given(_small_floats, _small_floats, _small_floats)
    def test_roundtrip_property(self, x, y, z):
        rotation = so3_exp(np.array([x, y, z]))
        recovered = rotation_from_quaternion(quaternion_from_rotation(rotation))
        assert np.allclose(recovered, rotation, atol=1e-8)


class TestEuler:
    def test_yaw_only(self):
        rotation = rotation_from_euler(0.0, 0.0, np.pi / 2)
        assert np.allclose(rotation @ np.array([1, 0, 0]), [0, 1, 0], atol=1e-12)

    def test_roll_only(self):
        rotation = rotation_from_euler(np.pi / 2, 0.0, 0.0)
        assert np.allclose(rotation @ np.array([0, 1, 0]), [0, 0, 1], atol=1e-12)


class TestPose:
    def test_identity(self):
        pose = Pose.identity()
        point = np.array([1.0, 2.0, 3.0])
        assert np.allclose(pose.transform(point), point)

    def test_rejects_non_rotation(self):
        with pytest.raises(GeometryError):
            Pose(np.eye(3) * 2.0, np.zeros(3))

    def test_compose_and_inverse(self, example_pose):
        composed = example_pose.compose(example_pose.inverse())
        assert composed.is_close(Pose.identity(), atol=1e-10)

    def test_matmul_operator(self, example_pose):
        assert (example_pose @ Pose.identity()).is_close(example_pose)

    def test_transform_single_and_batch_agree(self, example_pose):
        points = np.random.default_rng(0).normal(size=(5, 3))
        batch = example_pose.transform(points)
        for i in range(5):
            assert np.allclose(batch[i], example_pose.transform(points[i]))

    def test_matrix_roundtrip(self, example_pose):
        assert Pose.from_matrix(example_pose.matrix()).is_close(example_pose)

    def test_camera_center(self, example_pose):
        center = example_pose.camera_center()
        assert np.allclose(example_pose.transform(center), np.zeros(3), atol=1e-12)

    def test_translation_distance(self):
        a = Pose(np.eye(3), np.array([0.0, 0.0, 0.0]))
        b = Pose(np.eye(3), np.array([3.0, 4.0, 0.0]))
        assert a.translation_distance(b) == pytest.approx(5.0)

    def test_rotation_angle(self):
        a = Pose.identity()
        b = Pose(so3_exp(np.array([0.0, 0.3, 0.0])), np.zeros(3))
        assert a.rotation_angle(b) == pytest.approx(0.3)

    def test_relative_to(self, example_pose):
        relative = example_pose.relative_to(example_pose)
        assert relative.is_close(Pose.identity(), atol=1e-12)

    def test_quaternion_translation_constructor(self, example_pose):
        rebuilt = Pose.from_quaternion_translation(
            quaternion_from_rotation(example_pose.rotation), example_pose.translation
        )
        assert rebuilt.is_close(example_pose, atol=1e-9)


class TestSe3:
    def test_exp_of_zero(self):
        pose = se3_exp(np.zeros(3), np.zeros(3))
        assert pose.is_close(Pose.identity())

    def test_pure_translation(self):
        pose = se3_exp(np.array([1.0, 2.0, 3.0]), np.zeros(3))
        assert np.allclose(pose.translation, [1.0, 2.0, 3.0])
        assert np.allclose(pose.rotation, np.eye(3))

    def test_exp_log_roundtrip(self):
        upsilon = np.array([0.1, -0.2, 0.3])
        omega = np.array([0.2, 0.1, -0.4])
        pose = se3_exp(upsilon, omega)
        upsilon_back, omega_back = se3_log(pose)
        assert np.allclose(upsilon_back, upsilon, atol=1e-9)
        assert np.allclose(omega_back, omega, atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(_small_floats, _small_floats, _small_floats, _small_floats, _small_floats, _small_floats)
    def test_exp_log_property(self, a, b, c, d, e, f):
        pose = se3_exp(np.array([a, b, c]), np.array([d, e, f]))
        upsilon, omega = se3_log(pose)
        rebuilt = se3_exp(upsilon, omega)
        assert rebuilt.is_close(pose, atol=1e-7)


class TestInterpolation:
    def test_endpoints(self, example_pose):
        assert interpolate_pose(Pose.identity(), example_pose, 0.0).is_close(
            Pose.identity(), atol=1e-9
        )
        assert interpolate_pose(Pose.identity(), example_pose, 1.0).is_close(
            example_pose, atol=1e-9
        )

    def test_midpoint_rotation_angle(self):
        target = Pose(so3_exp(np.array([0.0, 0.0, 0.4])), np.zeros(3))
        mid = interpolate_pose(Pose.identity(), target, 0.5)
        assert mid.rotation_angle(Pose.identity()) == pytest.approx(0.2, abs=1e-9)

    def test_rejects_alpha_out_of_range(self, example_pose):
        with pytest.raises(GeometryError):
            interpolate_pose(Pose.identity(), example_pose, 1.5)
