"""hwexact parity: the quantized engine pair vs the hardware model.

The ``hwexact`` detection engine and keypoint backend run the FPGA model's
fixed-point arithmetic batched over whole levels; the hardware model's
:meth:`~repro.hw.OrbExtractorAccelerator.extract_quantized` drives the same
arithmetic unit by unit (per-window FAST/Harris, per-feature orientation and
BRIEF, scalar heap offers).  These tests pin down that the two orchestrations
are bit-identical — kernels first, then end to end — and that the quantized
pair runs full synthetic-TUM sequences through the SLAM stack.
"""

import numpy as np
import pytest

from repro.backends import available_backends, create_backend
from repro.backends.hwexact import HwExactBackend
from repro.config import ExtractorConfig, PyramidConfig, SlamConfig, TrackerConfig
from repro.dataset import SequenceSpec, make_sequence
from repro.errors import HardwareModelError
from repro.features import OrbExtractor
from repro.frontend import available_engines, create_engine
from repro.frontend.hwexact import HwExactEngine
from repro.hw import OrbExtractorAccelerator
from repro.hw.orb_extractor import FastDetectionUnit, ImageSmootherUnit, OrientationUnit
from repro.image import GrayImage, random_blocks
from repro.quant import (
    HARRIS_SCORE_FORMAT,
    harris_scores_quantized,
    harris_window_score_quantized,
    intensity_centroids_batched,
    orientation_bins_quantized,
)
from repro.analysis import (
    BatchRunner,
    compare_float_vs_fixed_extraction,
    run_hwexact_parity,
    run_quantization_divergence,
)


def _config(**kwargs) -> ExtractorConfig:
    defaults = dict(
        image_width=160,
        image_height=120,
        pyramid=PyramidConfig(num_levels=2),
        max_features=100,
        frontend="hwexact",
        backend="hwexact",
    )
    defaults.update(kwargs)
    return ExtractorConfig(**defaults)


@pytest.fixture(scope="module")
def texture():
    return random_blocks(120, 160, block=10, seed=7)


class TestHwExactRegistry:
    def test_registered_in_both_layers(self):
        assert "hwexact" in available_backends()
        assert "hwexact" in available_engines()

    def test_config_selects_hwexact_classes(self):
        extractor = OrbExtractor(_config())
        assert isinstance(extractor.frontend, HwExactEngine)
        assert isinstance(extractor.backend, HwExactBackend)
        assert extractor.frontend.name == "hwexact"
        assert extractor.backend.name == "hwexact"

    def test_backend_requires_rs_brief(self):
        with pytest.raises(HardwareModelError):
            create_backend("hwexact", _config(use_rs_brief=False))

    def test_engine_construction(self):
        engine = create_engine("hwexact", _config())
        assert int(engine._kernel_fixed.sum()) == 256


class TestQuantizedHarrisParity:
    def test_batched_matches_per_window_unit(self, texture):
        unit = FastDetectionUnit()
        rng = np.random.default_rng(3)
        xs = rng.integers(3, 157, 200).astype(np.int64)
        ys = rng.integers(3, 117, 200).astype(np.int64)
        batched = harris_scores_quantized(texture, xs, ys)
        for index in range(xs.size):
            x, y = int(xs[index]), int(ys[index])
            window = texture.pixels[y - 3 : y + 4, x - 3 : x + 4]
            assert int(batched[index]) == harris_window_score_quantized(window)
            # the unit's corner score is the same kernel
            is_corner, score = unit.evaluate_window(window)
            if is_corner:
                assert score == float(batched[index])

    def test_score_register_never_saturates(self):
        # worst-case windows: extreme alternating patterns stay inside Q24.0
        # (the HARRIS_SCORE_SHIFT rescale is chosen so clipping cannot occur)
        patterns = [
            np.tile([[0, 255]], (7, 4))[:, :7],
            np.tile([[255, 0]], (7, 4))[:, :7],
            np.tile([[0], [255]], (4, 7))[:7, :],
            np.indices((7, 7)).sum(axis=0) * 36,
        ]
        limit = int(HARRIS_SCORE_FORMAT.max_value)
        for window in patterns:
            score = harris_window_score_quantized(window)
            assert -(limit + 1) < score <= limit
            assert abs(score) < limit  # strictly inside: nothing was clipped

    def test_out_of_bounds_points_rejected(self, texture):
        with pytest.raises(HardwareModelError):
            harris_scores_quantized(texture, np.array([1]), np.array([50]))


class TestQuantizedSmootherParity:
    def test_image_matches_window_by_window(self):
        image = random_blocks(48, 64, block=6, seed=5)
        unit = ImageSmootherUnit()
        smoothed = unit.smooth_image(image)
        for y in range(3, 45, 3):
            for x in range(3, 61, 4):
                window = image.pixels[y - 3 : y + 4, x - 3 : x + 4]
                assert int(smoothed.pixels[y, x]) == unit.smooth_window(window)

    def test_constant_image_unchanged(self):
        unit = ImageSmootherUnit()
        flat = unit.smooth_image(GrayImage.full(32, 32, 93))
        assert np.all(flat.pixels == 93)


class TestQuantizedOrientationParity:
    def test_batched_matches_per_patch_unit(self, texture):
        unit = OrientationUnit()
        engine = create_engine("hwexact", _config())
        smoothed = engine.smooth(texture)
        xs, ys = np.meshgrid(np.arange(20, 140, 7), np.arange(20, 100, 7))
        xs = xs.ravel().astype(np.int64)
        ys = ys.ravel().astype(np.int64)
        us, vs = intensity_centroids_batched(smoothed, xs, ys, radius=15)
        bins = orientation_bins_quantized(us, vs)
        for index in range(xs.size):
            patch = smoothed.patch(int(xs[index]), int(ys[index]), 15)
            assert int(bins[index]) == unit.orientation_bin(patch)

    def test_axis_aligned_and_degenerate_centroids(self):
        us = np.array([0.0, 0.0, 0.0, 5.0, -5.0, 1e-13])
        vs = np.array([0.0, 4.0, -4.0, 0.0, 0.0, 1e-13])
        bins = orientation_bins_quantized(us, vs)
        assert bins.tolist() == [0, 8, 24, 0, 16, 0]


class TestEndToEndParity:
    def test_engine_pair_bit_identical_to_hw_model(self, texture):
        config = _config()
        engine_result = OrbExtractor(config).extract(texture)
        hw_result, report = OrbExtractorAccelerator(config).extract_quantized(texture)
        assert len(engine_result.features) == len(hw_result.features)
        assert len(engine_result.features) > 50
        for engine_feature, hw_feature in zip(engine_result.features, hw_result.features):
            a, b = engine_feature.keypoint, hw_feature.keypoint
            assert (a.level, a.x, a.y) == (b.level, b.x, b.y)
            assert engine_feature.score == hw_feature.score
            assert a.orientation_bin == b.orientation_bin
            assert a.orientation_rad == b.orientation_rad
            assert engine_feature.descriptor.tobytes() == hw_feature.descriptor.tobytes()
            assert (engine_feature.x0, engine_feature.y0) == (hw_feature.x0, hw_feature.y0)
        assert vars(engine_result.profile) == vars(hw_result.profile)
        assert report.latency_ms > 0

    def test_parity_harness_reports_bit_identical(self):
        report = run_hwexact_parity(
            images=[random_blocks(96, 128, block=9, seed=31)],
            config=_config(image_width=128, image_height=96, max_features=80),
        )
        assert report["bit_identical"]
        assert report["total_mismatches"] == 0
        assert report["rows"][0]["engine_features"] > 30

    def test_hw_model_rejects_partial_windows(self):
        from repro.config import FastConfig

        config = _config(fast=FastConfig(border=2))
        with pytest.raises(HardwareModelError):
            OrbExtractorAccelerator(config).extract_quantized(
                random_blocks(64, 64, block=6, seed=1)
            )

    def test_quantized_scores_are_integers(self, texture):
        result = OrbExtractor(_config()).extract(texture)
        scores = result.score_array()
        assert np.all(scores == np.rint(scores))
        assert np.all(scores > 0)
        assert float(scores.max()) <= HARRIS_SCORE_FORMAT.max_value


class TestHwExactAtScale:
    """Full synthetic-TUM sequences through SlamSystem / BatchRunner."""

    @pytest.fixture(scope="class")
    def slam_config(self):
        return SlamConfig(
            extractor=_config(max_features=150),
            tracker=TrackerConfig(ransac_iterations=32, pose_iterations=6),
        )

    def test_slam_system_runs_end_to_end(self, slam_config):
        sequence = make_sequence(
            SequenceSpec(name="fr1/xyz", num_frames=5, image_width=160, image_height=120)
        )
        from repro.slam import SlamSystem

        result = SlamSystem(slam_config).run(sequence)
        assert result.num_frames == 5
        assert result.tracking_success_ratio > 0.5
        assert np.isfinite(result.ate().mean_cm)

    def test_batch_runner_shares_one_quantized_engine(self, slam_config):
        runner = BatchRunner(config=slam_config)
        specs = [
            SequenceSpec(name=name, num_frames=3, image_width=160, image_height=120)
            for name in ("fr1/xyz", "fr2/rpy")
        ]
        records = runner.run_all(specs)
        assert len(records) == 2
        assert runner.summary()["backend"] == "hwexact"
        assert all(np.isfinite(record.ate_mean_cm) for record in records)


class TestQuantizationDivergence:
    def test_extraction_divergence_metrics(self, texture):
        metrics = compare_float_vs_fixed_extraction(texture, _config())
        assert metrics["float_features"] > 50
        assert metrics["fixed_features"] > 50
        # the quantized detector must still land near the float detector
        assert metrics["fixed_coverage_1px"] > 0.5
        assert metrics["float_coverage_1px"] > 0.5
        assert 0.0 <= metrics["descriptor_identical_ratio"] <= 1.0
        assert metrics["descriptor_mean_hamming_bits"] < 64.0

    def test_divergence_harness_trajectories(self):
        report = run_quantization_divergence(num_frames=5)
        assert report["float"]["tracking_success_ratio"] > 0.5
        assert report["fixed"]["tracking_success_ratio"] > 0.5
        assert np.isfinite(report["fixed"]["ate_mean_cm"])
        assert np.isfinite(report["trajectory_divergence_rmse_cm"])
        # the paper's claim: fixed-point arithmetic preserves accuracy to the
        # same order of magnitude as the float pipeline
        assert report["fixed"]["ate_mean_cm"] < 10.0 * max(
            1.0, report["float"]["ate_mean_cm"]
        )
