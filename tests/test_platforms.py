"""Tests for the platform specs, runtime models, pipeline and comparisons.

These tests encode the paper's Tables 2 and 3 and the headline speedup /
energy-efficiency claims; the runtime models are calibrated, so close
agreement at the nominal workload is a correctness requirement, while
workload scaling checks confirm the models are not constants.
"""

import pytest

from repro.errors import PlatformModelError
from repro.platforms import (
    ARM_CORTEX_A9,
    ESLAM,
    INTEL_I7,
    NOMINAL_WORKLOAD,
    CpuRuntimeModel,
    EslamRuntimeModel,
    FrameWorkload,
    PipelineModel,
    PlatformComparison,
    PlatformKind,
    paper_stage_runtimes,
    platform_by_name,
    runtime_model_for,
)


class TestSpecs:
    def test_paper_power_values(self):
        assert ARM_CORTEX_A9.power_w == pytest.approx(1.574)
        assert INTEL_I7.power_w == pytest.approx(47.0)
        assert ESLAM.power_w == pytest.approx(1.936)

    def test_eslam_is_heterogeneous(self):
        assert ESLAM.kind is PlatformKind.HETEROGENEOUS
        assert ARM_CORTEX_A9.kind is PlatformKind.CPU_ONLY

    def test_lookup_by_name_and_alias(self):
        assert platform_by_name("eslam") is ESLAM
        assert platform_by_name("ARM") is ARM_CORTEX_A9
        assert platform_by_name("Intel i7-4700MQ") is INTEL_I7

    def test_unknown_platform_rejected(self):
        with pytest.raises(PlatformModelError):
            platform_by_name("gpu")

    def test_eslam_power_overhead_vs_arm(self):
        """The paper: eSLAM power is ~23% higher than the ARM alone."""
        overhead = ESLAM.power_w / ARM_CORTEX_A9.power_w - 1.0
        assert overhead == pytest.approx(0.23, abs=0.01)


class TestWorkload:
    def test_nominal_distance_evaluations_consistent(self):
        assert NOMINAL_WORKLOAD.distance_evaluations == pytest.approx(
            NOMINAL_WORKLOAD.features_retained * NOMINAL_WORKLOAD.map_points, rel=0.01
        )

    def test_scaled(self):
        doubled = NOMINAL_WORKLOAD.scaled(2.0)
        assert doubled.pixels_processed == 2 * NOMINAL_WORKLOAD.pixels_processed

    def test_with_map_points(self):
        resized = NOMINAL_WORKLOAD.with_map_points(3000)
        assert resized.map_points == 3000
        assert resized.distance_evaluations == NOMINAL_WORKLOAD.features_retained * 3000

    def test_negative_values_rejected(self):
        with pytest.raises(PlatformModelError):
            FrameWorkload(pixels_processed=-1)

    def test_from_stage_workload(self, tiny_slam_result):
        stage = tiny_slam_result.frame_results[1].workload
        workload = FrameWorkload.from_stage_workload(stage)
        assert workload.pixels_processed == stage.pixels_processed
        assert workload.distance_evaluations >= 1


class TestCpuRuntimeModels:
    def test_arm_matches_table2_at_nominal_workload(self):
        runtimes = CpuRuntimeModel(ARM_CORTEX_A9).stage_runtimes(NOMINAL_WORKLOAD)
        paper = paper_stage_runtimes("ARM Cortex-A9")
        assert runtimes.feature_extraction == pytest.approx(paper["feature_extraction"], rel=0.01)
        assert runtimes.feature_matching == pytest.approx(paper["feature_matching"], rel=0.01)
        assert runtimes.pose_estimation == pytest.approx(paper["pose_estimation"], rel=0.01)
        assert runtimes.pose_optimization == pytest.approx(paper["pose_optimization"], rel=0.01)
        assert runtimes.map_updating == pytest.approx(paper["map_updating"], rel=0.01)

    def test_i7_matches_table2_at_nominal_workload(self):
        runtimes = CpuRuntimeModel(INTEL_I7).stage_runtimes(NOMINAL_WORKLOAD)
        paper = paper_stage_runtimes("Intel i7-4700MQ")
        assert runtimes.feature_extraction == pytest.approx(paper["feature_extraction"], rel=0.01)
        assert runtimes.feature_matching == pytest.approx(paper["feature_matching"], rel=0.01)

    def test_runtime_scales_with_workload(self):
        model = CpuRuntimeModel(ARM_CORTEX_A9)
        nominal = model.stage_runtimes(NOMINAL_WORKLOAD)
        bigger_map = model.stage_runtimes(NOMINAL_WORKLOAD.with_map_points(3000))
        assert bigger_map.feature_matching == pytest.approx(2 * nominal.feature_matching, rel=0.01)
        assert bigger_map.feature_extraction == pytest.approx(nominal.feature_extraction)

    def test_unknown_platform_rejected(self):
        with pytest.raises(PlatformModelError):
            CpuRuntimeModel(ESLAM.__class__(
                name="other", kind=PlatformKind.CPU_ONLY, clock_hz=1e9, power_w=1.0
            ))

    def test_factory(self):
        assert isinstance(runtime_model_for(ARM_CORTEX_A9), CpuRuntimeModel)
        assert isinstance(runtime_model_for(ESLAM), EslamRuntimeModel)


class TestEslamRuntimeModel:
    def test_fe_fm_from_accelerator_model(self):
        runtimes = EslamRuntimeModel().stage_runtimes(NOMINAL_WORKLOAD)
        assert runtimes.feature_extraction == pytest.approx(9.1, rel=0.25)
        assert runtimes.feature_matching == pytest.approx(4.0, rel=0.2)

    def test_host_stages_match_arm(self):
        eslam = EslamRuntimeModel().stage_runtimes(NOMINAL_WORKLOAD)
        arm = CpuRuntimeModel(ARM_CORTEX_A9).stage_runtimes(NOMINAL_WORKLOAD)
        assert eslam.pose_estimation == pytest.approx(arm.pose_estimation)
        assert eslam.map_updating == pytest.approx(arm.map_updating)


class TestPipelineModel:
    @pytest.fixture(scope="class")
    def stage_runtimes(self):
        return {
            ARM_CORTEX_A9.name: CpuRuntimeModel(ARM_CORTEX_A9).stage_runtimes(NOMINAL_WORKLOAD),
            INTEL_I7.name: CpuRuntimeModel(INTEL_I7).stage_runtimes(NOMINAL_WORKLOAD),
            ESLAM.name: EslamRuntimeModel().stage_runtimes(NOMINAL_WORKLOAD),
        }

    def test_cpu_frame_time_is_serial_sum(self, stage_runtimes):
        arm = stage_runtimes[ARM_CORTEX_A9.name]
        pipeline = PipelineModel(ARM_CORTEX_A9)
        assert pipeline.frame_time_ms(arm, is_keyframe=False) == pytest.approx(555.7, rel=0.01)
        assert pipeline.frame_time_ms(arm, is_keyframe=True) == pytest.approx(565.6, rel=0.01)

    def test_eslam_normal_frame_overlaps(self, stage_runtimes):
        """Figure 7: normal-frame time = max(FE+FM, PE+PO) = PE+PO = 17.9 ms."""
        eslam = stage_runtimes[ESLAM.name]
        pipeline = PipelineModel(ESLAM)
        assert pipeline.frame_time_ms(eslam, is_keyframe=False) == pytest.approx(17.9, rel=0.02)

    def test_eslam_key_frame_serialises_matcher(self, stage_runtimes):
        """Figure 7: key-frame time = FM + PE + PO + MU = 31.8 ms."""
        eslam = stage_runtimes[ESLAM.name]
        pipeline = PipelineModel(ESLAM)
        assert pipeline.frame_time_ms(eslam, is_keyframe=True) == pytest.approx(31.8, rel=0.03)

    def test_frame_timing_energy(self, stage_runtimes):
        timing = PipelineModel(ARM_CORTEX_A9).frame_timing(
            stage_runtimes[ARM_CORTEX_A9.name], is_keyframe=False
        )
        assert timing.energy_per_frame_mj == pytest.approx(875, rel=0.01)
        assert timing.frame_rate_fps == pytest.approx(1.8, rel=0.01)

    def test_average_timing_interpolates(self, stage_runtimes):
        pipeline = PipelineModel(ESLAM)
        eslam = stage_runtimes[ESLAM.name]
        average = pipeline.average_timing(eslam, keyframe_ratio=0.5)
        normal = pipeline.frame_time_ms(eslam, False)
        key = pipeline.frame_time_ms(eslam, True)
        assert average["runtime_ms"] == pytest.approx((normal + key) / 2)

    def test_average_timing_validates_ratio(self, stage_runtimes):
        with pytest.raises(PlatformModelError):
            PipelineModel(ESLAM).average_timing(stage_runtimes[ESLAM.name], 1.5)

    def test_schedule_cpu_is_single_track(self, stage_runtimes):
        entries = PipelineModel(INTEL_I7).schedule(stage_runtimes[INTEL_I7.name], is_keyframe=True)
        assert {entry.resource for entry in entries} == {INTEL_I7.name}
        assert len(entries) == 5

    def test_schedule_eslam_has_two_tracks(self, stage_runtimes):
        entries = PipelineModel(ESLAM).schedule(stage_runtimes[ESLAM.name], is_keyframe=False)
        assert {entry.resource for entry in entries} == {"ARM", "FPGA"}

    def test_keyframe_matcher_waits_for_map_update(self, stage_runtimes):
        """Figure 7 (lower): the BRIEF Matcher starts only after MU finishes."""
        entries = PipelineModel(ESLAM).schedule(stage_runtimes[ESLAM.name], is_keyframe=True)
        mu_end = next(e.end_ms for e in entries if e.stage == "map_updating")
        fm_start = next(e.start_ms for e in entries if e.stage == "feature_matching")
        assert fm_start >= mu_end

    def test_makespan_equals_frame_time_for_eslam(self, stage_runtimes):
        pipeline = PipelineModel(ESLAM)
        eslam = stage_runtimes[ESLAM.name]
        assert pipeline.makespan_ms(eslam, True) == pytest.approx(
            pipeline.frame_time_ms(eslam, True)
        )


class TestPlatformComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        return PlatformComparison()

    def test_table2_rows(self, comparison):
        rows = comparison.runtime_table()
        assert len(rows) == 5
        fe_row = rows[0]
        assert fe_row["ARM Cortex-A9"] == pytest.approx(291.6, rel=0.01)
        assert fe_row["Intel i7-4700MQ"] == pytest.approx(32.5, rel=0.01)

    def test_table3_frame_rates(self, comparison):
        timings = comparison.frame_timings()
        assert timings[ESLAM.name]["normal"].frame_rate_fps == pytest.approx(55.87, rel=0.05)
        assert timings[ESLAM.name]["key"].frame_rate_fps == pytest.approx(31.45, rel=0.05)
        assert timings[ARM_CORTEX_A9.name]["normal"].frame_rate_fps == pytest.approx(1.8, rel=0.02)

    def test_headline_speedups(self, comparison):
        """Abstract: up to 3x vs i7 and 31x vs ARM frame-rate improvement."""
        speedups = comparison.speedups()
        assert speedups[ARM_CORTEX_A9.name]["normal"] == pytest.approx(31.0, rel=0.05)
        assert speedups[ARM_CORTEX_A9.name]["key"] == pytest.approx(17.8, rel=0.05)
        assert speedups[INTEL_I7.name]["normal"] == pytest.approx(3.0, rel=0.05)
        assert speedups[INTEL_I7.name]["key"] == pytest.approx(1.7, rel=0.06)

    def test_headline_energy_improvements(self, comparison):
        """Abstract: 14-25x vs ARM and 41-71x vs i7 energy efficiency."""
        improvements = comparison.energy_improvements()
        assert 13 < improvements[ARM_CORTEX_A9.name]["key"] < 16
        assert 23 < improvements[ARM_CORTEX_A9.name]["normal"] < 27
        assert 38 < improvements[INTEL_I7.name]["key"] < 46
        assert 65 < improvements[INTEL_I7.name]["normal"] < 78

    def test_stage_speedups_match_section_4_3(self, comparison):
        """Section 4.3: ~32x/3.6x FE speedup and ~61.6x/4.9x FM speedup."""
        stage_speedups = comparison.stage_speedups()
        assert stage_speedups[ARM_CORTEX_A9.name]["feature_extraction"] == pytest.approx(32, rel=0.2)
        assert stage_speedups[ARM_CORTEX_A9.name]["feature_matching"] == pytest.approx(61.6, rel=0.15)
        assert stage_speedups[INTEL_I7.name]["feature_extraction"] == pytest.approx(3.6, rel=0.2)
        assert stage_speedups[INTEL_I7.name]["feature_matching"] == pytest.approx(4.9, rel=0.15)

    def test_energy_table_has_power_row(self, comparison):
        rows = comparison.energy_table()
        power_rows = [row for row in rows if row["metric"] == "power_w"]
        assert len(power_rows) == 1
        assert power_rows[0][ESLAM.name] == pytest.approx(1.936)
