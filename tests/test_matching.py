"""Tests for Hamming distance and the brute-force matcher."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MatcherConfig
from repro.errors import DescriptorError
from repro.matching import (
    BruteForceMatcher,
    Match,
    filter_matches_by_distance,
    hamming_distance,
    hamming_distance_matrix,
    match_minimum_distance,
    normalized_hamming,
    popcount_bytes,
)


def _random_descriptors(count: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(count, 32), dtype=np.uint8)


class TestHammingDistance:
    def test_identical_descriptors_distance_zero(self):
        descriptor = _random_descriptors(1)[0]
        assert hamming_distance(descriptor, descriptor) == 0

    def test_complement_distance_is_all_bits(self):
        descriptor = _random_descriptors(1)[0]
        assert hamming_distance(descriptor, np.bitwise_not(descriptor)) == 256

    def test_single_bit_flip(self):
        a = np.zeros(32, dtype=np.uint8)
        b = a.copy()
        b[5] = 0b00010000
        assert hamming_distance(a, b) == 1

    def test_symmetry(self):
        a, b = _random_descriptors(2, seed=1)
        assert hamming_distance(a, b) == hamming_distance(b, a)

    def test_triangle_inequality(self):
        a, b, c = _random_descriptors(3, seed=2)
        assert hamming_distance(a, c) <= hamming_distance(a, b) + hamming_distance(b, c)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DescriptorError):
            hamming_distance(np.zeros(32, dtype=np.uint8), np.zeros(16, dtype=np.uint8))

    def test_popcount_table(self):
        values = np.array([0, 1, 3, 255], dtype=np.uint8)
        assert popcount_bytes(values).tolist() == [0, 1, 2, 8]

    def test_normalized_distance(self):
        a = np.zeros(32, dtype=np.uint8)
        b = np.full(32, 255, dtype=np.uint8)
        assert normalized_hamming(a, b) == pytest.approx(1.0)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_distance_matches_bit_count(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 256, 32, dtype=np.uint8)
        b = rng.integers(0, 256, 32, dtype=np.uint8)
        expected = int(np.unpackbits(np.bitwise_xor(a, b)).sum())
        assert hamming_distance(a, b) == expected


class TestDistanceMatrix:
    def test_shape(self):
        a = _random_descriptors(5, seed=3)
        b = _random_descriptors(7, seed=4)
        assert hamming_distance_matrix(a, b).shape == (5, 7)

    def test_entries_match_pairwise(self):
        a = _random_descriptors(4, seed=5)
        b = _random_descriptors(3, seed=6)
        matrix = hamming_distance_matrix(a, b)
        for i in range(4):
            for j in range(3):
                assert matrix[i, j] == hamming_distance(a[i], b[j])

    def test_diagonal_zero_for_same_set(self):
        a = _random_descriptors(6, seed=7)
        matrix = hamming_distance_matrix(a, a)
        assert np.all(np.diag(matrix) == 0)

    def test_byte_length_mismatch(self):
        with pytest.raises(DescriptorError):
            hamming_distance_matrix(
                np.zeros((2, 32), dtype=np.uint8), np.zeros((2, 16), dtype=np.uint8)
            )


class TestMinimumDistanceMatching:
    def test_finds_exact_copies(self):
        train = _random_descriptors(20, seed=8)
        query = train[[3, 7, 11]]
        matches = match_minimum_distance(query, train)
        assert [m.train_index for m in matches] == [3, 7, 11]
        assert all(m.distance == 0 for m in matches)

    def test_one_match_per_query(self):
        query = _random_descriptors(5, seed=9)
        train = _random_descriptors(30, seed=10)
        matches = match_minimum_distance(query, train)
        assert len(matches) == 5
        assert [m.query_index for m in matches] == list(range(5))

    def test_empty_inputs(self):
        assert match_minimum_distance(np.zeros((0, 32), dtype=np.uint8), _random_descriptors(3)) == []
        assert match_minimum_distance(_random_descriptors(3), np.zeros((0, 32), dtype=np.uint8)) == []


class TestBruteForceMatcher:
    def test_rejects_large_distances(self):
        query = _random_descriptors(10, seed=11)
        train = _random_descriptors(10, seed=12)  # unrelated: distances ~128
        matcher = BruteForceMatcher(MatcherConfig(max_hamming_distance=30, ratio_threshold=1.0))
        assert matcher.match(query, train) == []
        assert matcher.last_stats.rejected_distance == 10

    def test_accepts_exact_matches(self):
        train = _random_descriptors(50, seed=13)
        query = train[:10]
        matcher = BruteForceMatcher(MatcherConfig(max_hamming_distance=30))
        matches = matcher.match(query, train)
        assert len(matches) == 10
        assert all(m.distance == 0 for m in matches)

    def test_ratio_test_rejects_ambiguous(self):
        base = _random_descriptors(1, seed=14)[0]
        near_a = base.copy()
        near_a[0] ^= 0x01
        near_b = base.copy()
        near_b[1] ^= 0x01
        train = np.stack([near_a, near_b])  # two nearly identical candidates
        matcher = BruteForceMatcher(
            MatcherConfig(max_hamming_distance=64, ratio_threshold=0.5)
        )
        assert matcher.match(base[np.newaxis, :], train) == []
        assert matcher.last_stats.rejected_ratio == 1

    def test_cross_check_requires_mutual_best(self):
        train = _random_descriptors(20, seed=15)
        query = train[:5]
        matcher = BruteForceMatcher(
            MatcherConfig(max_hamming_distance=64, ratio_threshold=1.0, cross_check=True)
        )
        matches = matcher.match(query, train)
        assert [m.train_index for m in matches] == [0, 1, 2, 3, 4]

    def test_statistics_populated(self):
        query = _random_descriptors(4, seed=16)
        train = _random_descriptors(6, seed=17)
        matcher = BruteForceMatcher(MatcherConfig(max_hamming_distance=256, ratio_threshold=1.0))
        matcher.match(query, train)
        stats = matcher.last_stats
        assert stats.num_queries == 4
        assert stats.num_candidates == 6
        assert stats.distance_evaluations == 24

    def test_empty_returns_empty(self):
        matcher = BruteForceMatcher()
        assert matcher.match(np.zeros((0, 32), dtype=np.uint8), _random_descriptors(3)) == []


class TestFilters:
    def test_filter_by_distance(self):
        matches = [Match(0, 1, 10), Match(1, 2, 40), Match(2, 3, 90)]
        assert filter_matches_by_distance(matches, 40) == matches[:2]


class TestVectorizedSelectionEquivalence:
    """The array-based match selection must mirror the per-query loop exactly."""

    @staticmethod
    def _loop_oracle(query, train, config):
        """Literal transcription of the old per-query selection loop."""
        distances = hamming_distance_matrix(query, train)
        best_train = np.argmin(distances, axis=1)
        best_distance = distances[np.arange(distances.shape[0]), best_train]
        reverse_best = np.argmin(distances, axis=0) if config.cross_check else None
        matches, rejected = [], {"distance": 0, "ratio": 0, "cross": 0}
        for qi in range(distances.shape[0]):
            ti, dist = int(best_train[qi]), int(best_distance[qi])
            if dist > config.max_hamming_distance:
                rejected["distance"] += 1
                continue
            row = distances[qi]
            passes = True
            if config.ratio_threshold < 1.0 and row.size >= 2:
                second = np.partition(np.delete(row, ti), 0)[0]
                passes = second != 0 and dist <= config.ratio_threshold * float(second)
            if not passes:
                rejected["ratio"] += 1
                continue
            if reverse_best is not None and int(reverse_best[ti]) != qi:
                rejected["cross"] += 1
                continue
            matches.append(Match(qi, ti, dist))
        return matches, rejected

    @pytest.mark.parametrize("cross_check", [False, True])
    @pytest.mark.parametrize("ratio", [0.5, 0.85, 1.0])
    def test_matches_and_counters_equal_loop(self, cross_check, ratio):
        rng = np.random.default_rng(42)
        config = MatcherConfig(
            max_hamming_distance=40, ratio_threshold=ratio, cross_check=cross_check
        )
        for trial in range(25):
            query = rng.integers(0, 256, (8, 8), dtype=np.uint8)
            train = rng.integers(0, 256, (10, 8), dtype=np.uint8)
            train[:4] = query[:4]  # guarantee accepts, ties and mutual bests
            matcher = BruteForceMatcher(config)
            got = matcher.match(query, train)
            expected, rejected = self._loop_oracle(query, train, config)
            assert got == expected
            assert matcher.last_stats.rejected_distance == rejected["distance"]
            assert matcher.last_stats.rejected_ratio == rejected["ratio"]
            assert matcher.last_stats.rejected_cross_check == rejected["cross"]
            assert matcher.last_stats.accepted == len(expected)


class TestMatchArrays:
    """The array fast path must mirror the Match-object API exactly."""

    @pytest.mark.parametrize("cross_check", [False, True])
    def test_arrays_equal_objects_and_stats(self, cross_check):
        rng = np.random.default_rng(9)
        config = MatcherConfig(
            max_hamming_distance=48, ratio_threshold=0.9, cross_check=cross_check
        )
        for trial in range(10):
            query = rng.integers(0, 256, (12, 8), dtype=np.uint8)
            train = rng.integers(0, 256, (15, 8), dtype=np.uint8)
            train[:5] = query[:5]
            object_matcher = BruteForceMatcher(config)
            array_matcher = BruteForceMatcher(config)
            matches = object_matcher.match(query, train)
            arrays = array_matcher.match_arrays(query, train)
            assert arrays.to_matches() == matches
            assert arrays.size == len(matches)
            assert arrays.query_indices.tolist() == [m.query_index for m in matches]
            assert arrays.train_indices.tolist() == [m.train_index for m in matches]
            assert arrays.distances.tolist() == [m.distance for m in matches]
            assert vars(array_matcher.last_stats) == vars(object_matcher.last_stats)

    def test_empty_inputs_yield_empty_arrays(self):
        from repro.matching import MatchArrays

        arrays = BruteForceMatcher().match_arrays(
            np.zeros((0, 32), dtype=np.uint8), _random_descriptors(4)
        )
        assert isinstance(arrays, MatchArrays)
        assert arrays.size == 0
        assert arrays.to_matches() == []

    def test_no_match_objects_materialised_on_array_path(self):
        query = _random_descriptors(6, seed=3)
        arrays = BruteForceMatcher().match_arrays(query, query)
        # the fast path returns plain int64 arrays, one row per query (every
        # query matches itself at distance 0 here)
        assert arrays.query_indices.dtype == np.int64
        assert arrays.distances.tolist() == [0] * 6
        assert arrays.train_indices.tolist() == list(range(6))
