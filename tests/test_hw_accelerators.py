"""Tests for the integrated accelerator models: extractor, matcher, resizer, top level."""

import numpy as np
import pytest

from repro.config import AcceleratorConfig, ExtractorConfig, PyramidConfig
from repro.errors import HardwareModelError
from repro.hw import (
    BriefMatcherAccelerator,
    DeviceCapacity,
    EslamAccelerator,
    ImageResizerModule,
    OrbExtractorAccelerator,
    ResourceModel,
    validate_resizer_functional,
)
from repro.image import GrayImage, ImagePyramid, random_blocks
from repro.matching import match_minimum_distance


@pytest.fixture(scope="module")
def small_extractor_accel_config():
    return ExtractorConfig(
        image_width=160,
        image_height=120,
        pyramid=PyramidConfig(num_levels=2),
        max_features=200,
    )


class TestOrbExtractorAccelerator:
    def test_functional_output_matches_software(self, blocks_image, small_extractor_accel_config):
        from repro.features import OrbExtractor

        accel = OrbExtractorAccelerator(small_extractor_accel_config)
        result, report = accel.extract(blocks_image)
        software = OrbExtractor(small_extractor_accel_config).extract(blocks_image)
        assert len(result.features) == len(software.features)
        assert np.array_equal(result.descriptor_matrix(), software.descriptor_matrix())
        assert report.latency_ms > 0

    def test_latency_scales_with_image_size(self):
        small = ExtractorConfig(image_width=160, image_height=120, pyramid=PyramidConfig(num_levels=2))
        large = ExtractorConfig(image_width=320, image_height=240, pyramid=PyramidConfig(num_levels=2))
        small_report = OrbExtractorAccelerator(small).latency_from_profile(
            GrayImage.zeros(120, 160), keypoints_after_nms=500
        )
        large_report = OrbExtractorAccelerator(large).latency_from_profile(
            GrayImage.zeros(240, 320), keypoints_after_nms=500
        )
        assert large_report.total_cycles > 3 * small_report.total_cycles

    def test_default_config_matches_paper_fe_latency(self):
        """Table 2: eSLAM feature extraction latency is 9.1 ms."""
        accel = OrbExtractorAccelerator()
        report = accel.latency_from_profile(
            GrayImage.zeros(480, 640), keypoints_after_nms=2000, descriptors_computed=2000
        )
        assert report.latency_ms == pytest.approx(9.1, rel=0.25)

    def test_rescheduled_faster_than_original(self):
        """Section 3.1: rescheduling removes the serial describe pass."""
        blank = GrayImage.zeros(480, 640)
        rescheduled = OrbExtractorAccelerator(
            ExtractorConfig(rescheduled_workflow=True)
        ).latency_from_profile(blank, keypoints_after_nms=2000)
        original = OrbExtractorAccelerator(
            ExtractorConfig(rescheduled_workflow=False)
        ).latency_from_profile(blank, keypoints_after_nms=2000)
        assert rescheduled.total_cycles < original.total_cycles
        reduction = 1.0 - rescheduled.total_cycles / original.total_cycles
        assert reduction > 0.15

    def test_rescheduled_uses_less_on_chip_memory(self):
        accel = OrbExtractorAccelerator()
        streaming = accel.on_chip_buffer_bytes(rescheduled=True)
        buffered = accel.on_chip_buffer_bytes(rescheduled=False)
        assert streaming < buffered / 5

    def test_rejects_original_orb_descriptor(self):
        with pytest.raises(HardwareModelError):
            OrbExtractorAccelerator(ExtractorConfig(use_rs_brief=False))

    def test_report_fields(self, blocks_image, small_extractor_accel_config):
        accel = OrbExtractorAccelerator(small_extractor_accel_config)
        report = accel.latency_for_image(blocks_image)
        assert report.pixels_processed > blocks_image.num_pixels
        assert report.features <= small_extractor_accel_config.max_features
        assert report.workflow == "rescheduled"


class TestBriefMatcherAccelerator:
    def test_functional_matches_reference(self):
        rng = np.random.default_rng(5)
        frame = rng.integers(0, 256, (50, 32), dtype=np.uint8)
        global_map = rng.integers(0, 256, (200, 32), dtype=np.uint8)
        accel = BriefMatcherAccelerator()
        matches, report = accel.match(frame, global_map)
        reference = match_minimum_distance(frame, global_map)
        assert [(m.query_index, m.train_index) for m in matches] == [
            (m.query_index, m.train_index) for m in reference
        ]
        assert report.latency_ms > 0

    def test_latency_matches_paper_fm(self):
        """Table 2: eSLAM feature matching latency is 4.0 ms at the nominal workload."""
        accel = BriefMatcherAccelerator()
        report = accel.latency_for(1024, 1500)
        assert report.latency_ms == pytest.approx(4.0, rel=0.2)

    def test_latency_scales_with_map_size(self):
        accel = BriefMatcherAccelerator()
        small = accel.latency_for(1024, 500).total_cycles
        large = accel.latency_for(1024, 2000).total_cycles
        assert large > 3 * small

    def test_parallelism_reduces_latency(self):
        slow = BriefMatcherAccelerator(AcceleratorConfig(matcher_parallelism=1))
        fast = BriefMatcherAccelerator(AcceleratorConfig(matcher_parallelism=8))
        assert fast.latency_for(512, 1000).total_cycles < slow.latency_for(512, 1000).total_cycles

    def test_cache_capacity_enforced(self):
        accel = BriefMatcherAccelerator()
        too_many = np.zeros((2000, 32), dtype=np.uint8)
        with pytest.raises(HardwareModelError):
            accel.descriptor_cache.load_frame_descriptors(too_many)


class TestImageResizer:
    def test_functional_equivalence_with_software_pyramid(self, large_blocks_image):
        assert validate_resizer_functional(large_blocks_image, PyramidConfig(num_levels=4))

    def test_overlap_with_extractor_always_holds(self, large_blocks_image):
        module = ImageResizerModule(PyramidConfig(num_levels=4))
        assert module.overlap_check(large_blocks_image)

    def test_per_level_cycles_decrease(self, large_blocks_image):
        module = ImageResizerModule(PyramidConfig(num_levels=4))
        _, report = module.build_pyramid(large_blocks_image)
        cycles = report.per_level_cycles
        assert cycles[0] == 0.0
        assert cycles[1] > cycles[2] > cycles[3]


class TestResourceModel:
    def test_default_configuration_matches_table1(self):
        totals = ResourceModel().estimate().totals()
        assert totals.luts == 56954
        assert totals.flip_flops == 67809
        assert totals.dsps == 111
        assert totals.bram36 == 78

    def test_utilization_percentages_match_table1(self):
        report = ResourceModel().estimate()
        utilization = report.utilization_percent()
        assert utilization["LUT"] == pytest.approx(26.0, abs=0.3)
        assert utilization["FF"] == pytest.approx(15.5, abs=0.3)
        assert utilization["DSP"] == pytest.approx(12.3, abs=0.3)
        assert utilization["BRAM"] == pytest.approx(14.3, abs=0.3)

    def test_fits_the_xc7z045(self):
        assert ResourceModel().estimate().fits()

    def test_per_module_rows_include_total(self):
        rows = ResourceModel().estimate().as_rows()
        assert rows[-1]["module"] == "total"
        assert len(rows) > 5

    def test_larger_heap_needs_more_bram(self):
        bigger = ResourceModel(
            extractor_config=ExtractorConfig(max_features=4096),
            accel_config=AcceleratorConfig(heap_capacity=4096),
        )
        assert bigger.estimate().totals().bram36 > ResourceModel().estimate().totals().bram36

    def test_more_matcher_lanes_needs_more_luts(self):
        wide = ResourceModel(accel_config=AcceleratorConfig(matcher_parallelism=16))
        # the calibrated control block absorbs small changes; compare the matcher module itself
        wide_matcher = next(m for m in wide.estimate().modules if m.name == "brief_matcher")
        base_matcher = next(m for m in ResourceModel().estimate().modules if m.name == "brief_matcher")
        assert wide_matcher.luts > base_matcher.luts

    def test_scaling_factor_default_is_one(self):
        assert ResourceModel().scaling_factor() == pytest.approx(1.0)

    def test_device_capacities(self):
        assert DeviceCapacity.xc7z045().luts > DeviceCapacity.xc7z020().luts


class TestEslamAccelerator:
    def test_process_frame_without_map(self, blocks_image, small_extractor_accel_config):
        accel = EslamAccelerator(extractor_config=small_extractor_accel_config)
        report = accel.process_frame(blocks_image)
        assert report.matches == []
        assert report.matcher_report is None
        assert report.feature_extraction_ms > 0
        assert report.feature_matching_ms == 0.0

    def test_process_frame_with_map(self, blocks_image, small_extractor_accel_config):
        accel = EslamAccelerator(extractor_config=small_extractor_accel_config)
        first = accel.process_frame(blocks_image)
        map_descriptors = first.extraction.descriptor_matrix()
        second = accel.process_frame(blocks_image, map_descriptors)
        assert len(second.matches) == len(second.extraction.features)
        assert all(m.distance == 0 for m in second.matches)
        assert second.feature_matching_ms > 0

    def test_analytic_latency_helpers(self):
        accel = EslamAccelerator()
        assert accel.feature_extraction_latency_ms(2000) == pytest.approx(9.1, rel=0.25)
        assert accel.feature_matching_latency_ms(1024, 1500) == pytest.approx(4.0, rel=0.2)

    def test_sdram_buffers_reserved(self):
        accel = EslamAccelerator()
        allocations = accel.sdram.allocations()
        assert "input_image" in allocations
        assert allocations["input_image"] == 640 * 480
