"""Tests for the accelerator model kernel: cycles, fixed point, AXI, BRAM."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import AcceleratorConfig
from repro.errors import HardwareModelError
from repro.hw import (
    AxiPort,
    BramRequirement,
    CycleBreakdown,
    FixedPointFormat,
    ORIENTATION_RATIO_FORMAT,
    SdramModel,
    cycles_to_ms,
    line_buffer_requirement,
    total_bram36,
)


class TestCycleBreakdown:
    def test_add_and_total(self):
        breakdown = CycleBreakdown()
        breakdown.add("a", 100).add("b", 50).add("a", 25)
        assert breakdown.total == 175
        assert breakdown.components["a"] == 125

    def test_negative_rejected(self):
        with pytest.raises(HardwareModelError):
            CycleBreakdown().add("x", -1)

    def test_sequential_composition_adds(self):
        a = CycleBreakdown({"x": 10})
        b = CycleBreakdown({"y": 20})
        merged = CycleBreakdown.sequential({"first": a, "second": b})
        assert merged.total == 30
        assert "first.x" in merged.components

    def test_overlapped_composition_takes_max(self):
        slow = CycleBreakdown({"x": 100})
        fast = CycleBreakdown({"y": 10})
        merged = CycleBreakdown.overlapped({"slow": slow, "fast": fast})
        assert merged.total == 100

    def test_conversion_to_time(self):
        breakdown = CycleBreakdown({"x": 1_000_000})
        assert breakdown.to_seconds(100e6) == pytest.approx(0.01)
        assert breakdown.to_milliseconds(100e6) == pytest.approx(10.0)
        assert cycles_to_ms(500_000, 100e6) == pytest.approx(5.0)

    def test_scaling(self):
        breakdown = CycleBreakdown({"x": 10, "y": 20}).scaled(2.0)
        assert breakdown.total == 60

    def test_invalid_clock(self):
        with pytest.raises(HardwareModelError):
            CycleBreakdown({"x": 1}).to_seconds(0)


class TestFixedPoint:
    def test_resolution_and_range(self):
        fmt = FixedPointFormat(integer_bits=4, fraction_bits=4)
        assert fmt.resolution == pytest.approx(1 / 16)
        assert fmt.max_value == pytest.approx(15.9375)
        assert fmt.min_value == pytest.approx(-16.0)

    def test_quantize_rounds_to_grid(self):
        fmt = FixedPointFormat(integer_bits=4, fraction_bits=2)
        assert fmt.quantize(1.3) == pytest.approx(1.25)
        assert fmt.quantize(1.4) == pytest.approx(1.5)

    def test_clipping(self):
        fmt = FixedPointFormat(integer_bits=2, fraction_bits=2, signed=False)
        assert fmt.quantize(100.0) == fmt.max_value
        assert fmt.quantize(-5.0) == 0.0

    def test_integer_roundtrip(self):
        fmt = FixedPointFormat(integer_bits=6, fraction_bits=10)
        values = np.array([0.125, -3.5, 1.0])
        assert np.allclose(fmt.from_integer(fmt.to_integer(values)), values)

    def test_quantization_error_bounded(self):
        fmt = ORIENTATION_RATIO_FORMAT
        values = np.linspace(-5, 5, 1000)
        assert fmt.quantization_error(values) <= fmt.resolution / 2 + 1e-12

    def test_invalid_format_rejected(self):
        with pytest.raises(HardwareModelError):
            FixedPointFormat(integer_bits=-1, fraction_bits=2)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=-30.0, max_value=30.0, allow_nan=False))
    def test_quantize_idempotent(self, value):
        fmt = FixedPointFormat(integer_bits=6, fraction_bits=8)
        once = fmt.quantize(value)
        assert fmt.quantize(once) == pytest.approx(float(once))

    def test_saturation_lands_exactly_on_range_bounds(self):
        fmt = FixedPointFormat(integer_bits=4, fraction_bits=4)
        assert fmt.quantize(1e9) == fmt.max_value
        assert fmt.quantize(-1e9) == fmt.min_value
        # one resolution step beyond the bounds still saturates exactly
        assert fmt.quantize(fmt.max_value + fmt.resolution) == fmt.max_value
        assert fmt.quantize(fmt.min_value - fmt.resolution) == fmt.min_value
        assert fmt.to_integer(1e9) == int(fmt.max_value * fmt.scale)
        assert fmt.to_integer(-1e9) == int(fmt.min_value * fmt.scale)

    def test_negative_value_rounding_is_banker_style(self):
        fmt = FixedPointFormat(integer_bits=4, fraction_bits=2)
        assert fmt.quantize(-1.3) == pytest.approx(-1.25)
        assert fmt.quantize(-1.4) == pytest.approx(-1.5)
        # exact half-steps round to even, matching np.rint on positives
        assert fmt.quantize(-1.125) == pytest.approx(-1.0)
        assert fmt.quantize(-1.375) == pytest.approx(-1.5)
        assert fmt.to_integer(-0.3) == -1
        assert fmt.from_integer(fmt.to_integer(-3.75)) == pytest.approx(-3.75)

    def test_unsigned_format_clamps_negatives_to_zero(self):
        fmt = FixedPointFormat(integer_bits=3, fraction_bits=3, signed=False)
        assert fmt.min_value == 0.0
        assert fmt.total_bits == 6  # no sign bit
        assert fmt.quantize(-2.5) == 0.0
        assert fmt.to_integer(-2.5) == 0
        assert fmt.quantize(7.875) == fmt.max_value
        assert fmt.saturate_integer(-17) == 0
        assert fmt.saturate_integer(1000) == int(fmt.max_value * fmt.scale)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_inputs_rejected(self, bad):
        fmt = FixedPointFormat(integer_bits=6, fraction_bits=10)
        with pytest.raises(HardwareModelError):
            fmt.quantize(bad)
        with pytest.raises(HardwareModelError):
            fmt.to_integer(np.array([1.0, bad]))


class TestAxiPort:
    def test_zero_bytes_free(self):
        port = AxiPort()
        assert port.transfer_stats(0).cycles == 0.0

    def test_beats_and_bursts(self):
        config = AcceleratorConfig(axi_data_bytes=8, axi_burst_length=16, axi_latency_cycles=20)
        port = AxiPort(config)
        stats = port.transfer_stats(1024)  # 128 beats -> 8 bursts
        assert stats.beats == 128
        assert stats.bursts == 8
        assert stats.cycles == 128 + 8 * 20

    def test_partial_beat_rounds_up(self):
        port = AxiPort()
        assert port.transfer_stats(9).beats == 2

    def test_read_write_accounting(self):
        port = AxiPort()
        port.read(1000)
        port.write(500)
        assert port.total_bytes_read == 1000
        assert port.total_bytes_written == 500
        assert port.total_cycles > 0

    def test_streaming_read_hidden_when_compute_dominates(self):
        port = AxiPort()
        visible = port.streaming_read_cycles(10_000, compute_cycles=1_000_000)
        assert visible <= port.config.axi_latency_cycles + port.config.axi_burst_length

    def test_streaming_read_exposed_when_bus_bound(self):
        port = AxiPort()
        visible = port.streaming_read_cycles(1_000_000, compute_cycles=10)
        assert visible > 100_000

    def test_bandwidth(self):
        port = AxiPort()
        assert 0 < port.bandwidth_bytes_per_cycle() <= port.config.axi_data_bytes

    def test_negative_size_rejected(self):
        with pytest.raises(HardwareModelError):
            AxiPort().transfer_stats(-1)


class TestSdram:
    def test_allocate_and_free(self):
        sdram = SdramModel(capacity_bytes=1000)
        sdram.allocate("a", 400)
        sdram.allocate("b", 500)
        assert sdram.used_bytes == 900
        assert sdram.free_bytes == 100
        sdram.free("a")
        assert sdram.used_bytes == 500

    def test_overflow_rejected(self):
        sdram = SdramModel(capacity_bytes=100)
        with pytest.raises(HardwareModelError):
            sdram.allocate("big", 200)

    def test_duplicate_name_rejected(self):
        sdram = SdramModel(1000)
        sdram.allocate("x", 10)
        with pytest.raises(HardwareModelError):
            sdram.allocate("x", 10)

    def test_missing_allocation(self):
        with pytest.raises(HardwareModelError):
            SdramModel(1000).allocation("nope")


class TestBram:
    def test_single_block_for_small_buffer(self):
        requirement = BramRequirement("tiny", depth=512, width_bits=32)
        assert requirement.bram36_blocks() == 1

    def test_wide_buffer_needs_width_slices(self):
        requirement = BramRequirement("wide", depth=1024, width_bits=72)
        assert requirement.bram36_blocks() == 2

    def test_deep_buffer_needs_depth_slices(self):
        requirement = BramRequirement("deep", depth=4096, width_bits=36)
        assert requirement.bram36_blocks() == 4

    def test_copies_multiply(self):
        requirement = BramRequirement("copies", depth=512, width_bits=36, copies=3)
        assert requirement.bram36_blocks() == 3

    def test_line_buffer_helper(self):
        requirement = line_buffer_requirement("line", rows=480, row_bytes=8, copies=3)
        assert requirement.width_bits == 64
        assert requirement.copies == 3

    def test_total(self):
        reqs = [
            BramRequirement("a", 512, 36),
            BramRequirement("b", 2048, 36),
        ]
        assert total_bram36(reqs) == 3

    def test_invalid_dimensions(self):
        with pytest.raises(HardwareModelError):
            BramRequirement("bad", depth=0, width_bits=8)
