"""ClusterServer: process-sharded serving, bit-identical to sequential.

The serving parity matrix runs sequential extraction, the thread
:class:`~repro.serving.FrameServer` and the process
:class:`~repro.cluster.ClusterServer` across every registered engine pair
and both shard policies; the remaining classes pin down the transport,
back-pressure, crash surfacing and the SLAM / batch-runner wiring.
"""

import time

import numpy as np
import pytest

from repro.analysis import BatchRunner
from repro.cluster import (
    ClusterServer,
    LeastLoadedPolicy,
    SharedFrameRing,
    SharedResultRing,
    WorkerLoad,
    available_policies,
    create_policy,
)
from repro.config import ExtractorConfig, PyramidConfig, SlamConfig, TrackerConfig
from repro.dataset import SequenceSpec, make_sequence
from repro.errors import ReproError
from repro.features import OrbExtractor
from repro.image import GrayImage, random_blocks
from repro.serving import FrameServer, FrameServing, stable_frame_id
from repro.slam import SlamSystem


@pytest.fixture(scope="module")
def cluster_config():
    return ExtractorConfig(
        image_width=160,
        image_height=120,
        pyramid=PyramidConfig(num_levels=2),
        max_features=150,
    )


@pytest.fixture(scope="module")
def cluster_images():
    return [random_blocks(120, 160, block=9, seed=seed) for seed in range(5)]


def _feature_key(result):
    return result.feature_records()  # the repo-wide bit-identity key


class TestSharedFrameRing:
    def test_write_then_view_roundtrip(self, cluster_images):
        pixels = cluster_images[0].pixels
        with SharedFrameRing(num_slots=2, slot_bytes=pixels.size) as ring:
            slot = ring.acquire()
            height, width = ring.write(slot, pixels)
            from multiprocessing import shared_memory

            from repro.cluster.shared_ring import attach_slot_view

            shm = shared_memory.SharedMemory(name=ring.name)
            try:
                view = attach_slot_view(shm, slot, pixels.size, height, width)
                assert np.array_equal(view, pixels)
            finally:
                del view  # drop the buffer reference before closing the map
                shm.close()
            ring.release(slot)

    def test_backpressure_and_release(self):
        with SharedFrameRing(num_slots=2, slot_bytes=16) as ring:
            first = ring.acquire()
            second = ring.acquire()
            assert {first, second} == {0, 1}
            assert ring.in_flight() == 2
            assert ring.acquire(timeout=0.05) is None  # full: back-pressure
            ring.release(first)
            assert ring.acquire(timeout=0.05) == first

    def test_double_release_rejected(self):
        with SharedFrameRing(num_slots=1, slot_bytes=16) as ring:
            slot = ring.acquire()
            ring.release(slot)
            with pytest.raises(ReproError):
                ring.release(slot)

    def test_oversize_frame_rejected(self):
        with SharedFrameRing(num_slots=1, slot_bytes=4) as ring:
            slot = ring.acquire()
            with pytest.raises(ReproError):
                ring.write(slot, np.zeros((3, 3), dtype=np.uint8))
            ring.release(slot)


class TestServingParityMatrix:
    """sequential == FrameServer == ClusterServer, every engine x policy."""

    @pytest.fixture(scope="class")
    def sequential_by_engine(self, cluster_config, cluster_images):
        from dataclasses import replace

        results = {}
        for engine in ("reference", "vectorized", "hwexact"):
            config = replace(cluster_config, frontend=engine, backend=engine)
            extractor = OrbExtractor(config)
            results[engine] = [extractor.extract(image) for image in cluster_images]
        return results

    @pytest.mark.parametrize("engine", ["reference", "vectorized", "hwexact"])
    @pytest.mark.parametrize("policy", ["round_robin", "by_sequence"])
    def test_cluster_bit_identical_to_sequential(
        self, engine, policy, cluster_config, cluster_images, sequential_by_engine
    ):
        from dataclasses import replace

        config = replace(cluster_config, frontend=engine, backend=engine)
        sequential = sequential_by_engine[engine]
        shard_keys = (
            [index % 2 for index in range(len(cluster_images))]
            if policy == "by_sequence"
            else None
        )
        with ClusterServer(config, num_workers=2, policy=policy) as server:
            served = server.extract_many(cluster_images, shard_keys=shard_keys)
        assert len(served) == len(sequential)
        for seq_result, cluster_result in zip(sequential, served):
            assert _feature_key(seq_result) == _feature_key(cluster_result)
            assert vars(seq_result.profile) == vars(cluster_result.profile)

    @pytest.mark.parametrize("engine", ["reference", "vectorized", "hwexact"])
    def test_thread_server_agrees_with_cluster(
        self, engine, cluster_config, cluster_images, sequential_by_engine
    ):
        from dataclasses import replace

        config = replace(cluster_config, frontend=engine, backend=engine)
        with FrameServer(config=config, max_workers=2) as server:
            threaded = server.extract_many(cluster_images)
        for seq_result, thread_result in zip(sequential_by_engine[engine], threaded):
            assert _feature_key(seq_result) == _feature_key(thread_result)


class TestClusterServer:
    def test_satisfies_serving_protocol(self, cluster_config):
        with ClusterServer(cluster_config, num_workers=1) as server:
            assert isinstance(server, FrameServing)
            assert server.extractor_config == cluster_config

    def test_stats_and_bounded_in_flight(self, cluster_config, cluster_images):
        with ClusterServer(
            cluster_config, num_workers=2, max_in_flight=3
        ) as server:
            server.extract_many(cluster_images)
            stats = server.stats
        assert stats.frames_submitted == len(cluster_images)
        assert stats.frames_completed == len(cluster_images)
        assert stats.frames_failed == 0
        assert 1 <= stats.max_in_flight <= 3
        assert stats.queue_depth == 0
        assert stats.latency_p50_ms > 0.0
        assert stats.latency_p95_ms >= stats.latency_p50_ms
        assert stats.throughput_fps > 0.0
        per_worker = sum(worker.frames_completed for worker in stats.workers)
        assert per_worker == len(cluster_images)
        assert all(worker.queue_depth == 0 for worker in stats.workers)
        report = stats.as_dict()
        assert report["frames_completed"] == len(cluster_images)
        assert len(report["workers"]) == 2

    def test_round_robin_spreads_frames(self, cluster_config, cluster_images):
        with ClusterServer(cluster_config, num_workers=2) as server:
            server.extract_many(cluster_images[:4])
            counts = [worker.frames_completed for worker in server.stats.workers]
        assert counts == [2, 2]

    def test_by_sequence_pins_key_to_one_worker(self, cluster_config, cluster_images):
        with ClusterServer(
            cluster_config, num_workers=2, policy="by_sequence"
        ) as server:
            server.extract_many(cluster_images[:4], shard_keys=[1, 1, 1, 1])
            counts = [worker.frames_completed for worker in server.stats.workers]
        assert counts == [0, 4]

    def test_by_sequence_requires_shard_key(self, cluster_config, cluster_images):
        with ClusterServer(
            cluster_config, num_workers=2, policy="by_sequence"
        ) as server:
            with pytest.raises(ReproError):
                server.submit(cluster_images[0])

    def test_submit_after_close_rejected(self, cluster_config, cluster_images):
        server = ClusterServer(cluster_config, num_workers=1)
        server.close()
        with pytest.raises(ReproError):
            server.submit(cluster_images[0])

    def test_close_is_idempotent(self, cluster_config):
        server = ClusterServer(cluster_config, num_workers=1)
        server.close()
        server.close()

    def test_invalid_configuration_rejected(self, cluster_config):
        with pytest.raises(ReproError):
            ClusterServer(cluster_config, num_workers=0)
        with pytest.raises(ReproError):
            ClusterServer(cluster_config, num_workers=4, max_in_flight=2)
        with pytest.raises(ReproError) as excinfo:
            ClusterServer(cluster_config, policy="nope")
        for name in available_policies():
            assert name in str(excinfo.value)

    def test_oversize_frame_rejected_at_submit(self, cluster_config):
        big = GrayImage(np.zeros((240, 320), dtype=np.uint8))
        with ClusterServer(cluster_config, num_workers=1) as server:
            with pytest.raises(ReproError):
                server.submit(big)
            # the reserved slot was returned: serving still works afterwards
            small = GrayImage(np.zeros((120, 160), dtype=np.uint8))
            assert server.submit(small).result(timeout=30) is not None


class TestClusterCrash:
    def test_killed_worker_fails_its_frames_and_spares_others(
        self, cluster_config, cluster_images
    ):
        with ClusterServer(cluster_config, num_workers=2) as server:
            server.extract_many(cluster_images[:2])  # jobs 0, 1: warm both workers
            process = server._processes[0]
            process.kill()
            process.join()
            futures = [server.submit(image) for image in cluster_images[:2]]
            with pytest.raises(ReproError, match="died"):
                futures[0].result(timeout=30)  # job 2 -> dead worker 0
            assert len(futures[1].result(timeout=30).features) > 0  # worker 1 lives
            assert not server.stats.workers[0].alive
            assert server.stats.frames_failed >= 1

    def test_submit_to_dead_worker_rejected(self, cluster_config, cluster_images):
        with ClusterServer(cluster_config, num_workers=2) as server:
            server.kill_worker(0)
            with pytest.raises(ReproError, match="died"):
                # round-robin hits worker 0 within two submissions
                for image in cluster_images[:2]:
                    server.submit(image)

    def test_all_workers_dead_halts_serving(self, cluster_config, cluster_images):
        with ClusterServer(cluster_config, num_workers=2) as server:
            server.kill_worker(0)
            server.kill_worker(1)
            with pytest.raises(ReproError):
                server.extract_many(cluster_images[:2])


class TestClusterSlam:
    @pytest.fixture(scope="class")
    def slam_setup(self, cluster_config):
        config = SlamConfig(
            extractor=cluster_config,
            tracker=TrackerConfig(ransac_iterations=32, pose_iterations=6),
        )
        sequence = make_sequence(
            SequenceSpec(name="fr1/xyz", num_frames=5, image_width=160, image_height=120)
        )
        return config, sequence

    def test_pipelined_run_identical(self, slam_setup):
        config, sequence = slam_setup
        sequential = SlamSystem(config).run(sequence)
        with ClusterServer(config.extractor, num_workers=2) as server:
            served = SlamSystem(config).run(sequence, frame_server=server)
        assert served.num_frames == sequential.num_frames
        assert served.ate().mean_cm == sequential.ate().mean_cm
        for a, b in zip(sequential.frame_results, served.frame_results):
            assert a.num_matches == b.num_matches
            assert a.num_inliers == b.num_inliers
            assert np.array_equal(a.pose.rotation, b.pose.rotation)
            assert np.array_equal(a.pose.translation, b.pose.translation)

    def test_sequence_handle_pins_run_to_one_worker(self, slam_setup):
        config, sequence = slam_setup
        sequential = SlamSystem(config).run(sequence)
        with ClusterServer(
            config.extractor, num_workers=2, policy="by_sequence"
        ) as server:
            handle = server.sequence_handle(1)
            served = SlamSystem(config).run(sequence, frame_server=handle)
            counts = [worker.frames_completed for worker in server.stats.workers]
        assert served.ate().mean_cm == sequential.ate().mean_cm
        assert counts[0] == 0 and counts[1] == sequential.num_frames

    def test_mismatched_server_config_rejected(self, slam_setup):
        config, sequence = slam_setup
        other = ExtractorConfig(image_width=64, image_height=64)
        with ClusterServer(other, num_workers=1) as server:
            with pytest.raises(ReproError):
                SlamSystem(config).run(sequence, frame_server=server)


class TestMultiprocessBatchRunner:
    def test_multiprocess_sweep_identical_to_sequential(self, cluster_config):
        config = SlamConfig(
            extractor=cluster_config,
            tracker=TrackerConfig(ransac_iterations=32, pose_iterations=6),
        )
        specs = [
            SequenceSpec(name=name, num_frames=3, image_width=160, image_height=120)
            for name in ("fr1/xyz", "fr1/desk", "fr2/rpy")
        ]
        sequential = BatchRunner(config=config)
        sharded = BatchRunner(config=config)
        seq_records = sequential.run_all(specs)
        mp_records = sharded.run_all_multiprocess(specs, num_workers=2)
        assert mp_records == seq_records
        assert sharded.records == sequential.records  # appended in spec order

    def test_invalid_worker_count_rejected(self, cluster_config):
        runner = BatchRunner(config=SlamConfig(extractor=cluster_config))
        with pytest.raises(ReproError):
            runner.run_all_multiprocess([], num_workers=0)

    def test_mismatched_resolution_fails_fast(self, cluster_config):
        runner = BatchRunner(config=SlamConfig(extractor=cluster_config))
        bad = [SequenceSpec(name="fr1/xyz", num_frames=2, image_width=64, image_height=64)]
        with pytest.raises(ReproError):
            runner.run_all_multiprocess(bad, num_workers=1)


class TestConditionVariableBackPressure:
    """The ring's free pool is a condition variable, not a poll loop."""

    def test_blocked_acquire_wakes_on_release(self):
        import threading

        with SharedFrameRing(num_slots=1, slot_bytes=16) as ring:
            slot = ring.acquire()
            woken = []
            waiter = threading.Thread(
                target=lambda: woken.append(ring.acquire(timeout=5.0))
            )
            waiter.start()
            time.sleep(0.05)  # let the waiter park on the condition variable
            ring.release(slot)
            waiter.join(timeout=1.0)  # a notify wake, not a poll tick
            assert not waiter.is_alive()
            assert woken == [slot]

    def test_blocked_acquire_raises_on_close(self):
        import threading

        ring = SharedFrameRing(num_slots=1, slot_bytes=16)
        ring.acquire()
        errors = []

        def wait_for_slot():
            try:
                ring.acquire(timeout=5.0)
            except ReproError as error:
                errors.append(error)

        waiter = threading.Thread(target=wait_for_slot)
        waiter.start()
        time.sleep(0.05)
        ring.close()  # waiters must be released immediately, not time out
        waiter.join(timeout=1.0)
        assert not waiter.is_alive()
        assert len(errors) == 1


def _make_loads(*specs):
    """WorkerLoad list from (queue_depth, ewma_latency_s, alive) triples."""
    return [
        WorkerLoad(worker_id=index, queue_depth=depth, ewma_latency_s=ewma, alive=alive)
        for index, (depth, ewma, alive) in enumerate(specs)
    ]


class TestLeastLoadedPolicy:
    def test_registered_in_policy_registry(self):
        assert "least_loaded" in available_policies()
        assert isinstance(create_policy("least_loaded"), LeastLoadedPolicy)

    def test_picks_shallowest_queue(self):
        policy = LeastLoadedPolicy()
        loads = _make_loads((5, 0.01, True), (1, 0.01, True), (3, 0.01, True))
        assert policy.route(0, None, 3, loads=loads) == 1

    def test_routes_around_stalled_worker(self):
        # a stalled worker keeps its backlog (deep queue, climbing EWMA);
        # the policy must send new frames to the responsive one
        policy = LeastLoadedPolicy()
        loads = _make_loads((6, 2.5, True), (0, 0.01, True))
        assert policy.route(0, None, 2, loads=loads) == 1

    def test_skips_dead_workers(self):
        policy = LeastLoadedPolicy()
        loads = _make_loads((0, 0.0, False), (4, 0.1, True))
        assert policy.route(0, None, 2, loads=loads) == 1

    def test_tie_breaks_by_latency_then_worker_id(self):
        policy = LeastLoadedPolicy()
        by_latency = _make_loads((2, 0.5, True), (2, 0.1, True))
        assert policy.route(0, None, 2, loads=by_latency) == 1
        by_id = _make_loads((2, 0.1, True), (2, 0.1, True))
        assert policy.route(0, None, 2, loads=by_id) == 0

    def test_no_load_view_falls_back_to_round_robin(self):
        policy = LeastLoadedPolicy()
        assert policy.route(7, None, 3, loads=None) == 1

    def test_no_alive_worker_raises(self):
        policy = LeastLoadedPolicy()
        with pytest.raises(ReproError):
            policy.route(0, None, 2, loads=_make_loads((0, 0.0, False), (0, 0.0, False)))

    def test_server_routes_around_killed_worker(self, cluster_config, cluster_images):
        with ClusterServer(cluster_config, num_workers=2, policy="least_loaded") as server:
            server.kill_worker(0)
            served = server.extract_many(cluster_images)
            counts = [worker.frames_completed for worker in server.stats.workers]
        assert len(served) == len(cluster_images)
        assert counts[0] == 0 and counts[1] == len(cluster_images)


class TestWorkStealing:
    @pytest.mark.parametrize("engine", ["reference", "vectorized", "hwexact"])
    def test_stealing_bit_exact_across_engines(
        self, engine, cluster_config, cluster_images
    ):
        """Stealing moves where a job runs, never what it computes."""
        from dataclasses import replace

        config = replace(cluster_config, frontend=engine, backend=engine)
        extractor = OrbExtractor(config)
        sequential = [extractor.extract(image) for image in cluster_images] * 3
        images = cluster_images * 3
        # by_sequence pins every frame to one worker: without stealing the
        # other worker would idle while a backlog builds
        shard_keys = [1] * len(images)
        with ClusterServer(
            config,
            num_workers=2,
            policy="by_sequence",
            max_in_flight=8,
            work_stealing=True,
        ) as server:
            served = server.extract_many(images, shard_keys=shard_keys)
            steals = server.stats.steals
            counts = [worker.frames_completed for worker in server.stats.workers]
        assert steals > 0
        assert min(counts) > 0  # the idle worker drained the hot backlog
        assert sum(counts) == len(images)
        for seq_result, cluster_result in zip(sequential, served):
            assert _feature_key(seq_result) == _feature_key(cluster_result)
            assert vars(seq_result.profile) == vars(cluster_result.profile)

    def test_stealing_off_by_default_preserves_affinity(
        self, cluster_config, cluster_images
    ):
        with ClusterServer(cluster_config, num_workers=2, policy="by_sequence") as server:
            shard_key = 0
            target = server.policy.route(0, shard_key, 2)
            server.extract_many(cluster_images, shard_keys=[shard_key] * len(cluster_images))
            counts = [worker.frames_completed for worker in server.stats.workers]
            steals = server.stats.steals
        assert steals == 0
        assert counts[target] == len(cluster_images)
        assert counts[1 - target] == 0

    def test_steal_counters_in_stats_dict(self, cluster_config, cluster_images):
        with ClusterServer(
            cluster_config, num_workers=2, work_stealing=True, max_in_flight=8
        ) as server:
            server.extract_many(cluster_images * 2)
            stats = server.stats.as_dict()
        assert "steals" in stats
        assert stats["steals"] == sum(worker["steals"] for worker in stats["workers"])
        for worker in stats["workers"]:
            assert "ewma_latency_ms" in worker and worker["ewma_latency_ms"] > 0.0


class TestZeroCopyFastPath:
    @pytest.fixture(scope="class")
    def shared_config(self, cluster_config):
        from dataclasses import replace

        return replace(
            cluster_config, pyramid=PyramidConfig(num_levels=2, provider="shared")
        )

    def test_zero_copy_skips_ring_entirely(
        self, shared_config, cluster_config, cluster_images
    ):
        extractor = OrbExtractor(cluster_config)
        sequential = [extractor.extract(image) for image in cluster_images]
        with ClusterServer(shared_config, num_workers=2) as server:
            served = server.extract_many(cluster_images)
            stats = server.stats.as_dict()
            cache_stats = server.pyramid_cache_stats()
        assert stats["frames_zero_copy"] == len(cluster_images)
        assert stats["frames_via_ring"] == 0
        assert stats["ring_bytes_copied"] == 0  # no frame bytes copied at all
        assert stats["publish_fallbacks"] == 0
        assert cache_stats["zero_copy_frames"] == len(cluster_images)
        assert cache_stats["local_builds"] == 0
        for seq_result, cluster_result in zip(sequential, served):
            assert _feature_key(seq_result) == _feature_key(cluster_result)

    def test_falls_back_to_ring_when_cache_full(self, shared_config, cluster_images):
        with ClusterServer(shared_config, num_workers=1, max_in_flight=2) as server:
            cache = server._pyramid_cache
            # lease every cache slot so publish cannot find a free or
            # evictable slot: the zero-copy path must fall back to the ring
            pixels = cluster_images[0].pixels
            leases = []
            for filler_key in (900001, 900002):
                assert cache.publish(filler_key, pixels)
                leases.append(cache.attach(filler_key))
            try:
                result = server.submit(cluster_images[1]).result()
                stats = server.stats.as_dict()
                cache_stats = server.pyramid_cache_stats()
            finally:
                for lease in leases:
                    lease.close()
        assert stats["frames_zero_copy"] == 0
        assert stats["frames_via_ring"] == 1
        assert stats["publish_fallbacks"] == 1
        assert stats["ring_bytes_copied"] == pixels.size
        assert cache_stats["ring_fallback_frames"] == 1
        assert len(result.features) > 0

    def test_repeated_frame_id_publishes_once(self, shared_config, cluster_images):
        with ClusterServer(shared_config, num_workers=2, max_in_flight=4) as server:
            futures = [
                server.submit(cluster_images[0], frame_id=7777) for _ in range(4)
            ]
            results = [future.result() for future in futures]
            cache_stats = server.pyramid_cache_stats()
        assert cache_stats["publishes"] == 1  # one build serves all four
        assert cache_stats["hits"] == 4
        assert cache_stats["zero_copy_frames"] == 4
        first_key = _feature_key(results[0])
        assert all(_feature_key(result) == first_key for result in results[1:])

    def test_negative_frame_id_rejected(self, cluster_config, cluster_images):
        with ClusterServer(cluster_config, num_workers=1) as server:
            with pytest.raises(ReproError):
                server.submit(cluster_images[0], frame_id=-1)


class TestSharedResultRing:
    def test_claim_write_free_cycle(self):
        with SharedResultRing(2, 3, slot_bytes=64) as ring:
            slot = ring.try_claim(1)
            assert slot is not None and 3 <= slot < 6  # inside range 1
            view = ring.slot_view(slot)
            view[:4] = [1, 2, 3, 4]
            assert ring.in_use() == 1
            ring.free(slot)
            assert ring.in_use() == 0

    def test_exhausted_range_returns_none_not_blocks(self):
        with SharedResultRing(2, 2, slot_bytes=8) as ring:
            assert ring.try_claim(0) is not None
            assert ring.try_claim(0) is not None
            assert ring.try_claim(0) is None  # own range full
            assert ring.try_claim(1) is not None  # other range unaffected

    def test_reclaim_range_frees_only_the_dead_workers_slots(self):
        with SharedResultRing(2, 2, slot_bytes=8) as ring:
            ring.try_claim(0)
            survivor = ring.try_claim(1)
            assert ring.reclaim_range(0) == 1
            assert ring.in_use() == 1  # the survivor's slot is untouched
            ring.free(survivor)

    def test_attach_sees_owner_claims(self):
        with SharedResultRing(1, 2, slot_bytes=32) as ring:
            attached = SharedResultRing.attach(ring.handle())
            slot = attached.try_claim(0)
            attached.slot_view(slot)[:3] = [7, 8, 9]
            assert ring.in_use() == 1
            assert list(ring.slot_view(slot)[:3]) == [7, 8, 9]
            attached.close()

    def test_rejects_bad_geometry_and_ranges(self):
        with pytest.raises(ReproError):
            SharedResultRing(0, 1, slot_bytes=8)
        with SharedResultRing(1, 1, slot_bytes=8) as ring:
            with pytest.raises(ReproError):
                ring.try_claim(5)
            with pytest.raises(ReproError):
                ring.free(99)


class TestResultTransport:
    def test_ring_transport_counts_zero_copy_results(
        self, cluster_config, cluster_images
    ):
        with ClusterServer(cluster_config, num_workers=2) as server:
            expected = [
                OrbExtractor(cluster_config).extract(image)
                for image in cluster_images
            ]
            served = server.extract_many(cluster_images)
            report = server.stats.as_dict()
        for seq_result, cluster_result in zip(expected, served):
            assert _feature_key(seq_result) == _feature_key(cluster_result)
        assert report["results_zero_copy"] == len(cluster_images)
        assert report["results_via_pickle"] == 0
        assert report["result_bytes_saved"] > 0
        assert report["leaked_slots"] == 0

    def test_pickle_transport_is_bit_identical(self, cluster_config, cluster_images):
        with ClusterServer(
            cluster_config, num_workers=2, result_transport="pickle"
        ) as server:
            expected = [
                OrbExtractor(cluster_config).extract(image)
                for image in cluster_images
            ]
            served = server.extract_many(cluster_images)
            report = server.stats.as_dict()
        for seq_result, cluster_result in zip(expected, served):
            assert _feature_key(seq_result) == _feature_key(cluster_result)
        assert report["results_zero_copy"] == 0
        assert report["results_via_pickle"] == len(cluster_images)
        assert report["result_bytes_saved"] == 0

    def test_result_batch_of_one_flushes_every_result(
        self, cluster_config, cluster_images
    ):
        with ClusterServer(cluster_config, num_workers=1, result_batch=1) as server:
            served = server.extract_many(cluster_images)
            report = server.stats.as_dict()
        assert len(served) == len(cluster_images)
        assert report["results_zero_copy"] == len(cluster_images)

    def test_invalid_transport_knobs_rejected(self, cluster_config):
        with pytest.raises(ReproError, match="result_transport"):
            ClusterServer(cluster_config, result_transport="carrier_pigeon")
        with pytest.raises(ReproError, match="result_batch"):
            ClusterServer(cluster_config, result_batch=0)
        with pytest.raises(ReproError, match="pyramid_retention_s"):
            ClusterServer(cluster_config, pyramid_retention_s=-1.0)


class TestStableFrameIds:
    def test_stable_and_collision_resistant(self):
        base = stable_frame_id("fr1/xyz", 3)
        assert base == stable_frame_id("fr1/xyz", 3)  # deterministic
        assert base >= 0
        assert stable_frame_id("fr1/xyz", 4) == base + 1  # index in low bits
        assert stable_frame_id("fr1/desk", 3) != base  # sequences separated
        with pytest.raises(ReproError):
            stable_frame_id("fr1/xyz", -1)

    def test_n_engine_comparison_builds_each_pyramid_once(self, cluster_config):
        """Two engines over one sequence attach to ONE cached pyramid each
        frame (stable ids), instead of building per engine."""
        from dataclasses import replace

        from repro.pyramid import SharedPyramidCache

        num_frames = 3
        shared_cfg = replace(
            cluster_config, pyramid=PyramidConfig(num_levels=2, provider="shared")
        )
        spec = SequenceSpec(
            name="fr1/xyz", num_frames=num_frames, image_width=160, image_height=120
        )
        cache = SharedPyramidCache.create(shared_cfg, num_slots=num_frames + 1)
        try:
            records = []
            for engine in ("reference", "vectorized"):
                config = SlamConfig(
                    extractor=replace(shared_cfg, frontend=engine, backend=engine),
                    tracker=TrackerConfig(ransac_iterations=32, pose_iterations=6),
                )
                runner = BatchRunner(config=config, pyramid_cache=cache)
                with FrameServer(extractor=runner.extractor, max_workers=2) as server:
                    records.append(runner.run_sequence(spec, frame_server=server))
            stats = cache.stats()
        finally:
            cache.close()
        assert stats["publishes"] == num_frames  # built once, not per engine
        assert stats["local_builds"] == 0
        assert stats["hits"] >= 2 * num_frames  # both engines attached each frame
        assert records[0].ate_mean_cm == records[1].ate_mean_cm
