"""Tests for the Harris response and non-maximum suppression."""

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.features import (
    harris_response_map,
    harris_scores_at,
    non_maximum_suppression,
    suppress_keypoints,
)
from repro.image import GrayImage, isolated_corner


class TestHarris:
    def test_flat_image_zero_response(self, flat_image):
        response = harris_response_map(flat_image)
        assert np.abs(response).max() == pytest.approx(0.0)

    def test_corner_scores_higher_than_edge(self):
        image = isolated_corner(64, 64, corner_xy=(32, 32))
        response = harris_response_map(image)
        corner_score = response[30:35, 30:35].max()
        edge_score = response[10, 32]  # on the vertical edge far from the corner
        assert corner_score > edge_score

    def test_edges_have_negative_or_small_response(self):
        pixels = np.zeros((64, 64), dtype=np.uint8)
        pixels[:, 32:] = 200  # pure vertical edge, no corners
        response = harris_response_map(GrayImage(pixels))
        interior = response[10:-10, 10:-10]
        assert interior.max() <= 0 + 1e-6

    def test_scores_at_points(self, blocks_image):
        points = [(20, 30), (40, 50)]
        scores = harris_scores_at(blocks_image, points)
        response = harris_response_map(blocks_image)
        assert scores[0] == pytest.approx(response[30, 20])
        assert scores[1] == pytest.approx(response[50, 40])

    def test_scores_at_rejects_outside(self, blocks_image):
        with pytest.raises(FeatureError):
            harris_scores_at(blocks_image, [(1000, 10)])

    def test_block_radius_must_be_positive(self, blocks_image):
        with pytest.raises(FeatureError):
            harris_response_map(blocks_image, block_radius=0)


class TestNonMaximumSuppression:
    def test_single_maximum_survives(self):
        corner = np.zeros((9, 9), dtype=bool)
        scores = np.zeros((9, 9))
        corner[4, 4] = corner[4, 5] = True
        scores[4, 4] = 10.0
        scores[4, 5] = 5.0
        keep = non_maximum_suppression(corner, scores)
        assert keep[4, 4]
        assert not keep[4, 5]

    def test_distant_corners_both_survive(self):
        corner = np.zeros((12, 12), dtype=bool)
        scores = np.zeros((12, 12))
        for x in (2, 9):
            corner[5, x] = True
            scores[5, x] = 7.0
        keep = non_maximum_suppression(corner, scores)
        assert keep[5, 2] and keep[5, 9]

    def test_ties_keep_exactly_one(self):
        corner = np.zeros((8, 8), dtype=bool)
        scores = np.zeros((8, 8))
        corner[3, 3] = corner[3, 4] = True
        scores[3, 3] = scores[3, 4] = 5.0
        keep = non_maximum_suppression(corner, scores)
        assert keep.sum() == 1
        assert keep[3, 3]  # raster-first wins the tie

    def test_shape_mismatch_rejected(self):
        with pytest.raises(FeatureError):
            non_maximum_suppression(np.zeros((4, 4), dtype=bool), np.zeros((5, 5)))

    def test_radius_must_be_positive(self):
        with pytest.raises(FeatureError):
            non_maximum_suppression(np.zeros((4, 4), dtype=bool), np.zeros((4, 4)), radius=0)

    def test_no_corners_in_suppressed_neighbourhoods(self, blocks_image):
        from repro.features import fast_corner_mask, harris_response_map

        corners = fast_corner_mask(blocks_image)
        scores = harris_response_map(blocks_image)
        keep = non_maximum_suppression(corners, scores)
        ys, xs = np.nonzero(keep)
        coords = set(zip(xs.tolist(), ys.tolist()))
        for x, y in coords:
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    if (dx, dy) == (0, 0):
                        continue
                    assert (x + dx, y + dy) not in coords


class TestSparseSuppression:
    def test_indices_of_survivors(self):
        points = [(5, 5), (6, 5), (20, 20)]
        scores = [3.0, 9.0, 1.0]
        kept = suppress_keypoints(points, scores, shape=(32, 32))
        assert kept == [1, 2]

    def test_length_mismatch(self):
        with pytest.raises(FeatureError):
            suppress_keypoints([(1, 1)], [1.0, 2.0], shape=(8, 8))

    def test_out_of_bounds_point(self):
        with pytest.raises(FeatureError):
            suppress_keypoints([(100, 1)], [1.0], shape=(8, 8))
