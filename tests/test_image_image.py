"""Tests for the GrayImage container and integral-image helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ImageError
from repro.image import GrayImage, box_sum, circular_mask, integral_image


class TestConstruction:
    def test_from_uint8_preserves_values(self):
        data = np.arange(12, dtype=np.uint8).reshape(3, 4)
        image = GrayImage(data)
        assert image.shape == (3, 4)
        assert np.array_equal(image.pixels, data)

    def test_from_unit_float_rescales(self):
        data = np.array([[0.0, 0.5], [1.0, 0.25]])
        image = GrayImage(data)
        assert image.pixels[0, 1] == 128
        assert image.pixels[1, 0] == 255

    def test_from_large_int_clips(self):
        data = np.array([[300, -5], [100, 255]])
        image = GrayImage(data)
        assert image.pixels[0, 0] == 255
        assert image.pixels[0, 1] == 0

    def test_rejects_wrong_dimensionality(self):
        with pytest.raises(ImageError):
            GrayImage(np.zeros((2, 2, 3)))

    def test_rejects_empty(self):
        with pytest.raises(ImageError):
            GrayImage(np.zeros((0, 4)))

    def test_zeros_and_full(self):
        assert GrayImage.zeros(4, 5).num_pixels == 20
        assert int(GrayImage.full(2, 2, 7).pixels.max()) == 7

    def test_zeros_rejects_nonpositive(self):
        with pytest.raises(ImageError):
            GrayImage.zeros(0, 5)


class TestAccessors:
    def test_intensity(self, blocks_image):
        value = blocks_image.intensity(5, 7)
        assert value == int(blocks_image.pixels[7, 5])

    def test_intensity_out_of_bounds(self, blocks_image):
        with pytest.raises(ImageError):
            blocks_image.intensity(blocks_image.width, 0)

    def test_contains_with_border(self):
        image = GrayImage.zeros(10, 10)
        assert image.contains(5, 5, border=3)
        assert not image.contains(2, 5, border=3)
        assert not image.contains(5, 8, border=3)

    def test_patch_shape_and_content(self, blocks_image):
        patch = blocks_image.patch(20, 30, 3)
        assert patch.shape == (7, 7)
        assert patch[3, 3] == blocks_image.pixels[30, 20]

    def test_patch_out_of_bounds(self, blocks_image):
        with pytest.raises(ImageError):
            blocks_image.patch(1, 1, 5)

    def test_equality_and_copy(self, blocks_image):
        clone = blocks_image.copy()
        assert clone == blocks_image
        assert clone is not blocks_image

    def test_iter_rows_matches_pixels(self):
        image = GrayImage(np.arange(6, dtype=np.uint8).reshape(2, 3))
        rows = list(image.iter_rows())
        assert len(rows) == 2
        assert np.array_equal(rows[1], np.array([3, 4, 5], dtype=np.uint8))


class TestCircularMask:
    def test_shape(self):
        mask = circular_mask(3)
        assert mask.shape == (7, 7)

    def test_center_and_corners(self):
        mask = circular_mask(3)
        assert mask[3, 3]
        assert not mask[0, 0]

    def test_radius_zero(self):
        mask = circular_mask(0)
        assert mask.shape == (1, 1)
        assert mask[0, 0]

    def test_negative_radius_rejected(self):
        with pytest.raises(ImageError):
            circular_mask(-1)

    def test_symmetry(self):
        mask = circular_mask(5)
        assert np.array_equal(mask, mask.T)
        assert np.array_equal(mask, mask[::-1, ::-1])


class TestIntegralImage:
    def test_total_sum(self, blocks_image):
        integral = integral_image(blocks_image)
        assert integral[-1, -1] == blocks_image.pixels.astype(np.int64).sum()

    def test_box_sum_matches_direct(self, blocks_image):
        integral = integral_image(blocks_image)
        direct = int(blocks_image.pixels[10:21, 5:16].astype(np.int64).sum())
        assert box_sum(integral, 5, 10, 15, 20) == direct

    def test_box_sum_single_pixel(self, blocks_image):
        integral = integral_image(blocks_image)
        assert box_sum(integral, 3, 4, 3, 4) == int(blocks_image.pixels[4, 3])

    def test_box_sum_rejects_inverted(self, blocks_image):
        integral = integral_image(blocks_image)
        with pytest.raises(ImageError):
            box_sum(integral, 5, 5, 4, 6)

    @settings(max_examples=25, deadline=None)
    @given(
        x0=st.integers(0, 20),
        y0=st.integers(0, 20),
        dx=st.integers(0, 20),
        dy=st.integers(0, 20),
    )
    def test_box_sum_property(self, x0, y0, dx, dy):
        rng = np.random.default_rng(x0 * 1000 + y0 * 100 + dx * 10 + dy)
        pixels = rng.integers(0, 256, size=(48, 48), dtype=np.uint8)
        image = GrayImage(pixels)
        integral = integral_image(image)
        x1, y1 = x0 + dx, y0 + dy
        expected = int(pixels[y0 : y1 + 1, x0 : x1 + 1].astype(np.int64).sum())
        assert box_sum(integral, x0, y0, x1, y1) == expected
