"""Tests for descriptor computation: RS-BRIEF and original ORB engines."""

import numpy as np
import pytest

from repro.config import DescriptorConfig
from repro.errors import DescriptorError, FeatureError
from repro.features import (
    Keypoint,
    OriginalOrbDescriptorEngine,
    RsBriefDescriptorEngine,
    descriptor_rotation_equivalence_error,
    evaluate_pattern,
    make_descriptor_engine,
    pack_bits,
    rs_brief_pattern,
    unpack_bits,
)
from repro.image import GrayImage, gaussian_blur, random_blocks, rotate_image
from repro.matching import hamming_distance


@pytest.fixture(scope="module")
def smoothed_image():
    return gaussian_blur(random_blocks(96, 96, block=7, seed=13))


def _oriented_keypoint(x=48, y=48, orientation_bin=0, orientation_rad=0.0):
    return Keypoint(x=x, y=y, score=1.0).with_orientation(orientation_bin, orientation_rad)


class TestPackUnpack:
    def test_roundtrip(self):
        bits = (np.arange(256) % 2).astype(np.uint8)
        assert np.array_equal(unpack_bits(pack_bits(bits)), bits)

    def test_packed_length(self):
        assert pack_bits(np.zeros(256, dtype=np.uint8)).size == 32

    def test_rejects_non_multiple_of_eight(self):
        with pytest.raises(DescriptorError):
            pack_bits(np.zeros(10, dtype=np.uint8))


class TestEvaluatePattern:
    def test_bit_semantics(self, smoothed_image):
        pattern = rs_brief_pattern()
        bits = evaluate_pattern(smoothed_image, 48, 48, pattern)
        s_int, d_int = pattern.rounded()
        for i in (0, 10, 100, 255):
            s_val = smoothed_image.pixels[48 + s_int[i, 1], 48 + s_int[i, 0]]
            d_val = smoothed_image.pixels[48 + d_int[i, 1], 48 + d_int[i, 0]]
            assert bits[i] == (1 if s_val > d_val else 0)

    def test_rejects_keypoint_near_border(self, smoothed_image):
        pattern = rs_brief_pattern()
        with pytest.raises(FeatureError):
            evaluate_pattern(smoothed_image, 3, 3, pattern)


class TestRsBriefEngine:
    def test_descriptor_is_32_bytes(self, smoothed_image):
        engine = RsBriefDescriptorEngine()
        descriptor = engine.describe(smoothed_image, _oriented_keypoint())
        assert descriptor.shape == (32,)
        assert descriptor.dtype == np.uint8

    def test_orientation_zero_equals_raw_pattern(self, smoothed_image):
        engine = RsBriefDescriptorEngine()
        raw_bits = evaluate_pattern(smoothed_image, 48, 48, engine.pattern)
        descriptor = engine.describe(smoothed_image, _oriented_keypoint(orientation_bin=0))
        assert np.array_equal(descriptor, pack_bits(raw_bits))

    def test_orientation_shift_applied(self, smoothed_image):
        engine = RsBriefDescriptorEngine()
        at_zero = engine.describe(smoothed_image, _oriented_keypoint(orientation_bin=0))
        at_five = engine.describe(smoothed_image, _oriented_keypoint(orientation_bin=5))
        assert np.array_equal(np.roll(at_zero, -5), at_five)

    def test_requires_orientation(self, smoothed_image):
        engine = RsBriefDescriptorEngine()
        with pytest.raises(FeatureError):
            engine.describe(smoothed_image, Keypoint(x=48, y=48, score=1.0))

    def test_shift_equals_true_pattern_rotation(self, smoothed_image):
        """Core RS-BRIEF claim: shifting the descriptor == rotating the pattern."""
        for orientation_bin in (0, 3, 8, 16, 27):
            keypoint = _oriented_keypoint(
                orientation_bin=orientation_bin,
                orientation_rad=orientation_bin * 2 * np.pi / 32,
            )
            mismatched_bits = descriptor_rotation_equivalence_error(
                smoothed_image, keypoint
            )
            # rounding of rotated test locations may flip a few low-margin tests
            assert mismatched_bits <= 24

    def test_rotation_invariance_on_rotated_image(self):
        """Descriptors of the same feature should stay close under image rotation."""
        base = gaussian_blur(random_blocks(129, 129, block=9, seed=21))
        engine = RsBriefDescriptorEngine()
        from repro.features import compute_orientation

        center = 64
        bin0, rad0 = compute_orientation(base, center, center)
        keypoint0 = Keypoint(center, center, 1.0).with_orientation(bin0, rad0)
        descriptor0 = engine.describe(base, keypoint0)
        # rotate the image by exactly 4 bins (45 degrees)
        rotated = rotate_image(base, 4 * 2 * np.pi / 32, fill=128)
        bin1, rad1 = compute_orientation(rotated, center, center)
        keypoint1 = Keypoint(center, center, 1.0).with_orientation(bin1, rad1)
        descriptor1 = engine.describe(rotated, keypoint1)
        distance = hamming_distance(descriptor0, descriptor1)
        # unrelated descriptors average ~128 bits; the rotated feature must be
        # far more similar than chance
        assert distance < 80


class TestOriginalOrbEngine:
    def test_descriptor_is_32_bytes(self, smoothed_image):
        engine = OriginalOrbDescriptorEngine()
        descriptor = engine.describe(
            smoothed_image, _oriented_keypoint(orientation_rad=0.3)
        )
        assert descriptor.shape == (32,)

    def test_different_orientations_change_descriptor(self, smoothed_image):
        engine = OriginalOrbDescriptorEngine()
        a = engine.describe(smoothed_image, _oriented_keypoint(orientation_rad=0.0))
        b = engine.describe(smoothed_image, _oriented_keypoint(orientation_rad=1.2))
        assert hamming_distance(a, b) > 0

    def test_requires_orientation(self, smoothed_image):
        engine = OriginalOrbDescriptorEngine()
        with pytest.raises(FeatureError):
            engine.describe(smoothed_image, Keypoint(x=48, y=48, score=1.0))


class TestFactory:
    def test_factory_selects_engine(self):
        assert isinstance(make_descriptor_engine(True), RsBriefDescriptorEngine)
        assert isinstance(make_descriptor_engine(False), OriginalOrbDescriptorEngine)

    def test_factory_respects_config(self):
        config = DescriptorConfig(num_bits=128, seed_pairs=4, symmetry=32)
        engine = make_descriptor_engine(True, config)
        assert engine.config.num_bits == 128
