"""Shared fixtures for the test suite.

Heavyweight objects (rendered sequences, extraction results) are produced at
reduced resolution and cached at session scope so the whole suite stays fast
while still exercising the real code paths end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    ExtractorConfig,
    FastConfig,
    PyramidConfig,
    SlamConfig,
    TrackerConfig,
)
from repro.dataset import SequenceSpec, make_sequence
from repro.features import OrbExtractor
from repro.geometry import PinholeCamera, Pose, so3_exp
from repro.image import GrayImage, random_blocks


# ---------------------------------------------------------------------------
# images
# ---------------------------------------------------------------------------
@pytest.fixture(scope="session")
def blocks_image() -> GrayImage:
    """A 120x160 blocky random texture with plenty of FAST corners."""
    return random_blocks(120, 160, block=10, seed=1)


@pytest.fixture(scope="session")
def large_blocks_image() -> GrayImage:
    """A 240x320 blocky texture for pyramid / extractor tests."""
    return random_blocks(240, 320, block=12, seed=2)


@pytest.fixture(scope="session")
def flat_image() -> GrayImage:
    """A constant image: no corners anywhere."""
    return GrayImage.full(64, 64, 128)


# ---------------------------------------------------------------------------
# extractor configurations and results
# ---------------------------------------------------------------------------
@pytest.fixture(scope="session")
def small_extractor_config() -> ExtractorConfig:
    """Extractor configuration sized for the 120x160 test image."""
    return ExtractorConfig(
        image_width=160,
        image_height=120,
        pyramid=PyramidConfig(num_levels=2),
        fast=FastConfig(threshold=20),
        max_features=200,
    )


@pytest.fixture(scope="session")
def extraction_result(blocks_image, small_extractor_config):
    """Features extracted once from the blocks image (reused by many tests)."""
    return OrbExtractor(small_extractor_config).extract(blocks_image)


# ---------------------------------------------------------------------------
# cameras and poses
# ---------------------------------------------------------------------------
@pytest.fixture(scope="session")
def camera() -> PinholeCamera:
    return PinholeCamera.tum_freiburg1()


@pytest.fixture(scope="session")
def small_camera() -> PinholeCamera:
    """TUM fr1 intrinsics scaled to 160x120."""
    return PinholeCamera.tum_freiburg1().scaled(0.25)


@pytest.fixture()
def example_pose() -> Pose:
    return Pose(so3_exp(np.array([0.05, -0.02, 0.1])), np.array([0.1, -0.2, 0.05]))


# ---------------------------------------------------------------------------
# sequences and SLAM configurations
# ---------------------------------------------------------------------------
@pytest.fixture(scope="session")
def tiny_sequence():
    """A 5-frame fr1/xyz-style sequence at 160x120 (fast enough for CI)."""
    return make_sequence(
        SequenceSpec(name="fr1/xyz", num_frames=5, image_width=160, image_height=120)
    )


@pytest.fixture(scope="session")
def tiny_slam_config() -> SlamConfig:
    return SlamConfig(
        extractor=ExtractorConfig(
            image_width=160,
            image_height=120,
            pyramid=PyramidConfig(num_levels=2),
            max_features=250,
        ),
        tracker=TrackerConfig(ransac_iterations=48, pose_iterations=8),
    )


@pytest.fixture(scope="session")
def tiny_slam_result(tiny_sequence, tiny_slam_config):
    """A full SLAM run over the tiny sequence, shared across tests."""
    from repro.slam import run_slam

    return run_slam(tiny_sequence, tiny_slam_config)
