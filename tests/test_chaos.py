"""Chaos matrix: the cluster serves bit-identical results through faults.

Every scenario here drives a :class:`~repro.cluster.ClusterServer` through
seeded faults — worker kills, stalls, publish failures, overload — and
asserts the robustness contract from ``docs/serving.md``: every submitted
frame either completes **bit-identical to sequential extraction, in
submission order**, or fails with a *structured* error carrying its
attempt history; no submission hangs; and after the storm the transport
audit shows **zero leaked slots** and the pool is back inside its bounds.

The host may have a single core, so the assertions are about correctness
and counters, never about timing or throughput.
"""

import os
import signal
import time
from dataclasses import replace

import pytest

from repro.chaos import FAULT_KINDS, FaultEvent, FaultPlan
from repro.cluster import (
    ClusterServer,
    ElasticityConfig,
    JobFailed,
    SupervisorConfig,
)
from repro.config import ExtractorConfig, PyramidConfig
from repro.errors import ReproError
from repro.features import OrbExtractor
from repro.image import random_blocks
from repro.serving import local_extraction_config

ENGINES = ("reference", "vectorized", "hwexact")

#: Fast supervision for tests: immediate-ish restarts, short control ticks.
FAST_SUPERVISION = SupervisorConfig(
    restart_backoff_s=0.02, restart_backoff_max_s=0.2, heartbeat_timeout_s=30.0
)


@pytest.fixture(scope="module")
def chaos_config():
    return ExtractorConfig(
        image_width=160,
        image_height=120,
        pyramid=PyramidConfig(num_levels=2, provider="shared"),
        max_features=150,
    )


@pytest.fixture(scope="module")
def chaos_images():
    return [random_blocks(120, 160, block=9, seed=seed) for seed in range(12)]


def _feature_key(result):
    return result.feature_records()  # the repo-wide bit-identity key


def _sequential_baseline(config, images):
    extractor = OrbExtractor(local_extraction_config(config))
    return [_feature_key(extractor.extract(image)) for image in images]


def _wait_until(predicate, timeout_s=15.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


def _warm_up(server, images, count=2, sharded=False):
    """Serve a couple of frames so every worker has booted and beaten."""
    futures = [
        server.submit(
            images[index % len(images)],
            frame_id=1_000_000 + index,
            **({"shard_key": index} if sharded else {}),
        )
        for index in range(count)
    ]
    for future in futures:
        future.result(timeout=60)


class TestFaultPlan:
    def test_storm_is_deterministic(self):
        first = FaultPlan.storm(frames=64, every=8, num_workers=4, seed=3)
        second = FaultPlan.storm(frames=64, every=8, num_workers=4, seed=3)
        assert first.events == second.events
        assert len(first.events) == 7  # submits 8, 16, ..., 56

    def test_different_seed_different_storm(self):
        first = FaultPlan.storm(
            frames=64, every=4, kinds=FAULT_KINDS, num_workers=4, seed=1
        )
        second = FaultPlan.storm(
            frames=64, every=4, kinds=FAULT_KINDS, num_workers=4, seed=2
        )
        assert first.events != second.events

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError):
            FaultEvent(at_submit=0, kind="meteor")

    def test_publish_failures_are_consumed_once(self):
        plan = FaultPlan([FaultEvent(at_submit=0, kind="publish_fail")])
        plan.on_submit(server=None, job_id=0)
        assert plan.take_publish_failure() is True
        assert plan.take_publish_failure() is False
        report = plan.report()
        assert report["fired"] == 1
        assert report["fired_by_kind"] == {"publish_fail": 1}

    def test_events_fire_at_most_once(self):
        plan = FaultPlan([FaultEvent(at_submit=2, kind="slow_frame")])
        plan.on_submit(server=None, job_id=2)
        plan.on_submit(server=None, job_id=2)
        assert len(plan.fired) == 1


class TestKillStorm:
    """The acceptance gate: seeded kill-every-N storm, per engine pair."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_bit_identical_in_order_through_kill_storm(
        self, engine, chaos_config, chaos_images
    ):
        config = replace(chaos_config, frontend=engine, backend=engine)
        baseline = _sequential_baseline(config, chaos_images)
        plan = FaultPlan.storm(
            frames=len(chaos_images), every=4, num_workers=2, seed=13
        )
        server = ClusterServer(
            config, num_workers=2, supervision=FAST_SUPERVISION, fault_plan=plan
        )
        with server:
            futures = [
                server.submit(image, frame_id=index)
                for index, image in enumerate(chaos_images)
            ]
            results = [future.result(timeout=120) for future in futures]
            served = [_feature_key(result) for result in results]
            assert served == baseline  # bit-identical AND in submission order
            assert plan.report()["fired_by_kind"] == {"kill": 2}
            assert server.stats.restarts > 0
            assert server.stats.requeued > 0
            # the pool healed: every killed worker slot is serving again
            assert _wait_until(lambda: len(server.alive_worker_ids()) == 2)
        report = server.stats.as_dict()
        assert report["leaked_slots"] == 0
        assert report["frames_failed"] == 0

    def test_storm_with_publish_failures_falls_back_to_ring(
        self, chaos_config, chaos_images
    ):
        plan = FaultPlan(
            [
                FaultEvent(at_submit=1, kind="publish_fail"),
                FaultEvent(at_submit=4, kind="kill", worker_id=0),
                FaultEvent(at_submit=7, kind="publish_fail"),
            ]
        )
        baseline = _sequential_baseline(chaos_config, chaos_images)
        server = ClusterServer(
            chaos_config, num_workers=2, supervision=FAST_SUPERVISION, fault_plan=plan
        )
        with server:
            futures = [
                server.submit(image, frame_id=index)
                for index, image in enumerate(chaos_images)
            ]
            served = [_feature_key(f.result(timeout=120)) for f in futures]
        assert served == baseline
        report = server.stats.as_dict()
        assert report["frames_via_ring"] >= 2  # the forced publish failures
        assert report["publish_fallbacks"] >= 2
        assert report["leaked_slots"] == 0


class TestRestartUnderZeroCopy:
    """Kill between pyramid pin and result flush; the slot must come back."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_killed_pinned_jobs_retry_and_reclaim(
        self, engine, chaos_config, chaos_images
    ):
        config = replace(chaos_config, frontend=engine, backend=engine)
        images = chaos_images[:4]
        baseline = _sequential_baseline(config, images)
        server = ClusterServer(
            config,
            num_workers=2,
            policy="by_sequence",
            max_in_flight=8,
            supervision=FAST_SUPERVISION,
        )
        with server:
            _warm_up(server, images, sharded=True)
            # stall the shard's worker so its jobs are provably pinned and
            # in flight (published + pinned + dispatched, result not
            # flushed), then kill it mid-flight
            assert server.chaos_stall(0, duration_s=30.0) == 0
            futures = [
                server.submit(image, shard_key=0, frame_id=index)
                for index, image in enumerate(images)
            ]
            time.sleep(0.2)  # let the dispatcher hand jobs to the victim
            assert server.chaos_kill(0) == 0
            served = [_feature_key(f.result(timeout=120)) for f in futures]
            assert served == baseline
            assert server.stats.requeued > 0
            assert server.stats.retries > 0  # dispatched jobs were re-run
            assert _wait_until(lambda: server.stats.restarts >= 1)
            # every published pyramid slot was retired and reclaimed, the
            # crashed worker's leaked consumer leases voided by force-retire
            cache_report = server.pyramid_cache_stats()
            assert cache_report is not None
            assert cache_report["slots_in_use"] == 0
        assert server.stats.as_dict()["leaked_slots"] == 0


class TestResultRingUnderChaos:
    """The result ring's own acceptance gate: kill storms with the
    zero-copy return path enabled leak no result slots and change no bits."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_kill_storm_with_ring_leaves_zero_leaked_result_slots(
        self, engine, chaos_config, chaos_images
    ):
        config = replace(chaos_config, frontend=engine, backend=engine)
        baseline = _sequential_baseline(config, chaos_images)
        plan = FaultPlan.storm(
            frames=len(chaos_images), every=4, num_workers=2, seed=29
        )
        server = ClusterServer(
            config,
            num_workers=2,
            supervision=FAST_SUPERVISION,
            fault_plan=plan,
            result_transport="ring",
        )
        with server:
            futures = [
                server.submit(image, frame_id=index)
                for index, image in enumerate(chaos_images)
            ]
            served = [_feature_key(f.result(timeout=120)) for f in futures]
            # every collected result freed its slot, and every slot a dead
            # worker left claimed was force-reclaimed at death — the ring
            # is already empty before the close-time audit even runs
            assert server._result_ring.in_use() == 0
        assert served == baseline  # bit-identical AND in submission order
        report = server.stats.as_dict()
        assert report["frames_failed"] == 0
        # descriptors flushed before each kill still completed zero-copy
        assert report["results_zero_copy"] > 0
        assert report["leaked_slots"] == 0

    def test_pickle_transport_survives_the_same_storm(
        self, chaos_config, chaos_images
    ):
        baseline = _sequential_baseline(chaos_config, chaos_images)
        plan = FaultPlan.storm(
            frames=len(chaos_images), every=4, num_workers=2, seed=29
        )
        server = ClusterServer(
            chaos_config,
            num_workers=2,
            supervision=FAST_SUPERVISION,
            fault_plan=plan,
            result_transport="pickle",
        )
        with server:
            futures = [
                server.submit(image, frame_id=index)
                for index, image in enumerate(chaos_images)
            ]
            served = [_feature_key(f.result(timeout=120)) for f in futures]
        assert served == baseline
        report = server.stats.as_dict()
        assert report["results_zero_copy"] == 0
        assert report["results_via_pickle"] >= len(chaos_images)
        assert report["leaked_slots"] == 0


class TestStallDetection:
    def test_stalled_worker_is_killed_restarted_and_jobs_requeued(
        self, chaos_config, chaos_images
    ):
        supervision = SupervisorConfig(
            restart_backoff_s=0.02,
            restart_backoff_max_s=0.2,
            heartbeat_timeout_s=0.5,
        )
        images = chaos_images[:3]
        baseline = _sequential_baseline(chaos_config, images)
        server = ClusterServer(
            chaos_config,
            num_workers=2,
            policy="by_sequence",
            max_in_flight=8,
            supervision=supervision,
        )
        with server:
            _warm_up(server, images, sharded=True)  # both workers have beaten
            assert server.chaos_stall(0, duration_s=60.0) == 0
            futures = [
                server.submit(image, shard_key=0, frame_id=index)
                for index, image in enumerate(images)
            ]
            # no manual kill: the supervisor must notice the flat heartbeat
            served = [_feature_key(f.result(timeout=120)) for f in futures]
        assert served == baseline
        report = server.stats.as_dict()
        assert report["restarts"] >= 1
        assert report["requeued"] >= 1
        assert report["leaked_slots"] == 0


class TestDeadlines:
    def test_undispatched_jobs_expire_with_attempt_history(
        self, chaos_config, chaos_images
    ):
        server = ClusterServer(
            chaos_config,
            num_workers=1,
            max_in_flight=6,
            supervision=FAST_SUPERVISION,
        )
        with server:
            _warm_up(server, chaos_images, count=1)
            assert server.chaos_stall(0, duration_s=1.0) == 0
            futures = [
                server.submit(image, frame_id=index, deadline_s=0.3)
                for index, image in enumerate(chaos_images[:6])
            ]
            outcomes = []
            for future in futures:
                try:
                    future.result(timeout=120)
                    outcomes.append("ok")
                except JobFailed as error:
                    assert error.attempts  # structured history, never bare
                    assert "deadline" in str(error)
                    outcomes.append("deadline")
            # the dispatch window reached the stalled worker: those frames
            # complete (late); the queued remainder expired at the deadline
            assert "deadline" in outcomes
        assert server.stats.as_dict()["leaked_slots"] == 0

    def test_dispatched_job_past_deadline_fails_at_worker_death(
        self, chaos_config, chaos_images
    ):
        server = ClusterServer(
            chaos_config, num_workers=1, supervision=FAST_SUPERVISION
        )
        with server:
            _warm_up(server, chaos_images, count=1)
            assert server.chaos_stall(0, duration_s=60.0) == 0
            future = server.submit(chaos_images[0], frame_id=0, deadline_s=0.2)
            assert _wait_until(lambda: server._dispatched_count(0) > 0)
            time.sleep(0.3)  # push the job past its budget while in flight
            server.chaos_kill(0)
            with pytest.raises(JobFailed) as excinfo:
                future.result(timeout=120)
        assert excinfo.value.attempts
        assert excinfo.value.attempts[0].worker_id == 0
        assert "deadline" in str(excinfo.value)


class TestRetryBudget:
    def test_exhausted_retry_budget_fails_with_history(
        self, chaos_config, chaos_images
    ):
        supervision = replace(FAST_SUPERVISION, max_retries=0)
        server = ClusterServer(
            chaos_config, num_workers=1, supervision=supervision
        )
        with server:
            _warm_up(server, chaos_images, count=1)
            assert server.chaos_stall(0, duration_s=60.0) == 0
            future = server.submit(chaos_images[0], frame_id=0)
            assert _wait_until(lambda: server._dispatched_count(0) > 0)
            server.chaos_kill(0)
            with pytest.raises(JobFailed) as excinfo:
                future.result(timeout=120)
        assert len(excinfo.value.attempts) == 1
        assert excinfo.value.attempts[0].worker_id == 0
        assert "retry budget" in str(excinfo.value)

    def test_budgeted_job_survives_within_budget(self, chaos_config, chaos_images):
        baseline = _sequential_baseline(chaos_config, chaos_images[:1])
        server = ClusterServer(
            chaos_config, num_workers=1, supervision=FAST_SUPERVISION
        )
        with server:
            _warm_up(server, chaos_images, count=1)
            assert server.chaos_stall(0, duration_s=60.0) == 0
            future = server.submit(chaos_images[0], frame_id=0)
            assert _wait_until(lambda: server._dispatched_count(0) > 0)
            server.chaos_kill(0)  # attempt 1 of the default budget of 2
            assert _feature_key(future.result(timeout=120)) == baseline[0]
        report = server.stats.as_dict()
        assert report["retries"] >= 1
        assert report["restarts"] >= 1


class TestShedding:
    def test_fail_fast_sheds_when_saturated(self, chaos_config, chaos_images):
        server = ClusterServer(
            chaos_config, num_workers=1, max_in_flight=1, on_overload="fail_fast"
        )
        with server:
            _warm_up(server, chaos_images, count=1)
            assert server.chaos_stall(0, duration_s=1.0) == 0
            first = server.submit(chaos_images[0], frame_id=0)
            with pytest.raises(JobFailed) as excinfo:
                server.submit(chaos_images[1], frame_id=1)
            assert "shed" in str(excinfo.value)
            assert excinfo.value.attempts[0].worker_id == -1
            first.result(timeout=120)  # completes once the stall lifts
        assert server.stats.as_dict()["shed"] == 1

    def test_degrade_to_local_is_bit_identical(self, chaos_config, chaos_images):
        baseline = _sequential_baseline(chaos_config, chaos_images[:2])
        server = ClusterServer(
            chaos_config,
            num_workers=1,
            max_in_flight=1,
            on_overload="degrade_to_local",
        )
        with server:
            _warm_up(server, chaos_images, count=1)
            assert server.chaos_stall(0, duration_s=1.0) == 0
            first = server.submit(chaos_images[0], frame_id=0)
            second = server.submit(chaos_images[1], frame_id=1)
            assert second.done()  # served synchronously in-process
            assert _feature_key(second.result()) == baseline[1]
            assert _feature_key(first.result(timeout=120)) == baseline[0]
        assert server.stats.as_dict()["shed"] == 1


class TestElasticity:
    def test_pool_grows_under_load_and_shrinks_back(
        self, chaos_config, chaos_images
    ):
        elasticity = ElasticityConfig(
            min_workers=1,
            max_workers=3,
            grow_at_queue_depth=1.0,
            shrink_idle_s=0.2,
        )
        server = ClusterServer(
            chaos_config,
            num_workers=1,
            max_in_flight=8,
            supervision=FAST_SUPERVISION,
            elasticity=elasticity,
        )
        with server:
            futures = [
                server.submit(image, frame_id=index)
                for index, image in enumerate(chaos_images)
            ]
            for future in futures:
                future.result(timeout=120)
            assert server.stats.pool_grows >= 1
            assert _wait_until(lambda: len(server.alive_worker_ids()) == 1)
            assert server.stats.pool_shrinks >= 1
            assert 1 <= len(server.alive_worker_ids()) <= 3
        assert server.stats.as_dict()["leaked_slots"] == 0


class TestCloseRobustness:
    def test_close_is_idempotent_after_crash(self, chaos_config, chaos_images):
        server = ClusterServer(chaos_config, num_workers=2)
        future = server.submit(chaos_images[0], frame_id=0)
        future.result(timeout=60)
        server.kill_worker(0)
        server.close()
        server.close()  # second close must be a no-op, not a crash
        assert server.stats.as_dict()["leaked_slots"] == 0
        with pytest.raises(ReproError):
            server.submit(chaos_images[0])

    def test_close_reclaims_slots_killed_mid_flight(
        self, chaos_config, chaos_images
    ):
        # unsupervised: the killed worker's jobs fail, and close() must
        # still join cleanly and account every transport slot
        server = ClusterServer(
            chaos_config, num_workers=2, policy="by_sequence", max_in_flight=8
        )
        _warm_up(server, chaos_images, sharded=True)
        server.chaos_stall(0, duration_s=30.0)
        futures = [
            server.submit(image, shard_key=0, frame_id=index)
            for index, image in enumerate(chaos_images[:3])
        ]
        time.sleep(0.2)
        server.chaos_kill(0)
        for future in futures:
            with pytest.raises(ReproError):
                future.result(timeout=60)
        server.close()
        assert server.stats.as_dict()["leaked_slots"] == 0

    def test_workers_ignore_sigint(self, chaos_config, chaos_images):
        baseline = _sequential_baseline(chaos_config, chaos_images[:1])
        with ClusterServer(chaos_config, num_workers=1) as server:
            _warm_up(server, chaos_images, count=1)
            pid = server._processes[0].pid
            os.kill(pid, signal.SIGINT)  # Ctrl-C fans out to the group
            time.sleep(0.3)
            assert server._processes[0].exitcode is None  # still alive
            future = server.submit(chaos_images[0], frame_id=0)
            assert _feature_key(future.result(timeout=60)) == baseline[0]


class TestSlamDeadlinePassThrough:
    def test_frame_deadline_forwarded_to_server(self, chaos_config):
        from repro.config import SlamConfig
        from repro.dataset import SequenceSpec, make_sequence
        from repro.serving import FrameServer
        from repro.slam import SlamSystem

        slam_config = SlamConfig(extractor=local_extraction_config(chaos_config))
        sequence = make_sequence(
            SequenceSpec(
                name="fr1/xyz", num_frames=3, image_width=160, image_height=120
            )
        )
        system = SlamSystem(slam_config)
        with FrameServer(config=slam_config.extractor, max_workers=2) as frame_server:
            # a generous budget: every frame must serve inside it
            result = system.run(
                sequence, frame_server=frame_server, frame_deadline_s=60.0
            )
        assert len(result.frame_results) == 3
