"""Tests for the ground-truth trajectory generators."""

import numpy as np
import pytest

from repro.dataset import (
    SEQUENCE_BUILDERS,
    build_trajectory,
    desk_trajectory,
    room_trajectory,
    rpy_trajectory,
    static_trajectory,
    xyz_trajectory,
)
from repro.errors import DatasetError
from repro.geometry import Pose


def _max_step_translation(poses):
    return max(
        poses[i].translation_distance(poses[i + 1]) for i in range(len(poses) - 1)
    )


def _max_step_rotation(poses):
    return max(
        poses[i].rotation_angle(poses[i + 1]) for i in range(len(poses) - 1)
    )


class TestXyzTrajectory:
    def test_length(self):
        assert len(xyz_trajectory(num_frames=30)) == 30

    def test_translation_only(self):
        poses = xyz_trajectory(num_frames=30)
        assert _max_step_rotation(poses) == pytest.approx(0.0, abs=1e-12)
        assert _max_step_translation(poses) > 0

    def test_starts_at_origin(self):
        poses = xyz_trajectory(num_frames=30)
        assert np.allclose(poses[0].camera_center(), np.zeros(3), atol=1e-12)

    def test_amplitude_respected(self):
        poses = xyz_trajectory(num_frames=60, amplitude_m=0.2)
        centers = np.stack([p.camera_center() for p in poses])
        assert np.abs(centers[:, 0]).max() <= 0.2 + 1e-9

    def test_smooth_motion(self):
        poses = xyz_trajectory(num_frames=60)
        assert _max_step_translation(poses) < 0.08


class TestRpyTrajectory:
    def test_rotation_only(self):
        poses = rpy_trajectory(num_frames=30)
        centers = np.stack([p.camera_center() for p in poses])
        assert np.abs(centers).max() == pytest.approx(0.0, abs=1e-12)
        assert _max_step_rotation(poses) > 0

    def test_rotation_amplitude(self):
        poses = rpy_trajectory(num_frames=60, amplitude_rad=0.1)
        max_angle = max(p.rotation_angle(Pose.identity()) for p in poses)
        assert max_angle < 0.3


class TestDeskAndRoom:
    def test_desk_has_both_translation_and_rotation(self):
        poses = desk_trajectory(num_frames=40)
        assert _max_step_translation(poses) > 0
        assert _max_step_rotation(poses) > 0

    def test_room_sweeps_yaw(self):
        poses = room_trajectory(num_frames=40, yaw_total_rad=np.pi / 2)
        total_rotation = poses[0].rotation_angle(poses[-1])
        assert total_rotation == pytest.approx(np.pi / 2, abs=1e-6)

    def test_static_trajectory(self):
        poses = static_trajectory(5)
        assert all(p.is_close(Pose.identity()) for p in poses)

    def test_minimum_length_validation(self):
        with pytest.raises(DatasetError):
            xyz_trajectory(num_frames=1)
        with pytest.raises(DatasetError):
            desk_trajectory(num_frames=0)


class TestBuilders:
    def test_all_five_paper_sequences_available(self):
        assert set(SEQUENCE_BUILDERS) == {
            "fr1/xyz",
            "fr2/xyz",
            "fr1/desk",
            "fr1/room",
            "fr2/rpy",
        }

    def test_build_trajectory_profile(self):
        profile = build_trajectory("fr1/xyz", num_frames=20, frame_rate_hz=30.0)
        assert len(profile) == 20
        assert profile.name == "fr1/xyz"
        timestamps = profile.timestamps()
        assert timestamps[1] - timestamps[0] == pytest.approx(1.0 / 30.0)

    def test_unknown_sequence_rejected(self):
        with pytest.raises(DatasetError):
            build_trajectory("fr9/unknown", num_frames=10)

    def test_motion_characters_differ(self):
        """xyz is translation-dominated, rpy rotation-dominated."""
        xyz = build_trajectory("fr1/xyz", 30).poses
        rpy = build_trajectory("fr2/rpy", 30).poses
        assert _max_step_translation(xyz) > _max_step_translation(rpy)
        assert _max_step_rotation(rpy) > _max_step_rotation(xyz)
