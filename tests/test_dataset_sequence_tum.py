"""Tests for synthetic sequence generation and TUM trajectory I/O."""

import numpy as np
import pytest

from repro.dataset import (
    RgbdSequence,
    SequenceSpec,
    format_trajectory,
    make_sequence,
    paper_sequences,
    parse_trajectory,
    read_trajectory,
    write_trajectory,
)
from repro.errors import DatasetError
from repro.geometry import Pose, so3_exp


class TestSequenceGeneration:
    def test_sequence_basic_structure(self, tiny_sequence):
        assert isinstance(tiny_sequence, RgbdSequence)
        assert len(tiny_sequence) == 5
        assert tiny_sequence.name == "fr1/xyz"

    def test_frames_have_consistent_shapes(self, tiny_sequence):
        for frame in tiny_sequence:
            assert frame.image.shape == (120, 160)
            assert frame.depth.shape == (120, 160)

    def test_timestamps_monotonic(self, tiny_sequence):
        timestamps = tiny_sequence.timestamps()
        assert np.all(np.diff(timestamps) > 0)

    def test_ground_truth_matches_trajectory_length(self, tiny_sequence):
        assert len(tiny_sequence.ground_truth_poses()) == len(tiny_sequence)

    def test_depth_is_positive_where_valid(self, tiny_sequence):
        frame = tiny_sequence[0]
        valid = frame.depth > 0
        assert valid.mean() > 0.9  # wall scene fills nearly the whole view
        assert frame.depth[valid].min() > 0.5

    def test_depth_lookup_helper(self, tiny_sequence):
        frame = tiny_sequence[0]
        assert frame.depth_at(10, 10) == float(frame.depth[10, 10])
        assert frame.depth_at(-5, 10) == 0.0

    def test_camera_intrinsics_scaled_to_resolution(self, tiny_sequence):
        assert tiny_sequence.camera.width == 160
        assert tiny_sequence.camera.height == 120

    def test_consecutive_frames_differ(self, tiny_sequence):
        assert not np.array_equal(
            tiny_sequence[0].image.pixels, tiny_sequence[2].image.pixels
        )

    def test_unknown_sequence_name_rejected(self):
        with pytest.raises(DatasetError):
            make_sequence(SequenceSpec(name="fr3/nope", num_frames=4))

    def test_aspect_ratio_validation(self):
        with pytest.raises(DatasetError):
            make_sequence(
                SequenceSpec(name="fr1/xyz", num_frames=4, image_width=320, image_height=200)
            )

    def test_noise_injection_changes_images(self):
        clean = make_sequence(
            SequenceSpec(name="fr1/xyz", num_frames=3, image_width=160, image_height=120)
        )
        noisy = make_sequence(
            SequenceSpec(
                name="fr1/xyz",
                num_frames=3,
                image_width=160,
                image_height=120,
                image_noise_std=5.0,
                depth_noise_std_m=0.01,
            )
        )
        assert not np.array_equal(clean[0].image.pixels, noisy[0].image.pixels)
        assert not np.array_equal(clean[0].depth, noisy[0].depth)

    def test_fr2_sequences_use_fr2_intrinsics(self):
        sequence = make_sequence(
            SequenceSpec(name="fr2/rpy", num_frames=3, image_width=160, image_height=120)
        )
        assert sequence.camera.fx == pytest.approx(520.9 * 0.25)

    def test_paper_sequences_helper(self):
        specs = paper_sequences(num_frames=10)
        assert len(specs) == 5
        assert all(spec.num_frames == 10 for spec in specs.values())


class TestDepthConsistency:
    def test_rendered_depth_backprojects_onto_scene_plane(self, tiny_sequence):
        """Back-projected feature points land on the wall plane (z = 2.5 m world)."""
        frame = tiny_sequence[1]
        camera = tiny_sequence.camera
        pose = frame.ground_truth_pose
        for (u, v) in [(20, 20), (80, 60), (140, 100)]:
            depth = frame.depth_at(u, v)
            point_cam = camera.back_project(u, v, depth)
            point_world = pose.inverse().transform(point_cam)
            assert point_world[2] == pytest.approx(2.5, abs=1e-6)


class TestTumFormat:
    def test_roundtrip_through_text(self):
        poses = [
            Pose.identity(),
            Pose(so3_exp(np.array([0.1, 0.0, 0.2])), np.array([0.5, -0.1, 0.3])),
        ]
        timestamps = [0.0, 0.033]
        text = format_trajectory(timestamps, poses)
        entries = parse_trajectory(text)
        assert len(entries) == 2
        recovered = [entry.to_world_to_camera() for entry in entries]
        for original, parsed in zip(poses, recovered):
            assert original.is_close(parsed, atol=1e-5)

    def test_format_contains_header_and_eight_fields(self):
        text = format_trajectory([1.5], [Pose.identity()])
        lines = text.strip().splitlines()
        assert lines[0].startswith("#")
        assert len(lines[1].split()) == 8

    def test_parse_skips_comments_and_blanks(self):
        text = "# comment\n\n0.0 0 0 0 0 0 0 1\n"
        entries = parse_trajectory(text)
        assert len(entries) == 1
        assert entries[0].quaternion[3] == pytest.approx(1.0)

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(DatasetError):
            parse_trajectory("0.0 1 2 3\n")
        with pytest.raises(DatasetError):
            parse_trajectory("0.0 a b c d e f g\n")

    def test_file_roundtrip(self, tmp_path):
        poses = [Pose(so3_exp(np.array([0.0, 0.05 * i, 0.0])), np.array([0.1 * i, 0, 0])) for i in range(4)]
        timestamps = [i / 30.0 for i in range(4)]
        path = tmp_path / "trajectory.txt"
        write_trajectory(path, timestamps, poses)
        read_stamps, read_poses = read_trajectory(path)
        assert np.allclose(read_stamps, timestamps)
        for a, b in zip(poses, read_poses):
            assert a.is_close(b, atol=1e-5)

    def test_length_mismatch_rejected(self):
        with pytest.raises(DatasetError):
            format_trajectory([0.0, 1.0], [Pose.identity()])
