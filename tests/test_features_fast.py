"""Tests for the FAST segment-test detector."""

import numpy as np
import pytest

from repro.config import FastConfig
from repro.features import (
    FAST_CIRCLE_OFFSETS,
    detect_fast_keypoints,
    fast_corner_mask,
    is_fast_corner,
)
from repro.image import GrayImage, checkerboard, isolated_corner


class TestCircleOffsets:
    def test_sixteen_offsets(self):
        assert len(FAST_CIRCLE_OFFSETS) == 16

    def test_all_unique(self):
        assert len(set(FAST_CIRCLE_OFFSETS)) == 16

    def test_radius_is_three(self):
        # the Bresenham circle of radius 3: Euclidean radius between 2.8 and 3.2
        for dx, dy in FAST_CIRCLE_OFFSETS:
            radius = (dx * dx + dy * dy) ** 0.5
            assert 2.7 <= radius <= 3.2

    def test_offsets_form_closed_ring(self):
        # consecutive offsets are neighbours (Bresenham circle continuity)
        for i in range(16):
            dx0, dy0 = FAST_CIRCLE_OFFSETS[i]
            dx1, dy1 = FAST_CIRCLE_OFFSETS[(i + 1) % 16]
            assert abs(dx1 - dx0) <= 1 and abs(dy1 - dy0) <= 1


class TestDetection:
    def test_flat_image_has_no_corners(self, flat_image):
        assert not fast_corner_mask(flat_image).any()

    def test_isolated_corner_detected_nearby(self):
        image = isolated_corner(64, 64, corner_xy=(32, 32))
        mask = fast_corner_mask(image, FastConfig(border=4))
        ys, xs = np.nonzero(mask)
        assert len(xs) > 0
        distances = np.sqrt((xs - 32) ** 2 + (ys - 32) ** 2)
        assert distances.min() <= 4

    def test_random_blocks_have_many_corners(self, blocks_image):
        mask = fast_corner_mask(blocks_image, FastConfig(border=16))
        assert mask.sum() >= 100

    def test_checkerboard_x_junctions_are_not_fast_corners(self):
        # A perfect checkerboard only has X-junctions: the ring splits into two
        # arcs of 8, below the required 9 contiguous pixels, so FAST-9 fires on
        # none of them.  This is the classic FAST behaviour and documents why
        # the synthetic scenes use random blocks rather than checkerboards.
        board = checkerboard(96, 96, square=12)
        mask = fast_corner_mask(board, FastConfig(border=4, arc_length=9))
        assert mask.sum() == 0

    def test_border_is_clear(self, blocks_image):
        config = FastConfig(border=16)
        mask = fast_corner_mask(blocks_image, config)
        assert not mask[:16, :].any()
        assert not mask[:, :16].any()
        assert not mask[-16:, :].any()
        assert not mask[:, -16:].any()

    def test_higher_threshold_fewer_corners(self, blocks_image):
        low = fast_corner_mask(blocks_image, FastConfig(threshold=10)).sum()
        high = fast_corner_mask(blocks_image, FastConfig(threshold=60)).sum()
        assert high <= low

    def test_tiny_image_returns_empty(self):
        image = GrayImage.zeros(8, 8)
        assert not fast_corner_mask(image).any()

    def test_detect_returns_raster_order(self, blocks_image):
        points = detect_fast_keypoints(blocks_image)
        keys = [(y, x) for x, y in points]
        assert keys == sorted(keys)

    def test_dark_corner_also_detected(self):
        pixels = np.full((64, 64), 220, dtype=np.uint8)
        pixels[32:, 32:] = 30  # dark quadrant -> dark corner
        mask = fast_corner_mask(GrayImage(pixels), FastConfig(border=4))
        assert mask.any()


class TestScalarReference:
    def test_scalar_matches_vectorised(self, blocks_image):
        config = FastConfig(threshold=20, border=16)
        mask = fast_corner_mask(blocks_image, config)
        ys, xs = np.nonzero(mask)
        # every vectorised corner must pass the scalar segment test
        for x, y in list(zip(xs, ys))[:50]:
            assert is_fast_corner(blocks_image, int(x), int(y), config)

    def test_scalar_rejects_non_corners(self, blocks_image):
        config = FastConfig(threshold=20, border=16)
        mask = fast_corner_mask(blocks_image, config)
        interior = np.zeros_like(mask)
        interior[20:-20, 20:-20] = True
        non_corners = np.nonzero(~mask & interior)
        checked = 0
        for y, x in zip(*non_corners):
            assert not is_fast_corner(blocks_image, int(x), int(y), config)
            checked += 1
            if checked >= 50:
                break

    def test_scalar_near_border_is_false(self, blocks_image):
        assert not is_fast_corner(blocks_image, 1, 1)
