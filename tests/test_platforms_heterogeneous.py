"""Tests for the heterogeneous system that couples SLAM runs with platform timing."""

import pytest

from repro.platforms import (
    ARM_CORTEX_A9,
    ESLAM,
    INTEL_I7,
    HeterogeneousSlamSystem,
)


@pytest.fixture(scope="module")
def hetero_result(tiny_sequence, tiny_slam_config):
    system = HeterogeneousSlamSystem(tiny_slam_config)
    return system.run(tiny_sequence, max_frames=4)


class TestHeterogeneousRun:
    def test_one_timing_per_frame(self, hetero_result):
        assert len(hetero_result.frame_timings) == 4
        assert hetero_result.slam.num_frames == 4

    def test_all_platforms_timed(self, hetero_result):
        timing = hetero_result.frame_timings[1]
        for name in (ARM_CORTEX_A9.name, INTEL_I7.name, ESLAM.name):
            assert timing.runtime_ms[name] > 0
            assert timing.energy_mj[name] > 0

    def test_eslam_is_fastest_platform(self, hetero_result):
        """The ordering eSLAM < i7 < ARM must hold for every frame."""
        for timing in hetero_result.frame_timings:
            assert timing.runtime_ms[ESLAM.name] < timing.runtime_ms[INTEL_I7.name]
            assert timing.runtime_ms[INTEL_I7.name] < timing.runtime_ms[ARM_CORTEX_A9.name]

    def test_eslam_energy_is_lowest(self, hetero_result):
        for timing in hetero_result.frame_timings:
            assert timing.energy_mj[ESLAM.name] < timing.energy_mj[ARM_CORTEX_A9.name]
            assert timing.energy_mj[ESLAM.name] < timing.energy_mj[INTEL_I7.name]

    def test_average_helpers(self, hetero_result):
        average_runtime = hetero_result.average_runtime_ms(ESLAM.name)
        assert average_runtime > 0
        assert hetero_result.average_frame_rate_fps(ESLAM.name) == pytest.approx(
            1000.0 / average_runtime
        )
        assert hetero_result.average_energy_mj(ESLAM.name) > 0

    def test_slam_accuracy_still_good(self, hetero_result):
        assert hetero_result.slam.ate().rmse_cm < 5.0

    def test_keyframe_flags_consistent(self, hetero_result):
        slam_flags = [r.is_keyframe for r in hetero_result.slam.frame_results]
        timing_flags = [t.is_keyframe for t in hetero_result.frame_timings]
        assert slam_flags == timing_flags
