"""Perspective-n-Point pose estimation.

Pose estimation in eSLAM applies the PnP method to matched (3-D map point,
2-D feature) pairs to estimate camera rotation and translation, with RANSAC
rejecting mismatches (Section 2.1).  This module provides

* :func:`estimate_pose_3d3d` -- a closed-form Horn/Kabsch alignment used to
  bootstrap from RGB-D correspondences where both sides have depth,
* :class:`IterativePnpSolver` -- Gauss-Newton / Levenberg-Marquardt
  minimisation of reprojection error on SE(3), the "P" in PnP proper,
* :func:`solve_pnp` -- the convenience entry point used by RANSAC and the
  tracker.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GeometryError
from .camera import PinholeCamera
from .se3 import Pose, se3_exp


def estimate_pose_3d3d(points_world: np.ndarray, points_cam: np.ndarray) -> Pose:
    """Closed-form rigid alignment (Kabsch/Horn) from 3-D/3-D correspondences.

    Finds the pose ``T`` minimising ``sum || points_cam - T(points_world) ||^2``.
    Requires at least 3 non-collinear correspondences.
    """
    world = np.asarray(points_world, dtype=np.float64)
    cam = np.asarray(points_cam, dtype=np.float64)
    if world.shape != cam.shape or world.ndim != 2 or world.shape[1] != 3:
        raise GeometryError("point sets must both be (N, 3)")
    if world.shape[0] < 3:
        raise GeometryError("at least 3 correspondences are required")
    centroid_world = world.mean(axis=0)
    centroid_cam = cam.mean(axis=0)
    world_centered = world - centroid_world
    cam_centered = cam - centroid_cam
    covariance = cam_centered.T @ world_centered
    u, _, vt = np.linalg.svd(covariance)
    d = np.sign(np.linalg.det(u @ vt))
    correction = np.diag([1.0, 1.0, d])
    rotation = u @ correction @ vt
    translation = centroid_cam - rotation @ centroid_world
    return Pose(rotation, translation)


@dataclass
class PnpResult:
    """Result of an iterative PnP solve."""

    pose: Pose
    final_cost: float
    iterations: int
    converged: bool
    inlier_rmse_px: float


class IterativePnpSolver:
    """Levenberg-Marquardt PnP: minimise reprojection error over SE(3).

    The solver linearises the projection function around the current pose
    using the standard 2x6 Jacobian of a pinhole projection with respect to a
    left-multiplied SE(3) increment, and damps the normal equations with a
    LM lambda that adapts to the observed cost change.
    """

    def __init__(
        self,
        camera: PinholeCamera,
        max_iterations: int = 20,
        tolerance: float = 1e-8,
        initial_lambda: float = 1e-3,
    ) -> None:
        self.camera = camera
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.initial_lambda = initial_lambda

    # -- residuals / jacobians ------------------------------------------------
    def residuals(self, pose: Pose, points_world: np.ndarray, pixels: np.ndarray) -> np.ndarray:
        """Return the stacked 2N reprojection residual vector."""
        points_cam = pose.transform(points_world)
        depths = points_cam[:, 2]
        if np.any(depths <= 1e-9):
            # points behind the camera contribute a large constant penalty
            depths = np.where(depths <= 1e-9, 1e-9, depths)
            points_cam = points_cam.copy()
            points_cam[:, 2] = depths
        projected = self.camera.project(points_cam)
        return (projected - pixels).reshape(-1)

    def jacobian(self, pose: Pose, points_world: np.ndarray) -> np.ndarray:
        """Return the ``(2N, 6)`` Jacobian wrt a left SE(3) increment ``(v, w)``."""
        points_cam = pose.transform(points_world)
        x, y, z = points_cam[:, 0], points_cam[:, 1], np.maximum(points_cam[:, 2], 1e-9)
        inv_z = 1.0 / z
        inv_z2 = inv_z * inv_z
        fx, fy = self.camera.fx, self.camera.fy
        n = points_cam.shape[0]
        jac = np.zeros((2 * n, 6))
        # d(u)/d(translation), d(u)/d(rotation)
        jac[0::2, 0] = fx * inv_z
        jac[0::2, 2] = -fx * x * inv_z2
        jac[0::2, 3] = -fx * x * y * inv_z2
        jac[0::2, 4] = fx * (1.0 + x * x * inv_z2)
        jac[0::2, 5] = -fx * y * inv_z
        jac[1::2, 1] = fy * inv_z
        jac[1::2, 2] = -fy * y * inv_z2
        jac[1::2, 3] = -fy * (1.0 + y * y * inv_z2)
        jac[1::2, 4] = fy * x * y * inv_z2
        jac[1::2, 5] = fy * x * inv_z
        return jac

    # -- solve -----------------------------------------------------------------
    def solve(
        self,
        points_world: np.ndarray,
        pixels: np.ndarray,
        initial_pose: Pose | None = None,
    ) -> PnpResult:
        """Estimate the camera pose from 3-D world points and 2-D observations."""
        world = np.asarray(points_world, dtype=np.float64)
        pix = np.asarray(pixels, dtype=np.float64)
        if world.ndim != 2 or world.shape[1] != 3:
            raise GeometryError("points_world must be (N, 3)")
        if pix.shape != (world.shape[0], 2):
            raise GeometryError("pixels must be (N, 2) matching points_world")
        if world.shape[0] < 4:
            raise GeometryError("iterative PnP needs at least 4 correspondences")
        pose = initial_pose or Pose.identity()
        lam = self.initial_lambda
        residual = self.residuals(pose, world, pix)
        cost = float(residual @ residual)
        converged = False
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            jac = self.jacobian(pose, world)
            hessian = jac.T @ jac
            gradient = jac.T @ residual
            try:
                delta = np.linalg.solve(
                    hessian + lam * np.diag(np.diag(hessian) + 1e-12), -gradient
                )
            except np.linalg.LinAlgError as exc:
                raise GeometryError("singular normal equations in PnP") from exc
            candidate = se3_exp(delta[:3], delta[3:]).compose(pose)
            candidate_residual = self.residuals(candidate, world, pix)
            candidate_cost = float(candidate_residual @ candidate_residual)
            if candidate_cost < cost:
                pose = candidate
                improvement = cost - candidate_cost
                residual = candidate_residual
                cost = candidate_cost
                lam = max(lam * 0.5, 1e-9)
                if improvement < self.tolerance * (1.0 + cost):
                    converged = True
                    break
            else:
                lam = min(lam * 4.0, 1e6)
                if lam >= 1e6:
                    break
        rmse = float(np.sqrt(cost / max(1, world.shape[0])))
        return PnpResult(
            pose=pose,
            final_cost=cost,
            iterations=iterations,
            converged=converged,
            inlier_rmse_px=rmse,
        )


def solve_pnp(
    points_world: np.ndarray,
    pixels: np.ndarray,
    camera: PinholeCamera,
    initial_pose: Pose | None = None,
    max_iterations: int = 20,
) -> PnpResult:
    """Convenience wrapper creating an :class:`IterativePnpSolver` and solving."""
    solver = IterativePnpSolver(camera, max_iterations=max_iterations)
    return solver.solve(points_world, pixels, initial_pose=initial_pose)
