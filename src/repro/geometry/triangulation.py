"""Two-view triangulation.

The RGB-D pipeline of eSLAM gets depth directly from the sensor, but a
triangulation routine is still useful for validating map points, for tests of
the geometry stack and for running the system in a stereo-less ablation.  The
standard linear (DLT) triangulation with SVD is provided, plus a midpoint
method used as a cross-check in tests.
"""

from __future__ import annotations

import numpy as np

from ..errors import GeometryError
from .camera import PinholeCamera
from .se3 import Pose


def projection_matrix(camera: PinholeCamera, pose: Pose) -> np.ndarray:
    """Return the 3x4 projection matrix ``K [R | t]`` of a posed camera."""
    rt = np.hstack([pose.rotation, pose.translation.reshape(3, 1)])
    return camera.intrinsic_matrix() @ rt


def triangulate_dlt(
    camera: PinholeCamera,
    pose_a: Pose,
    pose_b: Pose,
    pixel_a: np.ndarray,
    pixel_b: np.ndarray,
) -> np.ndarray:
    """Linear triangulation of one point observed in two posed views.

    Returns the world-frame 3-D point.  Raises :class:`GeometryError` when the
    views are degenerate (parallel rays / identical poses).
    """
    p_a = projection_matrix(camera, pose_a)
    p_b = projection_matrix(camera, pose_b)
    u_a, v_a = float(pixel_a[0]), float(pixel_a[1])
    u_b, v_b = float(pixel_b[0]), float(pixel_b[1])
    system = np.stack(
        [
            u_a * p_a[2] - p_a[0],
            v_a * p_a[2] - p_a[1],
            u_b * p_b[2] - p_b[0],
            v_b * p_b[2] - p_b[1],
        ]
    )
    _, singular_values, vt = np.linalg.svd(system)
    if singular_values[-2] < 1e-12:
        raise GeometryError("degenerate triangulation configuration")
    homogeneous = vt[-1]
    if abs(homogeneous[3]) < 1e-12:
        raise GeometryError("triangulated point at infinity")
    return homogeneous[:3] / homogeneous[3]


def triangulate_midpoint(
    camera: PinholeCamera,
    pose_a: Pose,
    pose_b: Pose,
    pixel_a: np.ndarray,
    pixel_b: np.ndarray,
) -> np.ndarray:
    """Midpoint triangulation: closest point between the two viewing rays."""
    center_a = pose_a.camera_center()
    center_b = pose_b.camera_center()
    ray_a = pose_a.rotation.T @ camera.pixel_rays(np.asarray(pixel_a, dtype=np.float64))[0]
    ray_b = pose_b.rotation.T @ camera.pixel_rays(np.asarray(pixel_b, dtype=np.float64))[0]
    ray_a = ray_a / np.linalg.norm(ray_a)
    ray_b = ray_b / np.linalg.norm(ray_b)
    cross = np.cross(ray_a, ray_b)
    denom = float(cross @ cross)
    if denom < 1e-12:
        raise GeometryError("parallel rays cannot be triangulated")
    delta = center_b - center_a
    t_a = float(np.cross(delta, ray_b) @ cross) / denom
    t_b = float(np.cross(delta, ray_a) @ cross) / denom
    point_a = center_a + t_a * ray_a
    point_b = center_b + t_b * ray_b
    return (point_a + point_b) / 2.0


def reprojection_error(
    camera: PinholeCamera, pose: Pose, point_world: np.ndarray, pixel: np.ndarray
) -> float:
    """Euclidean pixel error of projecting ``point_world`` into the posed view."""
    projected, _ = camera.project_world_point(point_world, pose)
    return float(np.linalg.norm(projected - np.asarray(pixel, dtype=np.float64)))
