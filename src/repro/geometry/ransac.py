"""RANSAC outlier rejection for pose estimation.

RANSAC (Random Sample Consensus) is used by eSLAM's pose-estimation stage to
eliminate feature mismatches before the pose is refined.  The generic driver
here repeatedly fits a model to a minimal random sample, scores it by the
number of inliers under a pixel-error threshold, and finally refits the model
to the best inlier set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..errors import GeometryError
from .camera import PinholeCamera
from .pnp import IterativePnpSolver, estimate_pose_3d3d
from .se3 import Pose


@dataclass
class RansacResult:
    """Outcome of a RANSAC run."""

    model: Pose
    inlier_mask: np.ndarray
    num_iterations: int
    best_score: int
    success: bool

    @property
    def num_inliers(self) -> int:
        return int(self.inlier_mask.sum())

    def inlier_indices(self) -> np.ndarray:
        return np.nonzero(self.inlier_mask)[0]


@dataclass
class RansacConfig:
    """Parameters of the RANSAC loop."""

    num_iterations: int = 128
    sample_size: int = 4
    inlier_threshold_px: float = 3.0
    min_inliers: int = 8
    confidence: float = 0.99
    seed: int = 7
    refine_with_inliers: bool = True
    extra: dict = field(default_factory=dict)


def adaptive_iterations(
    inlier_ratio: float, sample_size: int, confidence: float, max_iterations: int
) -> int:
    """Standard adaptive RANSAC termination bound.

    Returns the number of iterations needed to pick at least one all-inlier
    sample with probability ``confidence`` given the current inlier ratio,
    clamped to ``max_iterations``.
    """
    if inlier_ratio <= 0.0:
        return max_iterations
    if inlier_ratio >= 1.0:
        return 1
    denom = np.log(1.0 - inlier_ratio**sample_size)
    if denom >= 0.0:
        return max_iterations
    needed = int(np.ceil(np.log(1.0 - confidence) / denom))
    return int(np.clip(needed, 1, max_iterations))


class PnpRansac:
    """RANSAC wrapper around PnP pose estimation.

    Each iteration draws a minimal sample of 3-D/2-D correspondences,
    bootstraps a pose with the 3-D/3-D Kabsch alignment (using depth of the
    observed features, the information an RGB-D frame provides), evaluates
    reprojection error over all correspondences and keeps the largest
    consensus set.  The final pose is refined on all inliers with the
    iterative PnP solver.
    """

    def __init__(self, camera: PinholeCamera, config: RansacConfig | None = None) -> None:
        self.camera = camera
        self.config = config or RansacConfig()
        self._solver = IterativePnpSolver(camera)

    def estimate(
        self,
        points_world: np.ndarray,
        pixels: np.ndarray,
        observed_depths: Optional[np.ndarray] = None,
        initial_pose: Pose | None = None,
    ) -> RansacResult:
        """Run RANSAC + PnP on the given correspondences."""
        world = np.asarray(points_world, dtype=np.float64)
        pix = np.asarray(pixels, dtype=np.float64)
        n = world.shape[0]
        if n < self.config.sample_size:
            raise GeometryError(
                f"need at least {self.config.sample_size} correspondences, got {n}"
            )
        rng = np.random.default_rng(self.config.seed)
        best_mask = np.zeros(n, dtype=bool)
        best_pose = initial_pose or Pose.identity()
        best_score = -1
        iterations_run = 0
        max_iterations = self.config.num_iterations
        threshold = self.config.inlier_threshold_px
        for iteration in range(self.config.num_iterations):
            if iteration >= max_iterations:
                break
            iterations_run = iteration + 1
            sample = rng.choice(n, size=self.config.sample_size, replace=False)
            pose = self._fit_sample(world[sample], pix[sample], observed_depths, sample, initial_pose)
            if pose is None:
                continue
            errors = self._reprojection_errors(pose, world, pix)
            mask = errors < threshold
            score = int(mask.sum())
            if score > best_score:
                best_score = score
                best_mask = mask
                best_pose = pose
                max_iterations = adaptive_iterations(
                    score / n,
                    self.config.sample_size,
                    self.config.confidence,
                    self.config.num_iterations,
                )
        success = best_score >= self.config.min_inliers
        if success and self.config.refine_with_inliers and best_mask.sum() >= 4:
            refined = self._solver.solve(
                world[best_mask], pix[best_mask], initial_pose=best_pose
            )
            errors = self._reprojection_errors(refined.pose, world, pix)
            refined_mask = errors < threshold
            if refined_mask.sum() >= best_mask.sum():
                best_pose, best_mask = refined.pose, refined_mask
            else:
                best_pose = refined.pose
        return RansacResult(
            model=best_pose,
            inlier_mask=best_mask,
            num_iterations=iterations_run,
            best_score=max(best_score, 0),
            success=success,
        )

    # -- helpers -------------------------------------------------------------
    def _fit_sample(
        self,
        world_sample: np.ndarray,
        pixel_sample: np.ndarray,
        observed_depths: Optional[np.ndarray],
        sample_indices: np.ndarray,
        initial_pose: Pose | None,
    ) -> Optional[Pose]:
        """Fit a candidate pose to a minimal sample."""
        try:
            if observed_depths is not None:
                depths = np.asarray(observed_depths, dtype=np.float64)[sample_indices]
                if np.all(depths > 0):
                    cam_points = self.camera.back_project_many(pixel_sample, depths)
                    return estimate_pose_3d3d(world_sample, cam_points)
            result = self._solver.solve(
                world_sample, pixel_sample, initial_pose=initial_pose
            )
            return result.pose
        except (GeometryError, np.linalg.LinAlgError):
            return None

    def _reprojection_errors(
        self, pose: Pose, points_world: np.ndarray, pixels: np.ndarray
    ) -> np.ndarray:
        """Per-correspondence reprojection error in pixels (inf if behind camera)."""
        points_cam = pose.transform(points_world)
        depths = points_cam[:, 2]
        errors = np.full(points_world.shape[0], np.inf)
        valid = depths > 1e-6
        if valid.any():
            projected = self.camera.project(points_cam[valid])
            errors[valid] = np.linalg.norm(projected - pixels[valid], axis=1)
        return errors


def ransac_generic(
    data_size: int,
    fit: Callable[[np.ndarray], Optional[object]],
    score: Callable[[object], np.ndarray],
    sample_size: int,
    num_iterations: int,
    inlier_threshold: float,
    seed: int = 7,
) -> tuple[Optional[object], np.ndarray]:
    """Generic RANSAC loop for arbitrary model types.

    ``fit`` maps sample indices to a model (or None); ``score`` maps a model
    to per-datum residuals.  Returns the best model and its inlier mask.
    Provided for completeness and reused by tests that exercise RANSAC with
    synthetic 1-D models.
    """
    if data_size < sample_size:
        raise GeometryError("not enough data for the requested sample size")
    rng = np.random.default_rng(seed)
    best_model: Optional[object] = None
    best_mask = np.zeros(data_size, dtype=bool)
    for _ in range(num_iterations):
        sample = rng.choice(data_size, size=sample_size, replace=False)
        model = fit(sample)
        if model is None:
            continue
        residuals = np.asarray(score(model), dtype=np.float64)
        mask = residuals < inlier_threshold
        if mask.sum() > best_mask.sum():
            best_mask = mask
            best_model = model
    return best_model, best_mask
