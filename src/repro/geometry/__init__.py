"""Geometry substrate: SE(3), camera models, PnP, RANSAC, triangulation."""

from .se3 import (
    Pose,
    hat,
    interpolate_pose,
    quaternion_from_rotation,
    rotation_from_euler,
    rotation_from_quaternion,
    se3_exp,
    se3_log,
    so3_exp,
    so3_log,
    vee,
)
from .camera import PinholeCamera
from .pnp import IterativePnpSolver, PnpResult, estimate_pose_3d3d, solve_pnp
from .ransac import PnpRansac, RansacConfig, RansacResult, adaptive_iterations, ransac_generic
from .triangulation import (
    projection_matrix,
    reprojection_error,
    triangulate_dlt,
    triangulate_midpoint,
)

__all__ = [
    "Pose",
    "hat",
    "vee",
    "so3_exp",
    "so3_log",
    "se3_exp",
    "se3_log",
    "rotation_from_euler",
    "quaternion_from_rotation",
    "rotation_from_quaternion",
    "interpolate_pose",
    "PinholeCamera",
    "IterativePnpSolver",
    "PnpResult",
    "estimate_pose_3d3d",
    "solve_pnp",
    "PnpRansac",
    "RansacConfig",
    "RansacResult",
    "adaptive_iterations",
    "ransac_generic",
    "projection_matrix",
    "reprojection_error",
    "triangulate_dlt",
    "triangulate_midpoint",
]
