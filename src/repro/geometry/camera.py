"""Pinhole camera model with depth-based back-projection.

The TUM RGB-D sequences are captured with a Kinect-style sensor; the default
intrinsics here are the standard TUM ``freiburg1`` calibration.  The camera
model provides projection (used by reprojection-error optimisation and by the
synthetic renderer) and back-projection of pixels with depth (used to create
map points from RGB-D frames).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import GeometryError
from .se3 import Pose


@dataclass(frozen=True)
class PinholeCamera:
    """A pinhole camera with focal lengths and principal point in pixels."""

    fx: float
    fy: float
    cx: float
    cy: float
    width: int = 640
    height: int = 480

    def __post_init__(self) -> None:
        if self.fx <= 0 or self.fy <= 0:
            raise GeometryError("focal lengths must be positive")
        if self.width <= 0 or self.height <= 0:
            raise GeometryError("image dimensions must be positive")

    # -- constructors -----------------------------------------------------
    @classmethod
    def tum_freiburg1(cls) -> "PinholeCamera":
        """TUM RGB-D freiburg1 default calibration (fr1 sequences)."""
        return cls(fx=517.3, fy=516.5, cx=318.6, cy=255.3, width=640, height=480)

    @classmethod
    def tum_freiburg2(cls) -> "PinholeCamera":
        """TUM RGB-D freiburg2 default calibration (fr2 sequences)."""
        return cls(fx=520.9, fy=521.0, cx=325.1, cy=249.7, width=640, height=480)

    def scaled(self, factor: float) -> "PinholeCamera":
        """Return a camera with intrinsics scaled for a resized image."""
        if factor <= 0:
            raise GeometryError("scale factor must be positive")
        return PinholeCamera(
            fx=self.fx * factor,
            fy=self.fy * factor,
            cx=self.cx * factor,
            cy=self.cy * factor,
            width=max(1, int(round(self.width * factor))),
            height=max(1, int(round(self.height * factor))),
        )

    # -- matrices -----------------------------------------------------------
    def intrinsic_matrix(self) -> np.ndarray:
        return np.array(
            [[self.fx, 0.0, self.cx], [0.0, self.fy, self.cy], [0.0, 0.0, 1.0]]
        )

    # -- projection -----------------------------------------------------------
    def project(self, points_cam: np.ndarray) -> np.ndarray:
        """Project camera-frame 3-D points to pixel coordinates.

        ``points_cam`` is ``(3,)`` or ``(N, 3)``; points must have positive
        depth.  Returns ``(2,)`` or ``(N, 2)`` pixel coordinates (not clipped
        to the image bounds -- use :meth:`is_visible` for that).
        """
        points = np.asarray(points_cam, dtype=np.float64)
        single = points.ndim == 1
        points = np.atleast_2d(points)
        z = points[:, 2]
        if np.any(z <= 0):
            raise GeometryError("cannot project points with non-positive depth")
        u = self.fx * points[:, 0] / z + self.cx
        v = self.fy * points[:, 1] / z + self.cy
        pixels = np.stack([u, v], axis=1)
        return pixels[0] if single else pixels

    def back_project(self, u: float, v: float, depth: float) -> np.ndarray:
        """Back-project a pixel with known depth to a camera-frame 3-D point."""
        if depth <= 0:
            raise GeometryError("depth must be positive")
        x = (u - self.cx) * depth / self.fx
        y = (v - self.cy) * depth / self.fy
        return np.array([x, y, depth])

    def back_project_many(self, pixels: np.ndarray, depths: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`back_project` for ``(N, 2)`` pixels and ``(N,)`` depths."""
        pixels = np.asarray(pixels, dtype=np.float64)
        depths = np.asarray(depths, dtype=np.float64)
        if pixels.ndim != 2 or pixels.shape[1] != 2 or depths.shape != (pixels.shape[0],):
            raise GeometryError("pixels must be (N, 2) and depths (N,)")
        if np.any(depths <= 0):
            raise GeometryError("all depths must be positive")
        x = (pixels[:, 0] - self.cx) * depths / self.fx
        y = (pixels[:, 1] - self.cy) * depths / self.fy
        return np.stack([x, y, depths], axis=1)

    def pixel_rays(self, pixels: np.ndarray) -> np.ndarray:
        """Return unit-depth camera-frame ray directions for ``(N, 2)`` pixels."""
        pixels = np.atleast_2d(np.asarray(pixels, dtype=np.float64))
        x = (pixels[:, 0] - self.cx) / self.fx
        y = (pixels[:, 1] - self.cy) / self.fy
        return np.stack([x, y, np.ones_like(x)], axis=1)

    # -- visibility -------------------------------------------------------------
    def is_visible(self, pixel: np.ndarray, margin: float = 0.0) -> bool:
        """Return True if ``pixel`` lies within the image bounds minus ``margin``."""
        u, v = float(pixel[0]), float(pixel[1])
        return (
            margin <= u < self.width - margin and margin <= v < self.height - margin
        )

    def project_world_point(self, point_world: np.ndarray, pose: Pose) -> Tuple[np.ndarray, float]:
        """Project a world point through ``pose``; return (pixel, depth)."""
        point_cam = pose.transform(np.asarray(point_world, dtype=np.float64))
        depth = float(point_cam[2])
        if depth <= 0:
            raise GeometryError("point is behind the camera")
        return self.project(point_cam), depth
