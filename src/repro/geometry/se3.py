"""Rigid-body transformations: SO(3) and SE(3).

The pose-estimation and pose-optimisation stages (run on the ARM host in the
paper) operate on camera poses in SE(3).  This module provides the small
Lie-group toolbox they need: rotation exponential/logarithm, quaternion
conversions, pose composition/inversion and point transformation, all backed
by numpy.

Conventions
-----------
* A pose ``T = (R, t)`` maps points from the *world* frame to the *camera*
  frame: ``p_cam = R @ p_world + t``.
* :func:`se3_exp` and :func:`se3_log` use the ``(upsilon, omega)`` ordering
  with the translational part first, passed as two explicit 3-vectors so the
  ordering can never be confused.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import GeometryError

_EPS = 1e-12


def hat(omega: np.ndarray) -> np.ndarray:
    """Return the 3x3 skew-symmetric matrix of a 3-vector."""
    omega = np.asarray(omega, dtype=np.float64).reshape(3)
    return np.array(
        [
            [0.0, -omega[2], omega[1]],
            [omega[2], 0.0, -omega[0]],
            [-omega[1], omega[0], 0.0],
        ]
    )


def vee(matrix: np.ndarray) -> np.ndarray:
    """Inverse of :func:`hat` (extract the 3-vector of a skew matrix)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    return np.array([matrix[2, 1], matrix[0, 2], matrix[1, 0]])


def so3_exp(omega: np.ndarray) -> np.ndarray:
    """Rodrigues' formula: map an axis-angle 3-vector to a rotation matrix."""
    omega = np.asarray(omega, dtype=np.float64).reshape(3)
    theta = float(np.linalg.norm(omega))
    skew = hat(omega)
    if theta < _EPS:
        return np.eye(3) + skew + 0.5 * skew @ skew
    return (
        np.eye(3)
        + (np.sin(theta) / theta) * skew
        + ((1.0 - np.cos(theta)) / (theta * theta)) * skew @ skew
    )


def so3_log(rotation: np.ndarray) -> np.ndarray:
    """Logarithm map: rotation matrix to axis-angle vector."""
    rotation = np.asarray(rotation, dtype=np.float64)
    if rotation.shape != (3, 3):
        raise GeometryError("rotation must be a 3x3 matrix")
    cos_theta = np.clip((np.trace(rotation) - 1.0) / 2.0, -1.0, 1.0)
    theta = float(np.arccos(cos_theta))
    if theta < _EPS:
        return vee(rotation - rotation.T) / 2.0
    if abs(np.pi - theta) < 1e-6:
        # near pi: extract axis from the symmetric part
        symmetric = (rotation + np.eye(3)) / 2.0
        axis = np.sqrt(np.clip(np.diag(symmetric), 0.0, None))
        # resolve signs using the off-diagonal terms
        if axis[0] > _EPS:
            axis[1] = np.sign(symmetric[0, 1]) * abs(axis[1])
            axis[2] = np.sign(symmetric[0, 2]) * abs(axis[2])
        elif axis[1] > _EPS:
            axis[2] = np.sign(symmetric[1, 2]) * abs(axis[2])
        norm = np.linalg.norm(axis)
        if norm < _EPS:
            raise GeometryError("degenerate rotation near pi")
        return theta * axis / norm
    return theta / (2.0 * np.sin(theta)) * vee(rotation - rotation.T)


def rotation_from_euler(roll: float, pitch: float, yaw: float) -> np.ndarray:
    """Build a rotation matrix from XYZ (roll-pitch-yaw) Euler angles."""
    rx = so3_exp(np.array([roll, 0.0, 0.0]))
    ry = so3_exp(np.array([0.0, pitch, 0.0]))
    rz = so3_exp(np.array([0.0, 0.0, yaw]))
    return rz @ ry @ rx


def quaternion_from_rotation(rotation: np.ndarray) -> np.ndarray:
    """Return the unit quaternion ``(qx, qy, qz, qw)`` of a rotation matrix.

    The ``(x, y, z, w)`` ordering matches the TUM trajectory file format.
    """
    rotation = np.asarray(rotation, dtype=np.float64)
    trace = np.trace(rotation)
    if trace > 0:
        s = 2.0 * np.sqrt(trace + 1.0)
        qw = 0.25 * s
        qx = (rotation[2, 1] - rotation[1, 2]) / s
        qy = (rotation[0, 2] - rotation[2, 0]) / s
        qz = (rotation[1, 0] - rotation[0, 1]) / s
    else:
        i = int(np.argmax(np.diag(rotation)))
        if i == 0:
            s = 2.0 * np.sqrt(1.0 + rotation[0, 0] - rotation[1, 1] - rotation[2, 2])
            qx = 0.25 * s
            qy = (rotation[0, 1] + rotation[1, 0]) / s
            qz = (rotation[0, 2] + rotation[2, 0]) / s
            qw = (rotation[2, 1] - rotation[1, 2]) / s
        elif i == 1:
            s = 2.0 * np.sqrt(1.0 + rotation[1, 1] - rotation[0, 0] - rotation[2, 2])
            qx = (rotation[0, 1] + rotation[1, 0]) / s
            qy = 0.25 * s
            qz = (rotation[1, 2] + rotation[2, 1]) / s
            qw = (rotation[0, 2] - rotation[2, 0]) / s
        else:
            s = 2.0 * np.sqrt(1.0 + rotation[2, 2] - rotation[0, 0] - rotation[1, 1])
            qx = (rotation[0, 2] + rotation[2, 0]) / s
            qy = (rotation[1, 2] + rotation[2, 1]) / s
            qz = 0.25 * s
            qw = (rotation[1, 0] - rotation[0, 1]) / s
    quat = np.array([qx, qy, qz, qw])
    return quat / np.linalg.norm(quat)


def rotation_from_quaternion(quaternion: np.ndarray) -> np.ndarray:
    """Return the rotation matrix of a unit quaternion ``(qx, qy, qz, qw)``."""
    q = np.asarray(quaternion, dtype=np.float64).reshape(4)
    norm = np.linalg.norm(q)
    if norm < _EPS:
        raise GeometryError("quaternion must be non-zero")
    qx, qy, qz, qw = q / norm
    return np.array(
        [
            [1 - 2 * (qy * qy + qz * qz), 2 * (qx * qy - qz * qw), 2 * (qx * qz + qy * qw)],
            [2 * (qx * qy + qz * qw), 1 - 2 * (qx * qx + qz * qz), 2 * (qy * qz - qx * qw)],
            [2 * (qx * qz - qy * qw), 2 * (qy * qz + qx * qw), 1 - 2 * (qx * qx + qy * qy)],
        ]
    )


@dataclass(frozen=True)
class Pose:
    """A rigid transform ``p_cam = R @ p_world + t`` (world-to-camera)."""

    rotation: np.ndarray
    translation: np.ndarray

    def __post_init__(self) -> None:
        rotation = np.asarray(self.rotation, dtype=np.float64)
        translation = np.asarray(self.translation, dtype=np.float64).reshape(3)
        if rotation.shape != (3, 3):
            raise GeometryError("rotation must be a 3x3 matrix")
        if abs(np.linalg.det(rotation) - 1.0) > 1e-6:
            raise GeometryError("rotation matrix determinant must be 1")
        if np.abs(rotation @ rotation.T - np.eye(3)).max() > 1e-6:
            raise GeometryError("rotation matrix must be orthonormal")
        object.__setattr__(self, "rotation", rotation)
        object.__setattr__(self, "translation", translation)

    # -- constructors ---------------------------------------------------
    @classmethod
    def identity(cls) -> "Pose":
        return cls(np.eye(3), np.zeros(3))

    @classmethod
    def from_matrix(cls, matrix: np.ndarray) -> "Pose":
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.shape != (4, 4):
            raise GeometryError("homogeneous pose matrix must be 4x4")
        return cls(matrix[:3, :3], matrix[:3, 3])

    @classmethod
    def from_rt(cls, rotation: np.ndarray, translation: np.ndarray) -> "Pose":
        return cls(rotation, translation)

    @classmethod
    def from_quaternion_translation(
        cls, quaternion: np.ndarray, translation: np.ndarray
    ) -> "Pose":
        return cls(rotation_from_quaternion(quaternion), translation)

    # -- algebra ----------------------------------------------------------
    def matrix(self) -> np.ndarray:
        out = np.eye(4)
        out[:3, :3] = self.rotation
        out[:3, 3] = self.translation
        return out

    def inverse(self) -> "Pose":
        rotation_t = self.rotation.T
        return Pose(rotation_t, -rotation_t @ self.translation)

    def compose(self, other: "Pose") -> "Pose":
        """Return ``self * other`` (apply ``other`` first, then ``self``)."""
        return Pose(
            self.rotation @ other.rotation,
            self.rotation @ other.translation + self.translation,
        )

    def __matmul__(self, other: "Pose") -> "Pose":
        return self.compose(other)

    def transform(self, points: np.ndarray) -> np.ndarray:
        """Apply the pose to one point (3,) or a point set (N, 3)."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim == 1:
            return self.rotation @ points + self.translation
        return points @ self.rotation.T + self.translation

    def relative_to(self, other: "Pose") -> "Pose":
        """Return the transform taking ``other``'s camera frame to ``self``'s."""
        return self.compose(other.inverse())

    # -- metrics ----------------------------------------------------------
    def translation_distance(self, other: "Pose") -> float:
        """Euclidean distance between the camera centres of two poses."""
        return float(np.linalg.norm(self.camera_center() - other.camera_center()))

    def rotation_angle(self, other: "Pose") -> float:
        """Geodesic rotation angle (radians) between two poses."""
        relative = self.rotation @ other.rotation.T
        return float(np.linalg.norm(so3_log(relative)))

    def camera_center(self) -> np.ndarray:
        """Return the camera centre in world coordinates."""
        return -self.rotation.T @ self.translation

    def quaternion(self) -> np.ndarray:
        return quaternion_from_rotation(self.rotation)

    def is_close(self, other: "Pose", atol: float = 1e-9) -> bool:
        return bool(
            np.allclose(self.rotation, other.rotation, atol=atol)
            and np.allclose(self.translation, other.translation, atol=atol)
        )


def se3_exp(upsilon: np.ndarray, omega: np.ndarray) -> Pose:
    """Exponential map of SE(3): ``(translation part, rotation part)`` to Pose."""
    upsilon = np.asarray(upsilon, dtype=np.float64).reshape(3)
    omega = np.asarray(omega, dtype=np.float64).reshape(3)
    theta = float(np.linalg.norm(omega))
    rotation = so3_exp(omega)
    skew = hat(omega)
    if theta < _EPS:
        v_matrix = np.eye(3) + 0.5 * skew
    else:
        v_matrix = (
            np.eye(3)
            + ((1.0 - np.cos(theta)) / (theta * theta)) * skew
            + ((theta - np.sin(theta)) / (theta**3)) * skew @ skew
        )
    return Pose(rotation, v_matrix @ upsilon)


def se3_log(pose: Pose) -> Tuple[np.ndarray, np.ndarray]:
    """Logarithm map of SE(3): Pose to ``(upsilon, omega)``."""
    omega = so3_log(pose.rotation)
    theta = float(np.linalg.norm(omega))
    skew = hat(omega)
    if theta < _EPS:
        v_inv = np.eye(3) - 0.5 * skew
    else:
        half = theta / 2.0
        cot_half = 1.0 / np.tan(half) if abs(np.tan(half)) > _EPS else 0.0
        v_inv = (
            np.eye(3)
            - 0.5 * skew
            + (1.0 / (theta * theta)) * (1.0 - (theta * cot_half) / 2.0) * skew @ skew
        )
    return v_inv @ pose.translation, omega


def interpolate_pose(pose_a: Pose, pose_b: Pose, alpha: float) -> Pose:
    """Geodesic interpolation between two poses (``alpha`` in [0, 1])."""
    if not 0.0 <= alpha <= 1.0:
        raise GeometryError("alpha must be within [0, 1]")
    relative = pose_b.compose(pose_a.inverse())
    upsilon, omega = se3_log(relative)
    step = se3_exp(alpha * upsilon, alpha * omega)
    return step.compose(pose_a)
