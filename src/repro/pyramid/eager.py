"""The eager pyramid provider: every level materialised up front.

This is the original software behaviour, kept as the reference the
``streaming`` and ``shared`` providers must match bit for bit (asserted by
``tests/test_pyramid.py``).
"""

from __future__ import annotations

from typing import Optional

from ..image import GrayImage, ImagePyramid
from .base import PyramidProvider, register_provider


@register_provider("eager")
class EagerProvider(PyramidProvider):
    """Build the whole :class:`~repro.image.ImagePyramid` per frame."""

    def acquire(
        self, image: GrayImage, frame_id: Optional[int] = None
    ) -> ImagePyramid:
        self.builds += 1
        return ImagePyramid(
            image, self.config.pyramid, min_level_size=self.min_level_size
        )
