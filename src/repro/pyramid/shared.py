"""Cross-worker pyramid cache in ``multiprocessing.shared_memory``.

A cluster worker rebuilds the pyramid per extraction exactly like the
sequential path, so serving the same frame to several engines (or fanning
one frame out to several workers) used to cost one full pyramid build per
consumer.  :class:`SharedPyramidCache` stores one built pyramid per
in-flight frame in a single shared-memory block: the first consumer (or
the producer, in the cluster) builds the levels **directly into the shared
pages**, and every other consumer attaches zero-copy numpy views over the
same physical memory — N consumers, one build.

Slots are refcounted: ``attach`` leases a slot (refcount + 1), releasing
the returned :class:`CachedPyramid` returns the lease, and ``retire``
marks a frame reclaimable once every lease is back.  Publishing reuses
empty slots first, then evicts the oldest unreferenced entry; when every
slot is leased the publish fails and the caller falls back to a local
build (the cache never blocks extraction).

All slot metadata lives in an ``int64`` header at the front of the shared
block, mutated under one ``multiprocessing`` lock, so the hit/miss/build
counters aggregate across every attached process — the cluster benchmark
reads them from the parent.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import ExtractorConfig, PyramidConfig
from ..errors import ImageError
from ..image import (
    GrayImage,
    ImagePyramid,
    pyramid_level_shapes,
    resize_nearest_into,
    validate_pyramid_base,
)
from ..image.pyramid import PyramidLevel
from .base import PyramidProvider, register_provider

# header layout (int64 words): global counters, then per-slot records
_GLOBAL_WORDS = 7
(
    _HITS,
    _MISSES,
    _PUBLISHES,
    _EVICTIONS,
    _LOCAL_BUILDS,
    _SEQ,
    _RETAINED_HITS,
) = range(_GLOBAL_WORDS)
_SLOT_WORDS = 7
(
    _S_FRAME,
    _S_REFCOUNT,
    _S_STATE,
    _S_HEIGHT,
    _S_WIDTH,
    _S_SEQ,
    _S_EXPIRY,
) = range(_SLOT_WORDS)
# RETAINED: retired under a retention TTL — still attachable (revived to
# VALID, counted as a retained hit) until the expiry passes or the slot is
# needed for a new publish
_EMPTY, _VALID, _RETIRED, _PENDING, _RETAINED = 0, 1, 2, 3, 4
_NO_FRAME = -1


def pyramid_slot_bytes(config: ExtractorConfig) -> int:
    """Bytes one cached pyramid occupies for ``config``-sized frames."""
    return sum(
        height * width
        for height, width in pyramid_level_shapes(
            config.image_height, config.image_width, config.pyramid
        )
    )


@dataclass(frozen=True)
class PyramidCacheHandle:
    """Picklable attachment handle handed to worker processes.

    Carries everything :meth:`SharedPyramidCache.attach_handle` needs:
    the shared block's system-wide name, the slot geometry, the pyramid
    configuration (level shapes are recomputed from it) and the shared
    lock.  The lock only survives pickling through process inheritance —
    pass the handle in ``Process(args=...)``, not through a queue.
    """

    name: str
    num_slots: int
    slot_bytes: int
    pyramid_config: PyramidConfig
    lock: object


class CachedPyramid(ImagePyramid):
    """A pyramid whose levels are zero-copy views of shared cache pages.

    Behaves exactly like an :class:`~repro.image.ImagePyramid`; ``close``
    returns the slot lease (idempotent).  The provider releases it after
    extraction — extraction results never reference level pixels, so the
    slot can be reused as soon as every lease is back.
    """

    def __init__(
        self,
        cache: "SharedPyramidCache",
        slot: int,
        levels: List[PyramidLevel],
        config: PyramidConfig,
    ) -> None:
        self.config = config
        self._levels = levels
        self._cache = cache
        self._slot = slot
        self._leased = True

    def close(self) -> None:
        if self._leased:
            self._leased = False
            self._cache._release_slot(self._slot)


class SharedPyramidCache:
    """Refcounted shared-memory pyramid slots, one block for all workers."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        lock,
        num_slots: int,
        slot_bytes: int,
        pyramid_config: PyramidConfig,
        owner: bool,
        retention_s: Optional[float] = None,
    ) -> None:
        self.num_slots = num_slots
        self.slot_bytes = slot_bytes
        self.pyramid_config = pyramid_config
        self.retention_s = retention_s
        self._shm = shm
        self._lock = lock
        self._owner = owner
        self._closed = False
        self._last_stats: Dict[str, object] = {}
        header_words = _GLOBAL_WORDS + _SLOT_WORDS * num_slots
        self._header = np.ndarray(header_words, dtype=np.int64, buffer=shm.buf)
        # data starts at the next 64-byte boundary after the header
        self._data_offset = ((header_words * 8 + 63) // 64) * 64

    # -- construction ------------------------------------------------------
    @classmethod
    def create(
        cls,
        config: ExtractorConfig,
        num_slots: int = 4,
        context=None,
        retention_s: Optional[float] = None,
    ) -> "SharedPyramidCache":
        """Owner-side cache sized for ``num_slots`` frames of ``config`` shape.

        ``retention_s`` turns :meth:`retire` into a session-scoped TTL:
        instead of reclaiming a frame's slot the moment its last lease is
        back, the slot is kept attachable for ``retention_s`` seconds, so
        sequential replays over the same stable frame ids (multi-engine
        comparisons, evaluation re-runs) reuse the published pyramid
        instead of rebuilding it.  Retained frames never block new work —
        a publish that needs the space evicts them like any other
        unreferenced entry.
        """
        if num_slots <= 0:
            raise ImageError("pyramid cache needs at least one slot")
        if retention_s is not None and retention_s <= 0.0:
            raise ImageError("pyramid retention_s must be positive")
        slot_bytes = pyramid_slot_bytes(config)
        header_words = _GLOBAL_WORDS + _SLOT_WORDS * num_slots
        data_offset = ((header_words * 8 + 63) // 64) * 64
        shm = shared_memory.SharedMemory(
            create=True, size=data_offset + num_slots * slot_bytes
        )
        context = context or multiprocessing.get_context()
        cache = cls(
            shm,
            context.Lock(),
            num_slots,
            slot_bytes,
            config.pyramid,
            owner=True,
            retention_s=retention_s,
        )
        cache._header[:] = 0
        for slot in range(num_slots):
            cache._slot_field_set(slot, _S_FRAME, _NO_FRAME)
        return cache

    @classmethod
    def attach_handle(cls, handle: PyramidCacheHandle) -> "SharedPyramidCache":
        """Worker-side attachment to a cache created in another process."""
        shm = shared_memory.SharedMemory(name=handle.name)
        return cls(
            shm,
            handle.lock,
            handle.num_slots,
            handle.slot_bytes,
            handle.pyramid_config,
            owner=False,
        )

    def handle(self) -> PyramidCacheHandle:
        """The picklable handle workers attach with (via ``Process`` args)."""
        return PyramidCacheHandle(
            name=self._shm.name,
            num_slots=self.num_slots,
            slot_bytes=self.slot_bytes,
            pyramid_config=self.pyramid_config,
            lock=self._lock,
        )

    def _ensure_open(self) -> None:
        if self._closed:
            raise ImageError("shared pyramid cache is closed")

    # -- header helpers (callers hold the lock) ----------------------------
    def _slot_field(self, slot: int, field: int) -> int:
        return int(self._header[_GLOBAL_WORDS + slot * _SLOT_WORDS + field])

    def _slot_field_set(self, slot: int, field: int, value: int) -> None:
        self._header[_GLOBAL_WORDS + slot * _SLOT_WORDS + field] = value

    def _level_views(self, slot: int, height: int, width: int) -> List[np.ndarray]:
        shapes = pyramid_level_shapes(height, width, self.pyramid_config)
        views = []
        offset = self._data_offset + slot * self.slot_bytes
        for shape in shapes:
            views.append(
                np.ndarray(shape, dtype=np.uint8, buffer=self._shm.buf, offset=offset)
            )
            offset += shape[0] * shape[1]
        return views

    def _find_slot(self, frame_id: int) -> Optional[int]:
        for slot in range(self.num_slots):
            if (
                self._slot_field(slot, _S_FRAME) == frame_id
                and self._slot_field(slot, _S_STATE) != _EMPTY
            ):
                return slot
        return None

    def _reclaim_slot(self, slot: int) -> None:
        self._slot_field_set(slot, _S_STATE, _EMPTY)
        self._slot_field_set(slot, _S_FRAME, _NO_FRAME)
        self._slot_field_set(slot, _S_REFCOUNT, 0)
        self._slot_field_set(slot, _S_EXPIRY, 0)

    def _retained_expired(self, slot: int) -> bool:
        """True when a RETAINED slot's TTL has passed (caller holds lock).

        Expiries are ``monotonic_ns`` deadlines — CLOCK_MONOTONIC is
        system-wide on the platforms we run on, so attached processes
        agree on them.
        """
        return time.monotonic_ns() >= self._slot_field(slot, _S_EXPIRY)

    def _revive_retained(self, slot: int) -> bool:
        """Flip one RETAINED slot back to VALID for reuse (caller holds lock).

        Returns False — after reclaiming the slot — when the TTL already
        expired.  A revived frame behaves exactly like a freshly published
        one: the next retire re-retains it with a fresh deadline.
        """
        if self._retained_expired(slot):
            self._reclaim_slot(slot)
            return False
        self._slot_field_set(slot, _S_STATE, _VALID)
        self._header[_RETAINED_HITS] += 1
        return True

    # -- cache operations --------------------------------------------------
    def publish(self, frame_id: int, pixels: np.ndarray) -> bool:
        """Build the pyramid for ``pixels`` directly into a shared slot.

        Returns False (caller builds locally) when the frame does not fit a
        slot or every slot is leased/pending; True when the frame is cached
        (including the idempotent already-cached case).  The slot is claimed
        in a PENDING state under the lock, but the level construction itself
        runs **outside** it, so workers attaching/releasing other frames are
        never stalled behind a build; attaches of a still-pending frame miss
        and fall back to a local build.
        """
        self._ensure_open()
        if frame_id < 0:
            raise ImageError("pyramid cache frame ids must be non-negative")
        if pixels.ndim != 2 or pixels.dtype != np.uint8:
            raise ImageError("pyramid cache slots carry 2-D uint8 pixel arrays")
        height, width = pixels.shape
        shapes = pyramid_level_shapes(height, width, self.pyramid_config)
        if sum(h * w for h, w in shapes) > self.slot_bytes:
            return False
        with self._lock:
            existing = self._find_slot(frame_id)
            if existing is not None:
                if self._slot_field(
                    existing, _S_STATE
                ) == _RETAINED and self._retained_expired(existing):
                    # a stale retained copy of this frame: reclaim it and
                    # republish fresh below
                    self._reclaim_slot(existing)
                else:
                    return True  # already published (or retained, still fresh)
            slot = None
            oldest_seq = None
            evicting = False
            for candidate in range(self.num_slots):
                state = self._slot_field(candidate, _S_STATE)
                if state == _EMPTY:
                    slot, evicting = candidate, False
                    break
                if state == _RETAINED and self._retained_expired(candidate):
                    # lapsed TTL: as good as empty, and preferable to
                    # evicting an entry that is still useful
                    self._reclaim_slot(candidate)
                    slot, evicting = candidate, False
                    break
                if (
                    state in (_VALID, _RETAINED)
                    and self._slot_field(candidate, _S_REFCOUNT) == 0
                ):
                    seq = self._slot_field(candidate, _S_SEQ)
                    if oldest_seq is None or seq < oldest_seq:
                        slot, oldest_seq, evicting = candidate, seq, True
            if slot is None:
                return False  # every slot leased or awaiting retirement
            if evicting:
                self._header[_EVICTIONS] += 1
            self._slot_field_set(slot, _S_FRAME, frame_id)
            self._slot_field_set(slot, _S_REFCOUNT, 0)
            self._slot_field_set(slot, _S_STATE, _PENDING)
            self._slot_field_set(slot, _S_HEIGHT, height)
            self._slot_field_set(slot, _S_WIDTH, width)
            views = self._level_views(slot, height, width)
        try:
            # the claimed slot is invisible to attach() until flipped VALID,
            # so the memcpy + resizes can safely run lock-free
            views[0][:] = pixels
            for previous, current in zip(views, views[1:]):
                resize_nearest_into(previous, self.pyramid_config.scale_factor, current)
        except BaseException:
            with self._lock:
                self._reclaim_slot(slot)
            raise
        with self._lock:
            self._slot_field_set(slot, _S_STATE, _VALID)
            self._slot_field_set(slot, _S_SEQ, int(self._header[_SEQ]))
            self._header[_SEQ] += 1
            self._header[_PUBLISHES] += 1
        return True

    def attach(
        self, frame_id: int, expected_shape: Optional[Tuple[int, int]] = None
    ) -> Optional[CachedPyramid]:
        """Lease the cached pyramid for ``frame_id``; ``None`` on miss."""
        self._ensure_open()
        with self._lock:
            slot = self._find_slot(frame_id)
            if slot is not None and self._slot_field(slot, _S_STATE) == _RETAINED:
                if not self._revive_retained(slot):
                    slot = None  # TTL lapsed between retire and this attach
            if slot is None or self._slot_field(slot, _S_STATE) != _VALID:
                self._header[_MISSES] += 1
                return None
            height = self._slot_field(slot, _S_HEIGHT)
            width = self._slot_field(slot, _S_WIDTH)
            if expected_shape is not None and (height, width) != tuple(expected_shape):
                self._header[_MISSES] += 1
                return None
            self._slot_field_set(slot, _S_REFCOUNT, self._slot_field(slot, _S_REFCOUNT) + 1)
            self._header[_HITS] += 1
            views = self._level_views(slot, height, width)
        levels = [
            PyramidLevel(index, self.pyramid_config.level_scale(index), GrayImage(view))
            for index, view in enumerate(views)
        ]
        return CachedPyramid(self, slot, levels, self.pyramid_config)

    def pin(self, frame_id: int) -> Optional[int]:
        """Take a producer-side lease on ``frame_id`` without a consumer hit.

        The cluster's zero-copy fast path pins each frame right after
        publishing it, so the slot can be neither evicted by later
        publishes nor reclaimed by a concurrent retire before the routed
        worker attaches — the pixels only live in the cache once the ring
        write is skipped.  Returns the pinned slot index (pass it to
        :meth:`unpin`) or ``None`` when the frame is not cached/valid.
        Unlike :meth:`attach`, a pin never touches the hit/miss counters:
        it is a lifetime guarantee, not a consumer.
        """
        self._ensure_open()
        with self._lock:
            slot = self._find_slot(frame_id)
            if slot is not None and self._slot_field(slot, _S_STATE) == _RETAINED:
                if not self._revive_retained(slot):
                    slot = None  # TTL lapsed between retire and this pin
            if slot is None or self._slot_field(slot, _S_STATE) != _VALID:
                return None
            self._slot_field_set(
                slot, _S_REFCOUNT, self._slot_field(slot, _S_REFCOUNT) + 1
            )
            return slot

    def unpin(self, slot: int) -> None:
        """Return a lease taken with :meth:`pin`."""
        self._release_slot(slot)

    def _release_slot(self, slot: int) -> None:
        if self._closed:
            return  # leases returned during teardown have nothing to update
        with self._lock:
            refcount = self._slot_field(slot, _S_REFCOUNT) - 1
            if refcount < 0:
                raise ImageError(f"pyramid cache slot {slot} released more than leased")
            self._slot_field_set(slot, _S_REFCOUNT, refcount)
            if refcount == 0 and self._slot_field(slot, _S_STATE) == _RETIRED:
                self._reclaim_slot(slot)

    def retire(self, frame_id: int, force: bool = False) -> None:
        """Mark ``frame_id`` reclaimable; ``force`` also voids open leases.

        The cluster server retires a frame once its result is collected
        (the worker has released by then); ``force`` handles crashed
        workers whose leases can never come back.

        With a session ``retention_s`` (see :meth:`create`), a non-forced
        retire of a fully released, valid frame keeps the slot RETAINED
        under a fresh TTL instead of reclaiming it, so a replay of the
        same frame id revives the published pyramid (``retained_hits``).
        """
        if self._closed:
            return
        with self._lock:
            slot = self._find_slot(frame_id)
            if slot is None:
                return
            if force:
                self._slot_field_set(slot, _S_REFCOUNT, 0)
            if self._slot_field(slot, _S_REFCOUNT) == 0:
                if (
                    not force
                    and self.retention_s is not None
                    and self._slot_field(slot, _S_STATE) == _VALID
                ):
                    self._slot_field_set(slot, _S_STATE, _RETAINED)
                    self._slot_field_set(
                        slot,
                        _S_EXPIRY,
                        time.monotonic_ns() + int(self.retention_s * 1e9),
                    )
                else:
                    self._reclaim_slot(slot)
            else:
                self._slot_field_set(slot, _S_STATE, _RETIRED)

    def reclaim_leaked(self) -> int:
        """Force-reclaim every occupied slot; returns how many were *leaked*.

        A slot counts as leaked when it still carries open leases — after a
        clean run every lease has been returned (pins unpinned, attaches
        closed, retires applied), so any survivor was held by a process
        that died without releasing.  The cluster server calls this during
        :meth:`~repro.cluster.ClusterServer.close` **after** joining every
        worker, feeding the count into ``ClusterStats.leaked_slots``; valid
        but unleased leftovers (ordinary cached frames) are reclaimed
        silently without counting.

        The lock is taken with a timeout as a last-ditch hardening: a
        worker SIGKILLed *inside* the lock's critical section (a window of
        a few header-word writes, microseconds wide) would orphan the lock
        forever.  By the time this runs every worker has been joined, so a
        held lock can only be that orphan — the audit then proceeds
        without it rather than hanging teardown.
        """
        if self._closed:
            return 0
        acquired = self._lock.acquire(timeout=1.0)
        try:
            leaked = 0
            for slot in range(self.num_slots):
                if self._slot_field(slot, _S_STATE) == _EMPTY:
                    continue
                if self._slot_field(slot, _S_REFCOUNT) > 0:
                    leaked += 1
                self._reclaim_slot(slot)
            return leaked
        finally:
            if acquired:
                self._lock.release()

    def record_local_build(self) -> None:
        """Count a consumer that fell back to a local build (cache miss path)."""
        if self._closed:
            return
        with self._lock:
            self._header[_LOCAL_BUILDS] += 1

    def refcount(self, frame_id: int) -> int:
        """Open leases on ``frame_id`` (0 when absent); for tests/diagnostics."""
        if self._closed:
            return 0
        with self._lock:
            slot = self._find_slot(frame_id)
            return 0 if slot is None else self._slot_field(slot, _S_REFCOUNT)

    def stats(self) -> Dict[str, object]:
        """Aggregate counters across every attached process.

        After :meth:`close` the final pre-close snapshot is returned, so
        reading a server's cache report after tearing the cluster down
        works just like reading its :class:`~repro.cluster.ClusterStats`.
        """
        if self._closed:
            return dict(self._last_stats)
        with self._lock:
            hits = int(self._header[_HITS])
            misses = int(self._header[_MISSES])
            snapshot = {
                "hits": hits,
                "misses": misses,
                "publishes": int(self._header[_PUBLISHES]),
                "evictions": int(self._header[_EVICTIONS]),
                "local_builds": int(self._header[_LOCAL_BUILDS]),
                "retained_hits": int(self._header[_RETAINED_HITS]),
                "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
                "num_slots": self.num_slots,
                "slots_in_use": sum(
                    1
                    for slot in range(self.num_slots)
                    if self._slot_field(slot, _S_STATE) != _EMPTY
                ),
            }
        return snapshot

    def register_metrics(self, registry) -> None:
        """Expose the cache counters as ``pyramid_cache_*`` callback gauges.

        Callback gauges read :meth:`stats` live at snapshot time, so the
        registry needs no mirror writes on the publish/attach hot paths —
        and keeps reporting the final pre-close snapshot after teardown.
        """

        def reader(key: str):
            def read() -> float:
                try:
                    return float(self.stats()[key])
                except Exception:
                    return 0.0

            return read

        for key, help_text in (
            ("hits", "shared-pyramid attaches served from the cache"),
            ("misses", "attach attempts that found no published pyramid"),
            ("publishes", "pyramids published into the shared cache"),
            ("evictions", "published pyramids evicted to free a slot"),
            ("local_builds", "consumer-side fallback pyramid builds"),
            ("retained_hits", "attaches served by session-retained pyramids"),
            ("slots_in_use", "cache slots currently holding a pyramid"),
        ):
            registry.gauge(f"pyramid_cache_{key}", help=help_text, fn=reader(key))

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Detach from the shared block (the owner also unlinks it)."""
        if self._closed:
            return
        self._last_stats = self.stats()  # final snapshot stays readable
        self._closed = True
        self._header = None  # drop our own exported view before unmapping
        try:
            self._shm.close()
        except BufferError:
            pass  # a CachedPyramid view is still alive; the unlink below
            # (owner) still removes the name, and the map goes with the views
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def __enter__(self) -> "SharedPyramidCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@register_provider("shared")
class SharedProvider(PyramidProvider):
    """Serve pyramids through a :class:`SharedPyramidCache`.

    With a ``frame_id`` the provider first tries to attach to an existing
    build, then to publish one into the cache for later consumers, and only
    then falls back to a private local build (recorded as ``local_builds``).
    Without a ``frame_id`` (plain ``extract`` calls) it behaves like the
    eager provider.  An injected cache (cluster workers, multi-engine
    fan-out) is shared and left open; a lazily self-created one is owned
    and unlinked on :meth:`close`.
    """

    def __init__(self, config, cache: Optional[SharedPyramidCache] = None) -> None:
        super().__init__(config, cache=cache)
        self._cache = cache
        self._owns_cache = False

    @property
    def cache(self) -> SharedPyramidCache:
        if self._cache is None:
            self._cache = SharedPyramidCache.create(self.config)
            self._owns_cache = True
        return self._cache

    def acquire(
        self, image: GrayImage, frame_id: Optional[int] = None
    ) -> ImagePyramid:
        base = validate_pyramid_base(image, self.config.pyramid, self.min_level_size)
        if frame_id is not None:
            cached = self.cache.attach(frame_id, expected_shape=base.shape)
            if cached is not None:
                return cached
            if self.cache.publish(frame_id, base.pixels):
                cached = self.cache.attach(frame_id, expected_shape=base.shape)
                if cached is not None:
                    return cached
            self.cache.record_local_build()
        self.builds += 1
        return ImagePyramid(base, self.config.pyramid)

    def release(self, pyramid: ImagePyramid) -> None:
        if isinstance(pyramid, CachedPyramid):
            pyramid.close()

    def close(self) -> None:
        if self._owns_cache and self._cache is not None:
            self._cache.close()

    def stats(self) -> Dict[str, object]:
        report = super().stats()
        if self._cache is not None:
            report.update(self._cache.stats())
        return report
