"""Streaming pyramid providers with a shared-memory cross-worker cache.

The pyramid feeding the extraction engines is delegated to a
registry-selected :class:`PyramidProvider` (``eager`` / ``streaming`` /
``shared``), named by ``ExtractorConfig.pyramid.provider`` and bit-identical
across providers.  See ``docs/pyramid.md`` for the architecture and
``benchmarks/bench_pyramid_speedup.py`` for the build-cost / cache-reuse
numbers.
"""

from .base import (
    PyramidProvider,
    available_providers,
    create_provider,
    minimum_level_size,
    register_provider,
)
from .eager import EagerProvider
from .shared import (
    CachedPyramid,
    PyramidCacheHandle,
    SharedProvider,
    SharedPyramidCache,
    pyramid_slot_bytes,
)
from .streaming import StreamingProvider, StreamingPyramid

__all__ = [
    "PyramidProvider",
    "available_providers",
    "create_provider",
    "register_provider",
    "minimum_level_size",
    "EagerProvider",
    "StreamingProvider",
    "StreamingPyramid",
    "SharedProvider",
    "SharedPyramidCache",
    "PyramidCacheHandle",
    "CachedPyramid",
    "pyramid_slot_bytes",
]
