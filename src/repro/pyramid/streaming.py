"""The streaming pyramid provider: levels built just in time, in row bands.

The paper's accelerator never materialises the whole pyramid before
extraction starts: the Image Resizing module produces layer ``k+1`` while
the ORB Extractor is still streaming layer ``k`` through the image-cache
FSM.  :class:`StreamingPyramid` is the software twin of that schedule —
level ``k+1`` is constructed only when the engine layer asks for it (i.e.
after level ``k``'s detection pass has consumed its pixels), and each level
is produced in fixed-height row bands gathered through one reused scratch
strip (:mod:`repro.image.scratch`), so construction scratch stays bounded
by a band regardless of frame size.

Banded gathers address exactly the indices the eager ``np.ix_`` gather
addresses, so every level is bit-identical to the eager build (asserted by
``tests/test_pyramid.py``).
"""

from __future__ import annotations

import threading
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..config import PyramidConfig
from ..errors import ImageError
from ..image import GrayImage, ImagePyramid, pyramid_level_shapes, resize_nearest_into
from ..image.pyramid import PyramidLevel
from ..image.scratch import Workspace
from .base import PyramidProvider, register_provider

#: Rows per construction band; one VGA band strip is ~30 KB of scratch.
DEFAULT_BAND_ROWS = 48


class StreamingPyramid(ImagePyramid):
    """An :class:`~repro.image.ImagePyramid` whose levels build on demand.

    Only level 0 exists at construction; requesting level ``k`` builds
    levels up to ``k`` band by band from their predecessors.  Workload
    statistics (:meth:`total_pixels`, :meth:`pixel_counts`) come from the
    shared level-shape arithmetic, so reading them never forces a build.
    """

    def __init__(
        self,
        base: GrayImage,
        config: PyramidConfig,
        workspace: Optional[Workspace] = None,
        band_rows: int = DEFAULT_BAND_ROWS,
    ) -> None:
        self.config = config
        self._levels: List[PyramidLevel] = [PyramidLevel(0, 1.0, base)]
        self._workspace = workspace
        self._band_rows = band_rows
        self._shapes = pyramid_level_shapes(base.height, base.width, config)

    # -- lazy construction -------------------------------------------------
    def levels_built(self) -> int:
        """How many levels exist right now (monotone, for tests/stats)."""
        return len(self._levels)

    def _build_next_level(self) -> None:
        previous = self._levels[-1]
        index = len(self._levels)
        out = np.empty(self._shapes[index], dtype=np.uint8)
        resize_nearest_into(
            previous.image.pixels,
            self.config.scale_factor,
            out,
            band_rows=self._band_rows,
            workspace=self._workspace,
        )
        self._levels.append(
            PyramidLevel(index, self.config.level_scale(index), GrayImage(out))
        )

    # -- ImagePyramid surface (lazy overrides) -----------------------------
    @property
    def num_levels(self) -> int:
        return self.config.num_levels

    def level(self, index: int) -> PyramidLevel:
        if index < 0 or index >= self.num_levels:
            raise ImageError(f"level {index} outside [0, {self.num_levels})")
        while len(self._levels) <= index:
            self._build_next_level()
        return self._levels[index]

    def __iter__(self) -> Iterator[PyramidLevel]:
        return (self.level(index) for index in range(self.num_levels))

    def __len__(self) -> int:
        return self.num_levels

    @property
    def levels(self) -> Sequence[PyramidLevel]:
        return tuple(self.level(index) for index in range(self.num_levels))

    # -- workload statistics (shape arithmetic, no pixels) -----------------
    def total_pixels(self) -> int:
        return sum(height * width for height, width in self._shapes)

    def pixel_counts(self) -> List[int]:
        return [height * width for height, width in self._shapes]

    def level_shapes(self) -> List[Tuple[int, int]]:
        """Per-level shapes (level 0 first), without building anything."""
        return list(self._shapes)


@register_provider("streaming")
class StreamingProvider(PyramidProvider):
    """Serve :class:`StreamingPyramid` instances over a per-thread workspace."""

    def __init__(self, config, cache=None) -> None:
        super().__init__(config, cache=cache)
        self._local = threading.local()

    def _workspace(self) -> Workspace:
        workspace = getattr(self._local, "workspace", None)
        if workspace is None:
            workspace = self._local.workspace = {}
        return workspace

    def acquire(
        self, image: GrayImage, frame_id: Optional[int] = None
    ) -> StreamingPyramid:
        from ..image import validate_pyramid_base

        base = validate_pyramid_base(image, self.config.pyramid, self.min_level_size)
        self.builds += 1
        return StreamingPyramid(base, self.config.pyramid, workspace=self._workspace())
