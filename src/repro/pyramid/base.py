"""Pyramid provider interface and registry.

The multi-scale pyramid feeding the extraction engines is delegated to a
pluggable **pyramid provider**, mirroring the two engine layers
(:mod:`repro.backends`, :mod:`repro.frontend`).  A provider is constructed
once from an :class:`~repro.config.ExtractorConfig` and then serves any
number of frames; three implementations are registered:

* ``eager`` -- materialises every level up front with
  :class:`repro.image.ImagePyramid`, the original software behaviour and
  the reference the other providers must match bit for bit
  (:mod:`repro.pyramid.eager`);
* ``streaming`` -- builds each level just in time, in row bands gathered
  through a reused scratch strip, while the engines consume the previous
  one — the software twin of the paper's Image Resizing module, which
  produces layer ``k+1`` while the ORB Extractor processes layer ``k``
  (:mod:`repro.pyramid.streaming`);
* ``shared`` -- a ``multiprocessing.shared_memory`` pyramid cache keyed by
  frame id, so N cluster workers or a multi-engine fan-out attach zero-copy
  to one build per frame instead of rebuilding it N times
  (:mod:`repro.pyramid.shared`).

Providers self-register through :func:`register_provider`;
``ExtractorConfig.pyramid.provider`` names the provider and
:func:`create_provider` resolves it, exactly like the engine registries.
``docs/pyramid.md`` documents the architecture.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, ClassVar, Dict, List, Optional, Type

from ..config import ExtractorConfig
from ..image import GrayImage, ImagePyramid
from ..registry import ClassRegistry


def minimum_level_size(config: ExtractorConfig) -> int:
    """Smallest side the deepest pyramid level may have under ``config``.

    The detection border and the descriptor patch both need a full window
    inside the level; a level smaller than this window can only produce
    shape errors downstream, so providers reject such images up front
    (see :func:`repro.image.validate_pyramid_base`).
    """
    border = max(config.fast.border, config.descriptor.patch_radius + 1)
    return 2 * border + 1


class PyramidProvider(ABC):
    """Pyramid construction strategy behind the ORB extractor.

    ``acquire`` hands out a pyramid for one frame and ``release`` returns
    it once extraction is done — a no-op for locally-built pyramids, a
    refcount decrement for shared-cache attachments.  Providers hold only
    immutable configuration plus thread-local scratch, so one instance can
    serve many frames in flight (:class:`repro.serving.FrameServer`).
    """

    name: ClassVar[str] = "abstract"

    def __init__(
        self, config: ExtractorConfig, cache: Optional[object] = None
    ) -> None:
        self.config = config
        self.min_level_size = minimum_level_size(config)
        self.builds = 0

    @abstractmethod
    def acquire(
        self, image: GrayImage, frame_id: Optional[int] = None
    ) -> ImagePyramid:
        """Return a pyramid over ``image`` (levels bit-identical to eager).

        ``frame_id`` keys cross-consumer reuse for the ``shared`` provider;
        the local providers ignore it.
        """

    def release(self, pyramid: ImagePyramid) -> None:
        """Return a pyramid obtained from :meth:`acquire` (default: no-op)."""

    def close(self) -> None:
        """Release provider-owned resources (default: none)."""

    def stats(self) -> Dict[str, object]:
        """Provider counters (cache providers add hit/miss columns)."""
        return {"provider": self.name, "builds": self.builds}


_REGISTRY: ClassRegistry[PyramidProvider] = ClassRegistry("pyramid provider")


def register_provider(
    name: str,
) -> Callable[[Type[PyramidProvider]], Type[PyramidProvider]]:
    """Class decorator registering a pyramid provider under ``name``."""
    return _REGISTRY.register(name)


def available_providers() -> List[str]:
    """Names of all registered pyramid providers, sorted."""
    return _REGISTRY.names()


def create_provider(
    name: str,
    config: ExtractorConfig | None = None,
    cache: Optional[object] = None,
) -> PyramidProvider:
    """Instantiate the pyramid provider registered under ``name``.

    ``cache`` optionally injects a :class:`~repro.pyramid.SharedPyramidCache`
    (or an attached handle's cache) into providers that can use one; local
    providers accept and ignore it.
    """
    return _REGISTRY.create(name, config or ExtractorConfig(), cache=cache)
