"""Per-stage runtime models for the three platforms (Table 2).

The software baselines of the paper run the full pipeline on an ARM
Cortex-A9 or an Intel i7; eSLAM offloads feature extraction (FE) and feature
matching (FM) to the FPGA while pose estimation (PE), pose optimisation (PO)
and map updating (MU) stay on the ARM host.

Because the physical boards are not available, each CPU stage is modelled as
``runtime = sum(coefficient_i * workload_i)``.  The coefficients are
calibrated once from the paper's Table 2 anchors at the nominal workload
(:data:`~repro.platforms.workload.NOMINAL_WORKLOAD`), after which runtimes
respond to the *actual* workload of a frame: more keypoints, a bigger map or
more LM iterations increase the corresponding stage time proportionally.
The eSLAM FE/FM stages use the accelerator cycle model instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..config import AcceleratorConfig, ExtractorConfig
from ..errors import PlatformModelError
from ..hw.accelerator import EslamAccelerator
from .spec import ARM_CORTEX_A9, ESLAM, INTEL_I7, PlatformSpec
from .workload import NOMINAL_WORKLOAD, FrameWorkload

#: Per-stage runtimes (milliseconds) reported in Table 2 at the nominal workload.
PAPER_STAGE_RUNTIMES_MS: Dict[str, Dict[str, float]] = {
    "ARM Cortex-A9": {
        "feature_extraction": 291.6,
        "feature_matching": 246.2,
        "pose_estimation": 9.2,
        "pose_optimization": 8.7,
        "map_updating": 9.9,
    },
    "Intel i7-4700MQ": {
        "feature_extraction": 32.5,
        "feature_matching": 19.7,
        "pose_estimation": 0.9,
        "pose_optimization": 0.5,
        "map_updating": 1.2,
    },
    "eSLAM": {
        # FE/FM come from the accelerator model; PE/PO/MU run on the same ARM host.
        "feature_extraction": 9.1,
        "feature_matching": 4.0,
        "pose_estimation": 9.2,
        "pose_optimization": 8.7,
        "map_updating": 9.9,
    },
}

#: Fraction of CPU feature-extraction time spent in the per-pixel front end
#: (FAST + Harris + smoothing) versus the per-keypoint descriptor path.
_FE_PIXEL_FRACTION = 0.65


@dataclass(frozen=True)
class StageRuntimes:
    """Per-stage runtimes of one frame on one platform (milliseconds)."""

    feature_extraction: float
    feature_matching: float
    pose_estimation: float
    pose_optimization: float
    map_updating: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "feature_extraction": self.feature_extraction,
            "feature_matching": self.feature_matching,
            "pose_estimation": self.pose_estimation,
            "pose_optimization": self.pose_optimization,
            "map_updating": self.map_updating,
        }

    @property
    def front_end_ms(self) -> float:
        """FE + FM (the part eSLAM accelerates)."""
        return self.feature_extraction + self.feature_matching

    @property
    def back_end_ms(self) -> float:
        """PE + PO (always on the host)."""
        return self.pose_estimation + self.pose_optimization


class CpuRuntimeModel:
    """Workload-proportional runtime model for a software (CPU-only) platform."""

    def __init__(self, platform: PlatformSpec) -> None:
        if platform.name not in PAPER_STAGE_RUNTIMES_MS:
            raise PlatformModelError(f"no calibration anchors for platform '{platform.name}'")
        self.platform = platform
        anchors = PAPER_STAGE_RUNTIMES_MS[platform.name]
        nominal = NOMINAL_WORKLOAD
        # feature extraction: pixel-proportional front end + keypoint-proportional
        # descriptor path
        self._fe_per_pixel_ms = (
            anchors["feature_extraction"] * _FE_PIXEL_FRACTION / nominal.pixels_processed
        )
        self._fe_per_descriptor_ms = (
            anchors["feature_extraction"]
            * (1.0 - _FE_PIXEL_FRACTION)
            / nominal.descriptors_computed
        )
        # feature matching: proportional to descriptor-pair evaluations
        self._fm_per_distance_ms = anchors["feature_matching"] / nominal.distance_evaluations
        # pose estimation: proportional to RANSAC iterations x correspondences
        self._pe_per_iteration_point_ms = anchors["pose_estimation"] / (
            nominal.ransac_iterations * nominal.correspondences
        )
        # pose optimisation: proportional to LM iterations x observations
        self._po_per_iteration_obs_ms = anchors["pose_optimization"] / (
            nominal.lm_iterations * nominal.lm_observations
        )
        # map updating: proportional to points added plus the cull scan
        self._mu_per_point_ms = anchors["map_updating"] / (
            nominal.map_points_added + nominal.map_points_culled_scan
        )

    def stage_runtimes(self, workload: FrameWorkload) -> StageRuntimes:
        """Per-stage runtimes (ms) for the given workload on this platform."""
        return StageRuntimes(
            feature_extraction=(
                self._fe_per_pixel_ms * workload.pixels_processed
                + self._fe_per_descriptor_ms * workload.descriptors_computed
            ),
            feature_matching=self._fm_per_distance_ms * workload.distance_evaluations,
            pose_estimation=self._pe_per_iteration_point_ms
            * workload.ransac_iterations
            * workload.correspondences,
            pose_optimization=self._po_per_iteration_obs_ms
            * workload.lm_iterations
            * workload.lm_observations,
            map_updating=self._mu_per_point_ms
            * (workload.map_points_added + workload.map_points_culled_scan),
        )


class EslamRuntimeModel:
    """Runtime model of the heterogeneous eSLAM system.

    FE and FM latencies come from the FPGA accelerator cycle model; PE, PO
    and MU reuse the ARM Cortex-A9 CPU model because those stages run
    unchanged on the embedded host.
    """

    def __init__(
        self,
        extractor_config: ExtractorConfig | None = None,
        accel_config: AcceleratorConfig | None = None,
    ) -> None:
        self.platform = ESLAM
        self.accelerator = EslamAccelerator(extractor_config, accel_config)
        self._host_model = CpuRuntimeModel(ARM_CORTEX_A9)

    def stage_runtimes(self, workload: FrameWorkload) -> StageRuntimes:
        host = self._host_model.stage_runtimes(workload)
        fe_ms = self.accelerator.feature_extraction_latency_ms(
            keypoints_after_nms=workload.descriptors_computed,
            descriptors_computed=workload.descriptors_computed,
        )
        fm_ms = self.accelerator.feature_matching_latency_ms(
            num_features=workload.features_retained,
            num_map_points=workload.map_points,
        )
        return StageRuntimes(
            feature_extraction=fe_ms,
            feature_matching=fm_ms,
            pose_estimation=host.pose_estimation,
            pose_optimization=host.pose_optimization,
            map_updating=host.map_updating,
        )


def runtime_model_for(platform: PlatformSpec):
    """Factory returning the right runtime model for a platform spec."""
    if platform.name == ESLAM.name:
        return EslamRuntimeModel()
    if platform.name in (ARM_CORTEX_A9.name, INTEL_I7.name):
        return CpuRuntimeModel(platform)
    raise PlatformModelError(f"unsupported platform '{platform.name}'")


def paper_stage_runtimes(platform_name: str) -> Dict[str, float]:
    """The Table 2 anchor values for a platform (for reporting/validation)."""
    if platform_name not in PAPER_STAGE_RUNTIMES_MS:
        raise PlatformModelError(f"no paper anchors for '{platform_name}'")
    return dict(PAPER_STAGE_RUNTIMES_MS[platform_name])
