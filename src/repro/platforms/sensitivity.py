"""Sensitivity analysis of the platform models.

The paper evaluates one operating point (640x480, 4-level pyramid, 1024
features, ~1500-point map).  These sweeps answer the natural follow-up
questions a user of the system would ask -- how do frame rate and energy move
as the map grows, as the feature budget changes, or as the input resolution
scales -- using exactly the same models that reproduce Tables 2 and 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..config import ExtractorConfig
from ..errors import PlatformModelError
from .pipeline import PipelineModel
from .runtime import CpuRuntimeModel, EslamRuntimeModel
from .spec import ARM_CORTEX_A9, ESLAM, INTEL_I7
from .workload import NOMINAL_WORKLOAD, FrameWorkload


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sensitivity sweep."""

    parameter: float
    runtime_ms: Dict[str, float]
    frame_rate_fps: Dict[str, float]
    energy_per_frame_mj: Dict[str, float]


class SensitivityAnalysis:
    """Parameter sweeps over the combined runtime + pipeline models."""

    def __init__(self, keyframe_ratio: float = 0.25) -> None:
        if not 0.0 <= keyframe_ratio <= 1.0:
            raise PlatformModelError("keyframe_ratio must be within [0, 1]")
        self.keyframe_ratio = keyframe_ratio
        self._models = {
            ARM_CORTEX_A9.name: CpuRuntimeModel(ARM_CORTEX_A9),
            INTEL_I7.name: CpuRuntimeModel(INTEL_I7),
            ESLAM.name: EslamRuntimeModel(),
        }
        self._pipelines = {
            name: PipelineModel(spec)
            for name, spec in (
                (ARM_CORTEX_A9.name, ARM_CORTEX_A9),
                (INTEL_I7.name, INTEL_I7),
                (ESLAM.name, ESLAM),
            )
        }

    # -- core evaluation -----------------------------------------------------------
    def evaluate(self, workload: FrameWorkload, parameter: float) -> SweepPoint:
        """Evaluate every platform at one workload point."""
        runtime: Dict[str, float] = {}
        fps: Dict[str, float] = {}
        energy: Dict[str, float] = {}
        for name, model in self._models.items():
            stages = model.stage_runtimes(workload)
            averages = self._pipelines[name].average_timing(stages, self.keyframe_ratio)
            runtime[name] = averages["runtime_ms"]
            fps[name] = averages["frame_rate_fps"]
            energy[name] = averages["energy_per_frame_mj"]
        return SweepPoint(parameter, runtime, fps, energy)

    # -- sweeps -----------------------------------------------------------------------
    def map_size_sweep(self, map_sizes: Sequence[int] = (500, 1000, 1500, 3000, 6000)) -> List[SweepPoint]:
        """How the global-map size moves frame rate (matching is O(N*M))."""
        return [
            self.evaluate(NOMINAL_WORKLOAD.with_map_points(size), float(size))
            for size in map_sizes
        ]

    def feature_budget_sweep(
        self, budgets: Sequence[int] = (256, 512, 1024, 2048)
    ) -> List[SweepPoint]:
        """How the retained-feature budget (heap capacity N) moves the numbers."""
        points = []
        for budget in budgets:
            workload = FrameWorkload(
                pixels_processed=NOMINAL_WORKLOAD.pixels_processed,
                descriptors_computed=max(budget * 2, NOMINAL_WORKLOAD.descriptors_computed),
                features_retained=budget,
                map_points=NOMINAL_WORKLOAD.map_points,
                distance_evaluations=budget * NOMINAL_WORKLOAD.map_points,
                ransac_iterations=NOMINAL_WORKLOAD.ransac_iterations,
                correspondences=min(budget, NOMINAL_WORKLOAD.correspondences),
                lm_iterations=NOMINAL_WORKLOAD.lm_iterations,
                lm_observations=min(budget, NOMINAL_WORKLOAD.lm_observations),
                map_points_added=NOMINAL_WORKLOAD.map_points_added,
                map_points_culled_scan=NOMINAL_WORKLOAD.map_points_culled_scan,
            )
            points.append(self.evaluate(workload, float(budget)))
        return points

    def resolution_sweep(
        self, scales: Sequence[float] = (0.5, 0.75, 1.0, 1.5)
    ) -> List[SweepPoint]:
        """How the input resolution (pixel count scaling) moves the numbers.

        Keypoint counts are assumed to scale with pixel count, the map and the
        back-end workloads are held fixed.
        """
        points = []
        for scale in scales:
            pixel_factor = scale * scale
            workload = FrameWorkload(
                pixels_processed=int(NOMINAL_WORKLOAD.pixels_processed * pixel_factor),
                descriptors_computed=int(NOMINAL_WORKLOAD.descriptors_computed * pixel_factor),
                features_retained=NOMINAL_WORKLOAD.features_retained,
                map_points=NOMINAL_WORKLOAD.map_points,
                distance_evaluations=NOMINAL_WORKLOAD.distance_evaluations,
                ransac_iterations=NOMINAL_WORKLOAD.ransac_iterations,
                correspondences=NOMINAL_WORKLOAD.correspondences,
                lm_iterations=NOMINAL_WORKLOAD.lm_iterations,
                lm_observations=NOMINAL_WORKLOAD.lm_observations,
                map_points_added=NOMINAL_WORKLOAD.map_points_added,
                map_points_culled_scan=NOMINAL_WORKLOAD.map_points_culled_scan,
            )
            points.append(self.evaluate(workload, scale))
        return points

    # -- derived metrics ------------------------------------------------------------
    @staticmethod
    def real_time_limit(points: Sequence[SweepPoint], platform: str, fps: float = 30.0) -> float | None:
        """Largest swept parameter at which ``platform`` still reaches ``fps``.

        Returns ``None`` if the platform never reaches the target within the sweep.
        """
        feasible = [p.parameter for p in points if p.frame_rate_fps[platform] >= fps]
        return max(feasible) if feasible else None


def eslam_accelerator_resolution_latency(scales: Sequence[float] = (0.5, 1.0, 1.5)) -> Dict[float, float]:
    """FE latency of the accelerator cycle model at several input resolutions."""
    from ..hw import EslamAccelerator
    from ..image import GrayImage

    latencies: Dict[float, float] = {}
    for scale in scales:
        width = int(640 * scale)
        height = int(480 * scale)
        accel = EslamAccelerator(
            extractor_config=ExtractorConfig(image_width=width, image_height=height)
        )
        blank = GrayImage.zeros(height, width)
        keypoints = int(2000 * scale * scale)
        latencies[scale] = accel.extractor.latency_from_profile(
            blank, keypoints_after_nms=keypoints, descriptors_computed=keypoints
        ).latency_ms
    return latencies
