"""Heterogeneous eSLAM system: functional SLAM + platform timing in one run.

:class:`HeterogeneousSlamSystem` couples the functional SLAM pipeline (which
produces real trajectories from rendered RGB-D frames) with the platform
timing models, so a single run over a synthetic sequence yields both the
accuracy results (Figure 8/9) and the modelled per-frame runtimes / energy on
ARM, Intel i7 and eSLAM (Tables 2/3) for the *measured* workloads of that
sequence rather than the nominal calibration point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..config import SlamConfig
from ..dataset import RgbdSequence
from ..slam import SlamRunResult, SlamSystem
from .pipeline import PipelineModel
from .runtime import CpuRuntimeModel, EslamRuntimeModel
from .spec import ARM_CORTEX_A9, ESLAM, INTEL_I7
from .workload import FrameWorkload


@dataclass
class FramePlatformTiming:
    """Modelled timing of one frame on every platform."""

    frame_index: int
    is_keyframe: bool
    runtime_ms: Dict[str, float]
    energy_mj: Dict[str, float]


@dataclass
class HeterogeneousRunResult:
    """Functional SLAM result plus per-frame platform timings."""

    slam: SlamRunResult
    frame_timings: List[FramePlatformTiming] = field(default_factory=list)

    def average_runtime_ms(self, platform_name: str) -> float:
        if not self.frame_timings:
            return 0.0
        return sum(t.runtime_ms[platform_name] for t in self.frame_timings) / len(
            self.frame_timings
        )

    def average_energy_mj(self, platform_name: str) -> float:
        if not self.frame_timings:
            return 0.0
        return sum(t.energy_mj[platform_name] for t in self.frame_timings) / len(
            self.frame_timings
        )

    def average_frame_rate_fps(self, platform_name: str) -> float:
        runtime = self.average_runtime_ms(platform_name)
        return 1000.0 / runtime if runtime > 0 else 0.0


class HeterogeneousSlamSystem:
    """Runs functional SLAM and annotates every frame with platform timings."""

    def __init__(self, config: SlamConfig | None = None) -> None:
        self.config = config or SlamConfig()
        self.slam = SlamSystem(self.config)
        self._models = {
            ARM_CORTEX_A9.name: CpuRuntimeModel(ARM_CORTEX_A9),
            INTEL_I7.name: CpuRuntimeModel(INTEL_I7),
            ESLAM.name: EslamRuntimeModel(self.config.extractor),
        }
        self._pipelines = {
            ARM_CORTEX_A9.name: PipelineModel(ARM_CORTEX_A9),
            INTEL_I7.name: PipelineModel(INTEL_I7),
            ESLAM.name: PipelineModel(ESLAM),
        }

    def run(self, sequence: RgbdSequence, max_frames: int | None = None) -> HeterogeneousRunResult:
        slam_result = self.slam.run(sequence, max_frames=max_frames)
        frame_timings: List[FramePlatformTiming] = []
        for tracking in slam_result.frame_results:
            workload = FrameWorkload.from_stage_workload(tracking.workload)
            runtimes: Dict[str, float] = {}
            energies: Dict[str, float] = {}
            for name, model in self._models.items():
                stages = model.stage_runtimes(workload)
                timing = self._pipelines[name].frame_timing(
                    stages, is_keyframe=tracking.is_keyframe
                )
                runtimes[name] = timing.runtime_ms
                energies[name] = timing.energy_per_frame_mj
            frame_timings.append(
                FramePlatformTiming(
                    frame_index=tracking.frame_index,
                    is_keyframe=tracking.is_keyframe,
                    runtime_ms=runtimes,
                    energy_mj=energies,
                )
            )
        return HeterogeneousRunResult(slam=slam_result, frame_timings=frame_timings)
