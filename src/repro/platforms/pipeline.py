"""Parallelised pipeline and frame-rate model (Figure 7, Table 3).

On the CPU-only platforms every stage runs sequentially, so a frame takes
``FE + FM + PE + PO`` (plus ``MU`` for key frames).  eSLAM overlaps the FPGA
and the ARM host:

* **Normal frames** -- while the ARM runs PE and PO for frame N, the FPGA
  runs FE and FM for frame N+1.  The steady-state frame time is therefore
  ``max(FE + FM, PE + PO)``.
* **Key frames** -- MU must finish before the matcher may start (the map it
  matches against is being rewritten), so only FE overlaps with PE + PO and
  the frame time is ``FM + PE + PO + MU``.

Energy per frame is platform power times frame time, exactly the arithmetic
behind Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import PlatformModelError
from .runtime import StageRuntimes
from .spec import PlatformKind, PlatformSpec


@dataclass(frozen=True)
class FrameTiming:
    """Frame time, frame rate and energy for one frame class on one platform."""

    platform: str
    frame_kind: str  # "normal" or "key"
    runtime_ms: float
    frame_rate_fps: float
    power_w: float
    energy_per_frame_mj: float


@dataclass(frozen=True)
class PipelineScheduleEntry:
    """One bar of the Figure-7 style schedule (for visualisation/benchmarks)."""

    resource: str  # "FPGA" or "ARM"
    stage: str
    start_ms: float
    end_ms: float

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


class PipelineModel:
    """Computes frame time / frame rate / energy for a platform and stage set."""

    def __init__(self, platform: PlatformSpec) -> None:
        self.platform = platform

    # -- frame time ----------------------------------------------------------
    def frame_time_ms(self, stages: StageRuntimes, is_keyframe: bool) -> float:
        """Steady-state per-frame latency under the platform's schedule."""
        if self.platform.kind is PlatformKind.CPU_ONLY:
            total = stages.front_end_ms + stages.back_end_ms
            if is_keyframe:
                total += stages.map_updating
            return total
        # heterogeneous eSLAM schedule (Figure 7)
        if is_keyframe:
            return (
                stages.feature_matching
                + stages.pose_estimation
                + stages.pose_optimization
                + stages.map_updating
            )
        return max(stages.front_end_ms, stages.back_end_ms)

    def frame_timing(self, stages: StageRuntimes, is_keyframe: bool) -> FrameTiming:
        """Frame time plus derived frame rate and energy per frame."""
        runtime_ms = self.frame_time_ms(stages, is_keyframe)
        if runtime_ms <= 0:
            raise PlatformModelError("frame runtime must be positive")
        return FrameTiming(
            platform=self.platform.name,
            frame_kind="key" if is_keyframe else "normal",
            runtime_ms=runtime_ms,
            frame_rate_fps=1000.0 / runtime_ms,
            power_w=self.platform.power_w,
            energy_per_frame_mj=self.platform.power_w * runtime_ms,
        )

    # -- average over a mix of normal and key frames ------------------------------
    def average_timing(
        self, stages: StageRuntimes, keyframe_ratio: float
    ) -> Dict[str, float]:
        """Average runtime / frame rate / energy for a given key-frame ratio."""
        if not 0.0 <= keyframe_ratio <= 1.0:
            raise PlatformModelError("keyframe_ratio must be within [0, 1]")
        normal = self.frame_timing(stages, is_keyframe=False)
        key = self.frame_timing(stages, is_keyframe=True)
        runtime = (
            keyframe_ratio * key.runtime_ms + (1.0 - keyframe_ratio) * normal.runtime_ms
        )
        return {
            "runtime_ms": runtime,
            "frame_rate_fps": 1000.0 / runtime,
            "energy_per_frame_mj": self.platform.power_w * runtime,
        }

    # -- Figure 7 schedule -------------------------------------------------------
    def schedule(self, stages: StageRuntimes, is_keyframe: bool) -> List[PipelineScheduleEntry]:
        """Build the Gantt-style schedule of one steady-state frame.

        For CPU-only platforms everything is a single serial track labelled
        by the platform name.  For eSLAM the FPGA and ARM tracks are laid out
        per Figure 7; for key frames the matcher is delayed until map
        updating completes.
        """
        entries: List[PipelineScheduleEntry] = []
        if self.platform.kind is PlatformKind.CPU_ONLY:
            cursor = 0.0
            order = [
                ("feature_extraction", stages.feature_extraction),
                ("feature_matching", stages.feature_matching),
                ("pose_estimation", stages.pose_estimation),
                ("pose_optimization", stages.pose_optimization),
            ]
            if is_keyframe:
                order.append(("map_updating", stages.map_updating))
            for stage_name, duration in order:
                entries.append(
                    PipelineScheduleEntry(self.platform.name, stage_name, cursor, cursor + duration)
                )
                cursor += duration
            return entries
        # eSLAM: the ARM processes frame N while the FPGA prepares frame N+1
        arm_cursor = 0.0
        for stage_name, duration in (
            ("pose_estimation", stages.pose_estimation),
            ("pose_optimization", stages.pose_optimization),
        ):
            entries.append(PipelineScheduleEntry("ARM", stage_name, arm_cursor, arm_cursor + duration))
            arm_cursor += duration
        if is_keyframe:
            entries.append(
                PipelineScheduleEntry(
                    "ARM", "map_updating", arm_cursor, arm_cursor + stages.map_updating
                )
            )
            mu_end = arm_cursor + stages.map_updating
            entries.append(
                PipelineScheduleEntry("FPGA", "feature_extraction", 0.0, stages.feature_extraction)
            )
            entries.append(
                PipelineScheduleEntry(
                    "FPGA",
                    "feature_matching",
                    mu_end,
                    mu_end + stages.feature_matching,
                )
            )
        else:
            entries.append(
                PipelineScheduleEntry("FPGA", "feature_extraction", 0.0, stages.feature_extraction)
            )
            entries.append(
                PipelineScheduleEntry(
                    "FPGA",
                    "feature_matching",
                    stages.feature_extraction,
                    stages.feature_extraction + stages.feature_matching,
                )
            )
        return entries

    def makespan_ms(self, stages: StageRuntimes, is_keyframe: bool) -> float:
        """End time of the last scheduled stage (equals frame_time for eSLAM)."""
        entries = self.schedule(stages, is_keyframe)
        return max(entry.end_ms for entry in entries)
