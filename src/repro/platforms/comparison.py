"""Cross-platform comparison harness (Tables 2 and 3).

Bundles the runtime models and pipeline models of the three platforms and
produces the comparison tables of the paper's evaluation: the per-stage
runtime breakdown (Table 2) and the frame-rate / power / energy-per-frame
table (Table 3), along with the speedup and energy-efficiency ratios quoted
in the abstract and Section 4.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .pipeline import FrameTiming, PipelineModel
from .runtime import CpuRuntimeModel, EslamRuntimeModel, StageRuntimes
from .spec import ARM_CORTEX_A9, ESLAM, INTEL_I7, PlatformSpec
from .workload import NOMINAL_WORKLOAD, FrameWorkload


@dataclass
class PlatformComparison:
    """Comparison of the three paper platforms on a common workload."""

    workload: FrameWorkload = field(default_factory=lambda: NOMINAL_WORKLOAD)

    def __post_init__(self) -> None:
        self._models = {
            ARM_CORTEX_A9.name: CpuRuntimeModel(ARM_CORTEX_A9),
            INTEL_I7.name: CpuRuntimeModel(INTEL_I7),
            ESLAM.name: EslamRuntimeModel(),
        }
        self._specs: Dict[str, PlatformSpec] = {
            ARM_CORTEX_A9.name: ARM_CORTEX_A9,
            INTEL_I7.name: INTEL_I7,
            ESLAM.name: ESLAM,
        }

    # -- Table 2 --------------------------------------------------------------
    def stage_runtimes(self) -> Dict[str, StageRuntimes]:
        """Per-stage runtime breakdown for every platform (Table 2)."""
        return {
            name: model.stage_runtimes(self.workload)
            for name, model in self._models.items()
        }

    def runtime_table(self) -> List[Dict[str, object]]:
        """Table-2-shaped rows: one row per stage, one column per platform."""
        runtimes = self.stage_runtimes()
        stage_names = [
            "feature_extraction",
            "feature_matching",
            "pose_estimation",
            "pose_optimization",
            "map_updating",
        ]
        rows = []
        for stage in stage_names:
            row: Dict[str, object] = {"stage": stage}
            for platform_name in (ESLAM.name, ARM_CORTEX_A9.name, INTEL_I7.name):
                row[platform_name] = runtimes[platform_name].as_dict()[stage]
            rows.append(row)
        return rows

    # -- Table 3 --------------------------------------------------------------
    def frame_timings(self) -> Dict[str, Dict[str, FrameTiming]]:
        """Normal-frame and key-frame timings for every platform (Table 3)."""
        results: Dict[str, Dict[str, FrameTiming]] = {}
        runtimes = self.stage_runtimes()
        for name, spec in self._specs.items():
            pipeline = PipelineModel(spec)
            results[name] = {
                "normal": pipeline.frame_timing(runtimes[name], is_keyframe=False),
                "key": pipeline.frame_timing(runtimes[name], is_keyframe=True),
            }
        return results

    def energy_table(self) -> List[Dict[str, object]]:
        """Table-3-shaped rows (runtime, frame rate, power, energy per frame)."""
        timings = self.frame_timings()
        rows: List[Dict[str, object]] = []
        for metric in ("runtime_ms", "frame_rate_fps", "power_w", "energy_per_frame_mj"):
            for frame_kind in ("normal", "key"):
                if metric == "power_w" and frame_kind == "key":
                    continue  # power is frame-kind independent
                row: Dict[str, object] = {
                    "metric": metric,
                    "frame_kind": frame_kind if metric != "power_w" else "-",
                }
                for platform_name in (ARM_CORTEX_A9.name, INTEL_I7.name, ESLAM.name):
                    timing = timings[platform_name][frame_kind]
                    row[platform_name] = getattr(timing, metric)
                rows.append(row)
        return rows

    # -- headline ratios --------------------------------------------------------
    def speedups(self) -> Dict[str, Dict[str, float]]:
        """Frame-rate speedups of eSLAM over the CPU platforms."""
        timings = self.frame_timings()
        ratios: Dict[str, Dict[str, float]] = {}
        for baseline in (ARM_CORTEX_A9.name, INTEL_I7.name):
            ratios[baseline] = {
                frame_kind: (
                    timings[baseline][frame_kind].runtime_ms
                    / timings[ESLAM.name][frame_kind].runtime_ms
                )
                for frame_kind in ("normal", "key")
            }
        return ratios

    def energy_improvements(self) -> Dict[str, Dict[str, float]]:
        """Energy-per-frame improvements of eSLAM over the CPU platforms."""
        timings = self.frame_timings()
        ratios: Dict[str, Dict[str, float]] = {}
        for baseline in (ARM_CORTEX_A9.name, INTEL_I7.name):
            ratios[baseline] = {
                frame_kind: (
                    timings[baseline][frame_kind].energy_per_frame_mj
                    / timings[ESLAM.name][frame_kind].energy_per_frame_mj
                )
                for frame_kind in ("normal", "key")
            }
        return ratios

    def stage_speedups(self) -> Dict[str, Dict[str, float]]:
        """FE / FM stage speedups of eSLAM over the CPU platforms (Section 4.3)."""
        runtimes = self.stage_runtimes()
        eslam = runtimes[ESLAM.name]
        out: Dict[str, Dict[str, float]] = {}
        for baseline in (ARM_CORTEX_A9.name, INTEL_I7.name):
            base = runtimes[baseline]
            out[baseline] = {
                "feature_extraction": base.feature_extraction / eslam.feature_extraction,
                "feature_matching": base.feature_matching / eslam.feature_matching,
            }
        return out
