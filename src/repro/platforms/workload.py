"""Workload description shared by all platform runtime models.

A :class:`FrameWorkload` captures, in platform-independent units, how much
work one frame requires in each pipeline stage.  The CPU runtime models and
the accelerator cycle model both consume the same workload, which is what
makes the cross-platform comparison (Tables 2 and 3) an apples-to-apples
comparison of *architectures* rather than of implementations.

:data:`NOMINAL_WORKLOAD` is the calibration anchor: a typical TUM frame at
640x480 with a 4-level pyramid, ~2000 surviving keypoints, the 1024-feature
heap limit and a ~1500-point local map, which is the operating point at which
the per-stage runtimes of Table 2 were reported.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import PlatformModelError
from ..slam.tracker import StageWorkload


@dataclass(frozen=True)
class FrameWorkload:
    """Per-frame workload in architecture-neutral units."""

    # feature extraction
    pixels_processed: int = 771_000
    descriptors_computed: int = 2_000
    features_retained: int = 1_024
    # feature matching
    map_points: int = 1_500
    distance_evaluations: int = 1_536_000
    # pose estimation
    ransac_iterations: int = 128
    correspondences: int = 300
    # pose optimisation
    lm_iterations: int = 15
    lm_observations: int = 250
    # map updating
    map_points_added: int = 400
    map_points_culled_scan: int = 1_500

    def __post_init__(self) -> None:
        for field_name, value in vars(self).items():
            if value < 0:
                raise PlatformModelError(f"workload field '{field_name}' must be non-negative")

    def scaled(self, factor: float) -> "FrameWorkload":
        """Uniformly scale every counter (used by sensitivity sweeps)."""
        if factor <= 0:
            raise PlatformModelError("scale factor must be positive")
        return FrameWorkload(
            **{name: int(round(value * factor)) for name, value in vars(self).items()}
        )

    def with_map_points(self, map_points: int) -> "FrameWorkload":
        """Return a copy with a different map size (updates distance evals too)."""
        return replace(
            self,
            map_points=map_points,
            distance_evaluations=self.features_retained * map_points,
        )

    @classmethod
    def from_stage_workload(cls, stage: StageWorkload) -> "FrameWorkload":
        """Convert the counters measured by the functional SLAM tracker."""
        return cls(
            pixels_processed=stage.pixels_processed,
            descriptors_computed=max(stage.descriptors_computed, 1),
            features_retained=max(stage.features_retained, 1),
            map_points=max(stage.map_points_matched_against, 1),
            distance_evaluations=max(stage.distance_evaluations, 1),
            ransac_iterations=max(stage.ransac_iterations, 1),
            correspondences=max(stage.matches_accepted, 1),
            lm_iterations=max(stage.lm_iterations, 1),
            lm_observations=max(stage.lm_observations, 1),
            map_points_added=stage.map_points_added,
            map_points_culled_scan=max(stage.map_size_after, 1),
        )


#: Calibration anchor for the paper's reported per-stage runtimes (Table 2).
NOMINAL_WORKLOAD = FrameWorkload()
