"""Platform models: runtime, power, pipeline scheduling and comparisons."""

from .spec import ARM_CORTEX_A9, ESLAM, INTEL_I7, PlatformKind, PlatformSpec, platform_by_name
from .workload import NOMINAL_WORKLOAD, FrameWorkload
from .runtime import (
    PAPER_STAGE_RUNTIMES_MS,
    CpuRuntimeModel,
    EslamRuntimeModel,
    StageRuntimes,
    paper_stage_runtimes,
    runtime_model_for,
)
from .pipeline import FrameTiming, PipelineModel, PipelineScheduleEntry
from .comparison import PlatformComparison
from .heterogeneous import (
    FramePlatformTiming,
    HeterogeneousRunResult,
    HeterogeneousSlamSystem,
)
from .sensitivity import (
    SensitivityAnalysis,
    SweepPoint,
    eslam_accelerator_resolution_latency,
)

__all__ = [
    "SensitivityAnalysis",
    "SweepPoint",
    "eslam_accelerator_resolution_latency",
    "PlatformSpec",
    "PlatformKind",
    "ARM_CORTEX_A9",
    "INTEL_I7",
    "ESLAM",
    "platform_by_name",
    "FrameWorkload",
    "NOMINAL_WORKLOAD",
    "CpuRuntimeModel",
    "EslamRuntimeModel",
    "StageRuntimes",
    "runtime_model_for",
    "paper_stage_runtimes",
    "PAPER_STAGE_RUNTIMES_MS",
    "FrameTiming",
    "PipelineModel",
    "PipelineScheduleEntry",
    "PlatformComparison",
    "HeterogeneousSlamSystem",
    "HeterogeneousRunResult",
    "FramePlatformTiming",
]
