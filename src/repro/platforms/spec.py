"""Platform specifications: the three systems compared in the paper.

Table 3 compares eSLAM against software implementations on the Zynq's ARM
Cortex-A9 (767 MHz) and an Intel i7-4700MQ.  Power figures are the paper's
measured board/package power; they drive the energy-per-frame computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import PlatformModelError


class PlatformKind(Enum):
    """How the SLAM stages are executed on a platform."""

    CPU_ONLY = "cpu_only"
    HETEROGENEOUS = "heterogeneous"


@dataclass(frozen=True)
class PlatformSpec:
    """Static description of an evaluation platform."""

    name: str
    kind: PlatformKind
    clock_hz: float
    power_w: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise PlatformModelError("clock frequency must be positive")
        if self.power_w <= 0:
            raise PlatformModelError("power must be positive")


#: The Zynq XCZ7045's embedded ARM Cortex-A9 host (767 MHz, 1.574 W).
ARM_CORTEX_A9 = PlatformSpec(
    name="ARM Cortex-A9",
    kind=PlatformKind.CPU_ONLY,
    clock_hz=767e6,
    power_w=1.574,
    description="Zynq XCZ7045 PS running the full pipeline in software",
)

#: Intel i7-4700MQ desktop-class CPU (47 W TDP as used in Table 3).
INTEL_I7 = PlatformSpec(
    name="Intel i7-4700MQ",
    kind=PlatformKind.CPU_ONLY,
    clock_hz=2.4e9,
    power_w=47.0,
    description="Laptop-class x86 CPU running the full pipeline in software",
)

#: eSLAM: ARM host + FPGA accelerators at 100 MHz (1.936 W total).
ESLAM = PlatformSpec(
    name="eSLAM",
    kind=PlatformKind.HETEROGENEOUS,
    clock_hz=100e6,
    power_w=1.936,
    description="Zynq XCZ7045: FE/FM on programmable logic, PE/PO/MU on the ARM host",
)


def platform_by_name(name: str) -> PlatformSpec:
    """Look up one of the three paper platforms by (case-insensitive) name."""
    table = {
        spec.name.lower(): spec
        for spec in (ARM_CORTEX_A9, INTEL_I7, ESLAM)
    }
    aliases = {
        "arm": ARM_CORTEX_A9,
        "arm cortex-a9": ARM_CORTEX_A9,
        "cortex-a9": ARM_CORTEX_A9,
        "i7": INTEL_I7,
        "intel i7": INTEL_I7,
        "intel i7-4700mq": INTEL_I7,
        "eslam": ESLAM,
    }
    key = name.lower()
    if key in table:
        return table[key]
    if key in aliases:
        return aliases[key]
    raise PlatformModelError(f"unknown platform '{name}'")
