"""Optimisation substrate: Levenberg-Marquardt and pose-only bundle adjustment."""

from .levenberg_marquardt import (
    LMConfig,
    LMHistoryEntry,
    LMResult,
    LevenbergMarquardt,
    numerical_jacobian,
)
from .reprojection import ReprojectionProblem, huber_weights
from .pose_optimizer import PoseOptimizationResult, PoseOptimizer, optimize_pose

__all__ = [
    "LMConfig",
    "LMHistoryEntry",
    "LMResult",
    "LevenbergMarquardt",
    "numerical_jacobian",
    "ReprojectionProblem",
    "huber_weights",
    "PoseOptimizationResult",
    "PoseOptimizer",
    "optimize_pose",
]
