"""Pose-only bundle adjustment (the Pose Optimization stage).

Given the pose produced by PnP + RANSAC, eSLAM refines it by minimising the
reprojection error of all inlier map-point observations with
Levenberg-Marquardt.  This module wires the :class:`ReprojectionProblem`
residuals/Jacobian into the generic LM driver, optionally with Huber robust
weighting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import OptimizationError
from ..geometry import PinholeCamera, Pose, se3_exp
from .levenberg_marquardt import LMConfig, LevenbergMarquardt, LMResult
from .reprojection import ReprojectionProblem, huber_weights


@dataclass
class PoseOptimizationResult:
    """Refined pose plus convergence diagnostics."""

    pose: Pose
    initial_rmse_px: float
    final_rmse_px: float
    iterations: int
    converged: bool
    cost_reduction: float


class PoseOptimizer:
    """Levenberg-Marquardt refinement of a camera pose.

    Parameters
    ----------
    camera:
        Pinhole intrinsics of the frame being optimised.
    max_iterations:
        LM iteration cap (the paper's host runs a fixed small number of
        iterations per frame; 15-30 is typical).
    robust_delta_px:
        Huber threshold in pixels, or ``None`` to use plain least squares.
    """

    def __init__(
        self,
        camera: PinholeCamera,
        max_iterations: int = 20,
        robust_delta_px: Optional[float] = 5.0,
    ) -> None:
        self.camera = camera
        self.max_iterations = max_iterations
        self.robust_delta_px = robust_delta_px

    def optimize(
        self,
        points_world: np.ndarray,
        observations: np.ndarray,
        initial_pose: Pose,
    ) -> PoseOptimizationResult:
        """Refine ``initial_pose`` against the given observations."""
        problem = ReprojectionProblem(self.camera, points_world, observations)
        if problem.num_observations < 3:
            raise OptimizationError("pose optimisation needs at least 3 observations")
        weights_fn = None
        if self.robust_delta_px is not None:
            delta = self.robust_delta_px
            weights_fn = lambda residual: huber_weights(residual, delta)  # noqa: E731

        def update(pose: Pose, increment: np.ndarray) -> Pose:
            return se3_exp(increment[:3], increment[3:]).compose(pose)

        optimizer = LevenbergMarquardt(
            residual_fn=problem.residuals,
            update_fn=update,
            parameter_dim=6,
            jacobian_fn=problem.jacobian,
            weights_fn=weights_fn,
            config=LMConfig(max_iterations=self.max_iterations),
        )
        initial_rmse = problem.rmse(initial_pose)
        result: LMResult[Pose] = optimizer.optimize(initial_pose)
        return PoseOptimizationResult(
            pose=result.parameters,
            initial_rmse_px=initial_rmse,
            final_rmse_px=problem.rmse(result.parameters),
            iterations=result.iterations,
            converged=result.converged,
            cost_reduction=result.cost_reduction,
        )


def optimize_pose(
    camera: PinholeCamera,
    points_world: np.ndarray,
    observations: np.ndarray,
    initial_pose: Pose,
    max_iterations: int = 20,
) -> PoseOptimizationResult:
    """Convenience wrapper around :class:`PoseOptimizer`."""
    return PoseOptimizer(camera, max_iterations=max_iterations).optimize(
        points_world, observations, initial_pose
    )
