"""Generic Levenberg-Marquardt optimiser.

Pose optimisation in eSLAM minimises the reprojection error of observed map
points with the Levenberg-Marquardt method (equation (1) and reference [7]).
This module implements a problem-agnostic LM driver over a user-supplied
residual function, parameter-update rule and (optionally analytic) Jacobian;
:mod:`repro.optimization.pose_optimizer` instantiates it on SE(3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, List, Optional, TypeVar

import numpy as np

from ..errors import OptimizationError

P = TypeVar("P")

ResidualFn = Callable[[P], np.ndarray]
JacobianFn = Callable[[P], np.ndarray]
UpdateFn = Callable[[P, np.ndarray], P]


@dataclass
class LMConfig:
    """Levenberg-Marquardt hyper-parameters."""

    max_iterations: int = 30
    initial_lambda: float = 1e-3
    lambda_decrease: float = 0.5
    lambda_increase: float = 4.0
    min_lambda: float = 1e-9
    max_lambda: float = 1e7
    cost_tolerance: float = 1e-10
    step_tolerance: float = 1e-12


@dataclass
class LMHistoryEntry:
    """Cost and damping value after one accepted or rejected step."""

    iteration: int
    cost: float
    lambda_value: float
    accepted: bool


@dataclass
class LMResult(Generic[P]):
    """Final state of a Levenberg-Marquardt run."""

    parameters: P
    cost: float
    initial_cost: float
    iterations: int
    converged: bool
    history: List[LMHistoryEntry]

    @property
    def cost_reduction(self) -> float:
        return self.initial_cost - self.cost


def numerical_jacobian(
    residual_fn: ResidualFn[P],
    update_fn: UpdateFn[P],
    parameters: P,
    dim: int,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central-difference Jacobian of ``residual_fn`` wrt a ``dim``-vector increment.

    Used as a fallback when no analytic Jacobian is supplied and by tests to
    validate analytic Jacobians.
    """
    base = residual_fn(parameters)
    jac = np.zeros((base.size, dim))
    for k in range(dim):
        delta = np.zeros(dim)
        delta[k] = epsilon
        plus = residual_fn(update_fn(parameters, delta))
        minus = residual_fn(update_fn(parameters, -delta))
        jac[:, k] = (plus - minus) / (2.0 * epsilon)
    return jac


class LevenbergMarquardt(Generic[P]):
    """Damped Gauss-Newton minimisation of ``0.5 * ||r(p)||^2``.

    Parameters are an opaque type ``P`` updated through ``update_fn(p, delta)``
    where ``delta`` is a local increment of dimension ``parameter_dim`` --
    this accommodates manifold parameters such as SE(3) poses.
    """

    def __init__(
        self,
        residual_fn: ResidualFn[P],
        update_fn: UpdateFn[P],
        parameter_dim: int,
        jacobian_fn: Optional[JacobianFn[P]] = None,
        weights_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        config: LMConfig | None = None,
    ) -> None:
        if parameter_dim <= 0:
            raise OptimizationError("parameter_dim must be positive")
        self.residual_fn = residual_fn
        self.update_fn = update_fn
        self.parameter_dim = parameter_dim
        self.jacobian_fn = jacobian_fn
        self.weights_fn = weights_fn
        self.config = config or LMConfig()

    def _jacobian(self, parameters: P) -> np.ndarray:
        if self.jacobian_fn is not None:
            return self.jacobian_fn(parameters)
        return numerical_jacobian(
            self.residual_fn, self.update_fn, parameters, self.parameter_dim
        )

    def _weighted(self, residual: np.ndarray, jac: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if self.weights_fn is None:
            return residual, jac
        weights = np.sqrt(np.maximum(self.weights_fn(residual), 0.0))
        return residual * weights, jac * weights[:, np.newaxis]

    def optimize(self, initial_parameters: P) -> LMResult[P]:
        """Run the damped iteration until convergence or the iteration cap."""
        cfg = self.config
        parameters = initial_parameters
        residual = np.asarray(self.residual_fn(parameters), dtype=np.float64)
        if residual.ndim != 1:
            raise OptimizationError("residual function must return a 1-D array")
        cost = float(residual @ residual)
        initial_cost = cost
        lam = cfg.initial_lambda
        history: List[LMHistoryEntry] = []
        converged = False
        iterations = 0
        for iterations in range(1, cfg.max_iterations + 1):
            jac = self._jacobian(parameters)
            if jac.shape != (residual.size, self.parameter_dim):
                raise OptimizationError(
                    f"jacobian shape {jac.shape} does not match "
                    f"({residual.size}, {self.parameter_dim})"
                )
            weighted_residual, weighted_jac = self._weighted(residual, jac)
            hessian = weighted_jac.T @ weighted_jac
            gradient = weighted_jac.T @ weighted_residual
            damping = lam * np.diag(np.diag(hessian) + 1e-12)
            try:
                delta = np.linalg.solve(hessian + damping, -gradient)
            except np.linalg.LinAlgError as exc:
                raise OptimizationError("singular normal equations") from exc
            if float(np.linalg.norm(delta)) < cfg.step_tolerance:
                converged = True
                history.append(LMHistoryEntry(iterations, cost, lam, False))
                break
            candidate = self.update_fn(parameters, delta)
            candidate_residual = np.asarray(self.residual_fn(candidate), dtype=np.float64)
            candidate_cost = float(candidate_residual @ candidate_residual)
            accepted = candidate_cost < cost
            history.append(LMHistoryEntry(iterations, min(candidate_cost, cost), lam, accepted))
            if accepted:
                improvement = cost - candidate_cost
                parameters = candidate
                residual = candidate_residual
                cost = candidate_cost
                lam = max(lam * cfg.lambda_decrease, cfg.min_lambda)
                if improvement <= cfg.cost_tolerance * (1.0 + cost):
                    converged = True
                    break
            else:
                lam = lam * cfg.lambda_increase
                if lam > cfg.max_lambda:
                    break
        return LMResult(
            parameters=parameters,
            cost=cost,
            initial_cost=initial_cost,
            iterations=iterations,
            converged=converged,
            history=history,
        )
