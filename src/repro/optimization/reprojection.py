"""Reprojection error terms and robust weights.

The pose-optimisation objective of eSLAM is the sum of squared reprojection
errors E = sum_i || c_i - h(g_i, p) ||^2 over the matched map points g_i with
pixel observations c_i and camera pose p (equation (1)).  This module builds
the residual vector, the analytic Jacobian with respect to an SE(3) increment
and the Huber robust weights used to soften surviving mismatches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import OptimizationError
from ..geometry import PinholeCamera, Pose


@dataclass(frozen=True)
class ReprojectionProblem:
    """Observations of known 3-D world points from a single camera pose.

    Attributes
    ----------
    camera:
        The pinhole intrinsics.
    points_world:
        ``(N, 3)`` world coordinates of the matched map points.
    observations:
        ``(N, 2)`` pixel coordinates of the matched features in the frame.
    """

    camera: PinholeCamera
    points_world: np.ndarray
    observations: np.ndarray

    def __post_init__(self) -> None:
        points = np.asarray(self.points_world, dtype=np.float64)
        pixels = np.asarray(self.observations, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise OptimizationError("points_world must be (N, 3)")
        if pixels.shape != (points.shape[0], 2):
            raise OptimizationError("observations must be (N, 2) matching points_world")
        if points.shape[0] == 0:
            raise OptimizationError("problem must contain at least one observation")
        object.__setattr__(self, "points_world", points)
        object.__setattr__(self, "observations", pixels)

    @property
    def num_observations(self) -> int:
        return int(self.points_world.shape[0])

    # -- residuals -----------------------------------------------------------
    def residuals(self, pose: Pose) -> np.ndarray:
        """Return the stacked ``2N`` residual vector ``projection - observation``."""
        points_cam = pose.transform(self.points_world)
        depths = np.maximum(points_cam[:, 2], 1e-9)
        u = self.camera.fx * points_cam[:, 0] / depths + self.camera.cx
        v = self.camera.fy * points_cam[:, 1] / depths + self.camera.cy
        residual = np.stack([u, v], axis=1) - self.observations
        return residual.reshape(-1)

    def total_error(self, pose: Pose) -> float:
        """Return E(p): the sum of squared reprojection errors."""
        residual = self.residuals(pose)
        return float(residual @ residual)

    def rmse(self, pose: Pose) -> float:
        """Root-mean-square pixel error over all observations."""
        residual = self.residuals(pose).reshape(-1, 2)
        return float(np.sqrt((residual**2).sum(axis=1).mean()))

    # -- jacobian --------------------------------------------------------------
    def jacobian(self, pose: Pose) -> np.ndarray:
        """Analytic ``(2N, 6)`` Jacobian wrt a left-multiplied SE(3) increment.

        The increment ordering is ``(v, w)``: translational part first,
        matching :func:`repro.geometry.se3_exp`.
        """
        points_cam = pose.transform(self.points_world)
        x = points_cam[:, 0]
        y = points_cam[:, 1]
        z = np.maximum(points_cam[:, 2], 1e-9)
        inv_z = 1.0 / z
        inv_z2 = inv_z * inv_z
        fx, fy = self.camera.fx, self.camera.fy
        n = self.num_observations
        jac = np.zeros((2 * n, 6))
        jac[0::2, 0] = fx * inv_z
        jac[0::2, 2] = -fx * x * inv_z2
        jac[0::2, 3] = -fx * x * y * inv_z2
        jac[0::2, 4] = fx * (1.0 + x * x * inv_z2)
        jac[0::2, 5] = -fx * y * inv_z
        jac[1::2, 1] = fy * inv_z
        jac[1::2, 2] = -fy * y * inv_z2
        jac[1::2, 3] = -fy * (1.0 + y * y * inv_z2)
        jac[1::2, 4] = fy * x * y * inv_z2
        jac[1::2, 5] = fy * x * inv_z
        return jac


def huber_weights(residuals: np.ndarray, delta: float = 5.0) -> np.ndarray:
    """Per-residual Huber weights for iteratively-reweighted least squares.

    Residuals are interpreted pairwise (u, v) per observation; both components
    of one observation receive the same weight derived from the observation's
    Euclidean pixel error.
    """
    if delta <= 0:
        raise OptimizationError("Huber delta must be positive")
    residuals = np.asarray(residuals, dtype=np.float64)
    if residuals.size % 2 != 0:
        raise OptimizationError("residual vector length must be even (u, v pairs)")
    errors = np.linalg.norm(residuals.reshape(-1, 2), axis=1)
    weights = np.ones_like(errors)
    large = errors > delta
    weights[large] = delta / errors[large]
    return np.repeat(weights, 2)
