"""The per-stage reference detection engine (bit-exact ground truth).

Composes the original full-map functions exactly as the extractor did before
the engine layer existed: :func:`fast_corner_mask` builds a whole-image
corner map, :func:`harris_response_map` scores **every** pixel,
:func:`non_maximum_suppression` suppresses on the dense maps and
:func:`gaussian_blur` smooths with the rolled separable convolution.  The
``vectorized`` engine must reproduce this output bit for bit
(``tests/test_frontend_parity.py``).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..features.fast import fast_corner_mask
from ..features.harris import harris_response_map
from ..features.nms import non_maximum_suppression
from ..image import GrayImage
from ..image.filters import gaussian_blur
from .base import DetectionEngine, register_engine


@register_engine("reference")
class ReferenceEngine(DetectionEngine):
    """Dense per-stage detection: full corner map, full Harris map, dense NMS."""

    def detect_with_count(
        self, level_image: GrayImage
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        corner_mask = fast_corner_mask(level_image, self.config.fast)
        corners_detected = int(corner_mask.sum())
        if corners_detected == 0:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.float64),
                0,
            )
        scores = harris_response_map(level_image)
        survivors = non_maximum_suppression(corner_mask, scores, radius=1)
        ys, xs = np.nonzero(survivors)
        xs = xs.astype(np.int64)
        ys = ys.astype(np.int64)
        return xs, ys, scores[ys, xs].astype(np.float64), corners_detected

    def smooth(self, level_image: GrayImage) -> GrayImage:
        return gaussian_blur(level_image)
