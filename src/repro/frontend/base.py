"""Detection front-end engine interface and registry.

The full-frame half of the ORB extractor — FAST segment test, Harris
scoring, non-maximum suppression and Gaussian smoothing — is delegated to a
pluggable **detection engine**, mirroring the keypoint compute backend layer
(:mod:`repro.backends`).  An engine is constructed once from an
:class:`~repro.config.ExtractorConfig`, owns its precomputed tables (the
segment-test arc lookup table, Gaussian kernel, per-frame scratch buffers)
and then serves any number of pyramid levels and frames.  Two
implementations are registered:

* ``reference`` -- composes the original per-stage functions
  (:func:`repro.features.fast.fast_corner_mask`,
  :func:`repro.features.harris.harris_response_map`,
  :func:`repro.features.nms.non_maximum_suppression`,
  :func:`repro.image.filters.gaussian_blur`), kept as bit-exact ground
  truth (:mod:`repro.frontend.reference`);
* ``vectorized`` -- the fused default: padded-slice ring comparisons packed
  into uint16 bitmasks resolved by a 65536-entry arc LUT, Harris responses
  gathered sparsely at FAST corners from integer integral images, loop-free
  NMS and a slice-view Gaussian smoother reusing per-frame scratch buffers
  (:mod:`repro.frontend.vectorized`);
* ``hwexact`` -- the fixed-point datapath of the FPGA model: integer
  windowed Harris accumulators and the 8-bit quantized Gaussian smoother,
  bit-identical to :mod:`repro.hw` extraction rather than to the float
  engines (:mod:`repro.frontend.hwexact`, see ``docs/hwexact.md``).

Engines self-register through :func:`register_engine`;
``ExtractorConfig.frontend`` names the engine and :func:`create_engine`
resolves it, exactly like the backend registry.  ``docs/frontend.md``
documents the architecture.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, ClassVar, List, Tuple, Type

import numpy as np

from ..config import ExtractorConfig
from ..image import GrayImage
from ..registry import ClassRegistry


class DetectionEngine(ABC):
    """Full-frame detection engine behind the ORB extractor.

    An engine instance holds only immutable tables plus thread-local scratch
    buffers, so one instance can serve many extractors and many frames in
    flight concurrently (see :class:`repro.serving.FrameServer`).
    """

    name: ClassVar[str] = "abstract"

    def __init__(self, config: ExtractorConfig) -> None:
        self.config = config

    # -- public API -------------------------------------------------------
    def detect(self, level_image: GrayImage) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run the fused FAST + Harris + NMS pass over one pyramid level.

        Returns ``(xs, ys, scores)`` of the NMS survivors in raster order:
        int64 coordinates and float64 Harris responses.
        """
        xs, ys, scores, _ = self.detect_with_count(level_image)
        return xs, ys, scores

    @abstractmethod
    def detect_with_count(
        self, level_image: GrayImage
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """Like :meth:`detect` but also returns the raw FAST corner count.

        The extra count feeds :class:`repro.features.orb.ExtractionProfile`
        (``keypoints_detected``) without a second pass over the image.
        """

    @abstractmethod
    def smooth(self, level_image: GrayImage) -> GrayImage:
        """Gaussian-smooth one pyramid level for the descriptor stage.

        The float engines (``reference``, ``vectorized``) must match
        :func:`repro.image.filters.gaussian_blur` with the default 7x7,
        sigma-2 kernel bit for bit; the quantized ``hwexact`` engine instead
        matches the hardware Image Smoother's 8-bit fixed-point kernel.
        """


_REGISTRY: ClassRegistry[DetectionEngine] = ClassRegistry("detection engine")


def register_engine(name: str) -> Callable[[Type[DetectionEngine]], Type[DetectionEngine]]:
    """Class decorator registering a detection engine under ``name``."""
    return _REGISTRY.register(name)


def available_engines() -> List[str]:
    """Names of all registered detection engines, sorted."""
    return _REGISTRY.names()


def create_engine(name: str, config: ExtractorConfig | None = None) -> DetectionEngine:
    """Instantiate the detection engine registered under ``name``."""
    return _REGISTRY.create(name, config or ExtractorConfig())
