"""The fused vectorised detection engine (default).

One pass per pyramid level with no full-image temporaries beyond a handful
of reused scratch buffers:

1. **FAST**: the 16 Bresenham-ring comparisons are evaluated on padded-slice
   views of the image (no ``np.roll`` copies), packed into two uint16
   bitmasks (brighter/darker), and the contiguous-arc test is resolved by
   one gather from the precomputed 65536-entry
   :func:`~repro.features.fast.segment_arc_lut` — exactly the combinational
   7x7-window check the hardware FAST Detection module performs.
2. **Harris**: responses are computed **sparsely** — integer Sobel products
   summed into int64 integral images, box sums gathered with four reads per
   FAST corner (:func:`~repro.features.harris.harris_scores_sparse`) —
   instead of scoring every pixel of the level.
3. **NMS**: sparse, loop-free suppression with vectorised raster-order
   tie-breaking (:func:`~repro.features.nms.suppress_keypoints_sparse`).
4. **Smoothing**: the separable 7x7 Gaussian runs on slice views of one
   edge-padded scratch buffer (no per-tap ``np.roll`` copies).

Every step lands on bit-identical results to the per-stage ``reference``
engine (asserted by ``tests/test_frontend_parity.py``); see the individual
helpers for the exactness arguments.  Scratch buffers are per-thread
(``threading.local``), so one engine instance can serve many frames in
flight (:class:`repro.serving.FrameServer`).
"""

from __future__ import annotations

import threading
from typing import Tuple

import numpy as np

from ..features.fast import (
    FAST_CARDINAL_POSITIONS,
    FAST_CIRCLE_OFFSETS,
    cardinal_prefilter_lut,
    fast_corner_mask,
    segment_arc_lut,
)
from ..features.harris import harris_scores_sparse
from ..features.nms import suppress_keypoints_sparse
from ..image import GrayImage
from ..image.filters import (
    GAUSSIAN_BLUR_SIGMA,
    GAUSSIAN_BLUR_SIZE,
    gaussian_kernel_1d,
)
from ..image.scratch import Workspace, edge_pad_into, workspace_array
from .base import DetectionEngine, register_engine

def _pack_ring_bits(flags: np.ndarray) -> np.ndarray:
    """Pack ``(16, K)`` ring flags into uint16 bitmasks (bit i = row i)."""
    masks = np.zeros(flags.shape[1], dtype=np.uint16)
    for index in range(16):
        np.bitwise_or(masks, np.uint16(1 << index), out=masks, where=flags[index])
    return masks


@register_engine("vectorized")
class VectorizedEngine(DetectionEngine):
    """Fused FAST + sparse Harris + sparse NMS + slice-view smoothing."""

    def __init__(self, config) -> None:
        super().__init__(config)
        self._arc_lut = segment_arc_lut(config.fast.arc_length)
        self._cardinal_lut = cardinal_prefilter_lut(config.fast.arc_length)
        self._kernel = gaussian_kernel_1d(GAUSSIAN_BLUR_SIZE, GAUSSIAN_BLUR_SIGMA)
        self._local = threading.local()

    def _workspace(self) -> Workspace:
        """Per-thread scratch buffers (the engine is shared across frames)."""
        workspace = getattr(self._local, "workspace", None)
        if workspace is None:
            workspace = self._local.workspace = {}
        return workspace

    # -- detection ---------------------------------------------------------
    def detect_with_count(
        self, level_image: GrayImage
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        workspace = self._workspace()
        xs, ys = self._fast_corners(level_image, workspace)
        if xs.size == 0:
            return xs, ys, np.zeros(0, dtype=np.float64), 0
        scores = harris_scores_sparse(level_image, xs, ys, workspace=workspace)
        keep = suppress_keypoints_sparse(
            xs, ys, scores, level_image.shape, radius=1, workspace=workspace
        )
        return xs[keep], ys[keep], scores[keep], int(xs.size)

    def _fast_corners(
        self, image: GrayImage, workspace: Workspace
    ) -> Tuple[np.ndarray, np.ndarray]:
        """FAST corners inside the border box, raster order, via the arc LUT.

        Two-stage: the dense pass evaluates only the four compass-point
        comparisons and rejects pixels whose 4-bit pattern cannot support a
        contiguous arc (:func:`cardinal_prefilter_lut`); the full 16-pixel
        ring is then gathered and tested sparsely at the few surviving
        candidates.  When the prefilter rejects too little (pathologically
        corner-dense images) the dense 16-comparison path runs instead —
        both stages decide every pixel with the exact reference comparisons.
        """
        cfg = self.config.fast
        height, width = image.shape
        border = cfg.border
        empty = (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
        if height < 2 * border + 1 or width < 2 * border + 1:
            return empty
        if border < 3:
            # the rolled reference lets ring comparisons wrap around inside a
            # <3px border; keep those exact semantics via the dense path
            ys, xs = np.nonzero(fast_corner_mask(image, cfg))
            return xs.astype(np.int64), ys.astype(np.int64)
        pixels = image.pixels
        inner = (height - 2 * border, width - 2 * border)
        centre = workspace_array(workspace, "fast_centre", inner, np.int16)
        np.copyto(centre, pixels[border : height - border, border : width - border])
        high = workspace_array(workspace, "fast_high", inner, np.int16)
        low = workspace_array(workspace, "fast_low", inner, np.int16)
        np.add(centre, cfg.threshold, out=high)
        np.subtract(centre, cfg.threshold, out=low)
        flags = workspace_array(workspace, "fast_flags", inner, bool)
        # stage 1: compass-point patterns, 4 ring positions instead of 16
        bright4 = workspace_array(workspace, "fast_bright4", inner, np.uint8)
        dark4 = workspace_array(workspace, "fast_dark4", inner, np.uint8)
        bright4[:] = 0
        dark4[:] = 0
        for bit, position in enumerate(FAST_CARDINAL_POSITIONS):
            dx, dy = FAST_CIRCLE_OFFSETS[position]
            ring = pixels[
                border + dy : height - border + dy, border + dx : width - border + dx
            ]
            pattern_bit = np.uint8(1 << bit)
            np.greater(ring, high, out=flags)
            np.bitwise_or(bright4, pattern_bit, out=bright4, where=flags)
            np.less(ring, low, out=flags)
            np.bitwise_or(dark4, pattern_bit, out=dark4, where=flags)
        candidates = workspace_array(workspace, "fast_candidates", inner, bool)
        np.take(self._cardinal_lut, bright4, out=candidates)
        np.take(self._cardinal_lut, dark4, out=flags)
        candidates |= flags
        cand_ys, cand_xs = np.nonzero(candidates)
        if cand_xs.size == 0:
            return empty
        if cand_xs.size * 4 > candidates.size:
            return self._fast_corners_dense(image, workspace, high, low, flags)
        # stage 2: full ring test, gathered only at the candidates.  The ring
        # is laid out (16, K) so comparisons and bit packing broadcast along
        # the contiguous candidate axis.
        xs = cand_xs + border
        ys = cand_ys + border
        flat = pixels.reshape(-1)
        base = ys * width + xs
        ring_offsets = np.array(
            [dy * width + dx for dx, dy in FAST_CIRCLE_OFFSETS], dtype=np.int64
        )
        ring = np.take(flat, ring_offsets[:, None] + base[None, :])
        centre_values = np.take(flat, base).astype(np.int16)
        # saturating uint8 thresholds are exact: a uint8 ring value can never
        # exceed a clipped-high 255 or undercut a clipped-low 0, matching the
        # int16 comparisons of the reference for out-of-range thresholds
        ring_high = np.minimum(centre_values + cfg.threshold, 255).astype(np.uint8)
        ring_low = np.maximum(centre_values - cfg.threshold, 0).astype(np.uint8)
        bright_mask = _pack_ring_bits(ring > ring_high[None, :])
        dark_mask = _pack_ring_bits(ring < ring_low[None, :])
        is_corner = self._arc_lut[bright_mask] | self._arc_lut[dark_mask]
        return xs[is_corner], ys[is_corner]

    def _fast_corners_dense(
        self,
        image: GrayImage,
        workspace: Workspace,
        high: np.ndarray,
        low: np.ndarray,
        flags: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Dense 16-comparison fallback for images full of candidates."""
        cfg = self.config.fast
        height, width = image.shape
        border = cfg.border
        pixels = image.pixels
        inner = (height - 2 * border, width - 2 * border)
        brighter = workspace_array(workspace, "fast_brighter", inner, np.uint16)
        darker = workspace_array(workspace, "fast_darker", inner, np.uint16)
        brighter[:] = 0
        darker[:] = 0
        for index, (dx, dy) in enumerate(FAST_CIRCLE_OFFSETS):
            ring = pixels[
                border + dy : height - border + dy, border + dx : width - border + dx
            ]
            bit = np.uint16(1 << index)
            np.greater(ring, high, out=flags)
            np.bitwise_or(brighter, bit, out=brighter, where=flags)
            np.less(ring, low, out=flags)
            np.bitwise_or(darker, bit, out=darker, where=flags)
        corners = workspace_array(workspace, "fast_corners", inner, bool)
        np.take(self._arc_lut, brighter, out=corners)
        np.take(self._arc_lut, darker, out=flags)
        corners |= flags
        ys, xs = np.nonzero(corners)
        return xs + border, ys + border

    # -- smoothing ---------------------------------------------------------
    def smooth(self, level_image: GrayImage) -> GrayImage:
        """Separable Gaussian on slice views; bit-identical to gaussian_blur.

        The reference accumulates ``sum_k w_k * np.roll(padded, half-k)`` in
        ascending tap order; the slice views here address the same elements,
        so every float64 multiply-add happens on the same operands in the
        same order and the rounded uint8 output cannot differ.
        """
        workspace = self._workspace()
        kernel = self._kernel
        half = kernel.size // 2
        height, width = level_image.shape
        padded = workspace_array(
            workspace, "smooth_padded", (height + 2 * half, width + 2 * half), np.float64
        )
        edge_pad_into(level_image.pixels, half, padded)
        horizontal = workspace_array(
            workspace, "smooth_horizontal", (height + 2 * half, width), np.float64
        )
        tap = workspace_array(
            workspace, "smooth_tap", (height + 2 * half, width), np.float64
        )
        np.multiply(padded[:, 0:width], kernel[0], out=horizontal)
        for offset in range(1, kernel.size):
            np.multiply(padded[:, offset : offset + width], kernel[offset], out=tap)
            horizontal += tap
        output = workspace_array(workspace, "smooth_output", (height, width), np.float64)
        np.multiply(horizontal[0:height, :], kernel[0], out=output)
        tap_rows = tap[0:height, :]
        for offset in range(1, kernel.size):
            np.multiply(horizontal[offset : offset + height, :], kernel[offset], out=tap_rows)
            output += tap_rows
        np.rint(output, out=output)
        return GrayImage(np.clip(output, 0, 255).astype(np.uint8))
