"""Pluggable detection front-end engines for the ORB extractor.

See :mod:`repro.frontend.base` for the interface and registry; importing
this package registers the three built-in engines (``reference``,
``vectorized`` and the fixed-point ``hwexact``).  ``docs/frontend.md`` and
``docs/hwexact.md`` document the architecture.
"""

from .base import (
    DetectionEngine,
    available_engines,
    create_engine,
    register_engine,
)
from .hwexact import HwExactEngine
from .reference import ReferenceEngine
from .vectorized import VectorizedEngine

__all__ = [
    "DetectionEngine",
    "available_engines",
    "create_engine",
    "register_engine",
    "HwExactEngine",
    "ReferenceEngine",
    "VectorizedEngine",
]
