"""Pluggable detection front-end engines for the ORB extractor.

See :mod:`repro.frontend.base` for the interface and registry; importing
this package registers the two built-in engines (``reference`` and
``vectorized``).  ``docs/frontend.md`` documents the architecture.
"""

from .base import (
    DetectionEngine,
    available_engines,
    create_engine,
    register_engine,
)
from .reference import ReferenceEngine
from .vectorized import VectorizedEngine

__all__ = [
    "DetectionEngine",
    "available_engines",
    "create_engine",
    "register_engine",
    "ReferenceEngine",
    "VectorizedEngine",
]
