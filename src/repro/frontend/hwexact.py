"""The quantized fixed-point detection engine (the accelerator's arithmetic).

Runs the full-frame front end under the *exact* arithmetic of the FPGA
datapath model in :mod:`repro.hw`, batched over whole pyramid levels:

1. **FAST**: the segment test is pure integer comparisons, identical between
   hardware and software, so the engine reuses the vectorised
   :func:`~repro.features.fast.fast_corner_mask`; only corners whose full
   7x7 window fits inside the level are kept (the hardware never evaluates a
   partial window).
2. **Harris**: the integer-accumulator windowed response of the FAST
   Detection unit (:func:`repro.quant.kernels.harris_scores_quantized`),
   gathered from int64 integral images — bit-identical to evaluating
   :meth:`~repro.hw.orb_extractor.units.FastDetectionUnit.evaluate_window`
   per pixel because every intermediate is an integer.
3. **NMS**: the sparse raster-tie-break suppression shared with the other
   engines, run on the quantized integer scores.  Corners whose quantized
   score is non-positive never reach the heap (the hardware NMS unit only
   emits positive-score maxima) and cannot shadow a positive neighbour, so
   dropping them before suppression is exact.
4. **Smoothing**: the 8-bit fixed-point Gaussian of the Image Smoother unit
   (:func:`repro.quant.kernels.smooth_image_quantized`), integer MAC + shift.

``tests/test_hwexact_parity.py`` asserts this engine (with the matching
``hwexact`` keypoint backend) reproduces the hardware model's quantized
extraction bit for bit; ``docs/hwexact.md`` documents the architecture.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..features.fast import fast_corner_mask
from ..features.nms import suppress_keypoints_sparse
from ..image import GrayImage, within_border
from ..image.filters import GAUSSIAN_BLUR_SIGMA, GAUSSIAN_BLUR_SIZE
from ..quant.kernels import (
    HARRIS_WINDOW_RADIUS,
    SMOOTHER_WEIGHT_BITS,
    harris_scores_quantized,
    quantize_gaussian_kernel,
    smooth_image_quantized,
)
from .base import DetectionEngine, register_engine


@register_engine("hwexact")
class HwExactEngine(DetectionEngine):
    """Fixed-point front end: FAST + integer Harris + NMS + quantized smoother."""

    def __init__(self, config) -> None:
        super().__init__(config)
        self._kernel_fixed = quantize_gaussian_kernel(
            GAUSSIAN_BLUR_SIZE, GAUSSIAN_BLUR_SIGMA, SMOOTHER_WEIGHT_BITS
        )

    def detect_with_count(
        self, level_image: GrayImage
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        empty = (
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
        )
        mask = fast_corner_mask(level_image, self.config.fast)
        corners_detected = int(mask.sum())
        if corners_detected == 0:
            return (*empty, 0)
        ys, xs = np.nonzero(mask)
        xs = xs.astype(np.int64)
        ys = ys.astype(np.int64)
        # the hardware only scores complete 7x7 windows; with the default
        # 16-pixel FAST border this filter is a no-op
        inside = within_border(xs, ys, level_image.shape, HARRIS_WINDOW_RADIUS)
        xs, ys = xs[inside], ys[inside]
        if xs.size == 0:
            return (*empty, corners_detected)
        scores = harris_scores_quantized(level_image, xs, ys).astype(np.float64)
        positive = scores > 0
        xs, ys, scores = xs[positive], ys[positive], scores[positive]
        if xs.size == 0:
            return (*empty, corners_detected)
        keep = suppress_keypoints_sparse(xs, ys, scores, level_image.shape, radius=1)
        return xs[keep], ys[keep], scores[keep], corners_detected

    def smooth(self, level_image: GrayImage) -> GrayImage:
        """8-bit fixed-point Gaussian (deliberately differs from the float
        :func:`~repro.image.filters.gaussian_blur` by at most a few intensity
        levels — the quantisation the descriptor stage must survive)."""
        return smooth_image_quantized(
            level_image, self._kernel_fixed, SMOOTHER_WEIGHT_BITS
        )
