"""Fixed-point arithmetic helpers (re-exported from :mod:`repro.quant`).

The formats moved to :mod:`repro.quant.formats` so the ``hwexact`` software
engines can share them without importing the cycle/latency models; this
module remains as the hardware-facing alias.
"""

from __future__ import annotations

from ..quant.formats import (
    HARRIS_SCORE_FORMAT,
    ORIENTATION_RATIO_FORMAT,
    PIXEL_FORMAT,
    FixedPointFormat,
)

__all__ = [
    "FixedPointFormat",
    "PIXEL_FORMAT",
    "ORIENTATION_RATIO_FORMAT",
    "HARRIS_SCORE_FORMAT",
]
