"""Fixed-point arithmetic helpers.

The FPGA datapath works with fixed-point numbers (pixel intensities, Harris
scores, centroid accumulators) rather than IEEE floats.  These helpers model
quantisation so tests can verify that the algorithmic quantities the paper's
hardware computes (orientation labels, Harris comparisons, descriptor bits)
are insensitive to the fixed-point formats a realistic implementation would
use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import HardwareModelError


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed/unsigned fixed-point format ``Q(integer_bits).(fraction_bits)``."""

    integer_bits: int
    fraction_bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.integer_bits < 0 or self.fraction_bits < 0:
            raise HardwareModelError("bit widths must be non-negative")
        if self.total_bits == 0:
            raise HardwareModelError("format must have at least one bit")

    @property
    def total_bits(self) -> int:
        return self.integer_bits + self.fraction_bits + (1 if self.signed else 0)

    @property
    def scale(self) -> float:
        return float(2**self.fraction_bits)

    @property
    def max_value(self) -> float:
        return (2 ** (self.integer_bits + self.fraction_bits) - 1) / self.scale

    @property
    def min_value(self) -> float:
        if not self.signed:
            return 0.0
        return -(2 ** (self.integer_bits + self.fraction_bits)) / self.scale

    @property
    def resolution(self) -> float:
        return 1.0 / self.scale

    def quantize(self, value):
        """Round ``value`` (scalar or array) to the nearest representable number."""
        array = np.asarray(value, dtype=np.float64)
        quantized = np.rint(array * self.scale) / self.scale
        return np.clip(quantized, self.min_value, self.max_value)

    def to_integer(self, value):
        """Return the raw integer representation of ``value``."""
        array = np.asarray(value, dtype=np.float64)
        clipped = np.clip(array, self.min_value, self.max_value)
        return np.rint(clipped * self.scale).astype(np.int64)

    def from_integer(self, raw):
        """Convert a raw integer representation back to a real value."""
        return np.asarray(raw, dtype=np.float64) / self.scale

    def quantization_error(self, value) -> float:
        """Maximum absolute quantisation error over ``value``."""
        array = np.asarray(value, dtype=np.float64)
        return float(np.abs(array - self.quantize(array)).max())


#: Format used for pixel intensities (unsigned 8-bit integers).
PIXEL_FORMAT = FixedPointFormat(integer_bits=8, fraction_bits=0, signed=False)
#: Format used for the centroid ratio v/u feeding the orientation LUT.
ORIENTATION_RATIO_FORMAT = FixedPointFormat(integer_bits=6, fraction_bits=10)
#: Format used for Harris corner scores inside the heap comparisons.
HARRIS_SCORE_FORMAT = FixedPointFormat(integer_bits=24, fraction_bits=0)
