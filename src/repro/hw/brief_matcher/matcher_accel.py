"""Integrated BRIEF Matcher accelerator model.

Feature matching starts after ORB extraction finishes: the current frame's
descriptors arrive directly from the ORB Extractor while the global map's
descriptors are fetched from SDRAM over AXI, every query descriptor is
compared against every map descriptor by the Distance Computing module, the
Comparator keeps the minimum, and the results are written back to SDRAM
(Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ...config import AcceleratorConfig
from ...matching import Match, match_minimum_distance
from ..axi import AxiPort
from ..cycles import CycleBreakdown
from .units import (
    ComparatorUnit,
    DescriptorCacheUnit,
    DistanceComputingUnit,
    MatchRecord,
    ResultCacheUnit,
)


@dataclass
class MatcherLatencyReport:
    """Latency of one matching pass through the BRIEF Matcher."""

    cycles: CycleBreakdown
    clock_hz: float
    num_queries: int
    num_map_points: int

    @property
    def total_cycles(self) -> float:
        return self.cycles.total

    @property
    def latency_ms(self) -> float:
        return self.cycles.to_milliseconds(self.clock_hz)


class BriefMatcherAccelerator:
    """Cycle-approximate model of the FPGA BRIEF Matcher."""

    DESCRIPTOR_BYTES: int = 32

    def __init__(self, accel_config: AcceleratorConfig | None = None) -> None:
        self.accel_config = accel_config or AcceleratorConfig()
        self.axi = AxiPort(self.accel_config, name="brief_matcher")
        self.distance_unit = DistanceComputingUnit(
            descriptor_bytes=self.DESCRIPTOR_BYTES,
            lanes=self.accel_config.matcher_parallelism,
        )
        self.comparator = ComparatorUnit()
        self.descriptor_cache = DescriptorCacheUnit(
            frame_capacity=self.accel_config.heap_capacity
        )
        self.result_cache = ResultCacheUnit(capacity=self.accel_config.heap_capacity)

    # -- functional ------------------------------------------------------------
    def match(
        self, frame_descriptors: np.ndarray, map_descriptors: np.ndarray
    ) -> tuple[List[Match], MatcherLatencyReport]:
        """Match the frame against the map; return matches and latency."""
        frame = np.asarray(frame_descriptors, dtype=np.uint8)
        global_map = np.asarray(map_descriptors, dtype=np.uint8)
        self.descriptor_cache.load_frame_descriptors(frame)
        self.descriptor_cache.load_map_descriptors(global_map)
        matches = match_minimum_distance(frame, global_map)
        self.result_cache.clear()
        for match in matches:
            self.result_cache.store(
                MatchRecord(match.query_index, match.train_index, match.distance)
            )
        report = self.latency_for(frame.shape[0] if frame.ndim == 2 else 0,
                                  global_map.shape[0] if global_map.ndim == 2 else 0)
        return matches, report

    # -- timing ------------------------------------------------------------------
    def latency_for(self, num_queries: int, num_map_points: int) -> MatcherLatencyReport:
        """Cycle model for a matching pass of the given size."""
        breakdown = CycleBreakdown()
        # map descriptors stream in from SDRAM; the distance computation can
        # start as soon as the first burst lands, so only the non-overlapped
        # portion of the transfer is visible
        map_bytes = num_map_points * self.DESCRIPTOR_BYTES
        compute = self.distance_unit.cycles_for(num_queries, num_map_points)
        breakdown.add("axi_map_read_visible", self.axi.streaming_read_cycles(map_bytes, compute))
        breakdown.add("distance_compute", compute)
        # the comparator tracks the running minimum in the same cycle as the
        # distance emerges from the adder tree; only its pipeline depth shows
        breakdown.add("comparator_drain", float(self.distance_unit.adder_tree_depth()))
        writeback_bytes = num_queries * ResultCacheUnit.RESULT_RECORD_BYTES
        breakdown.add("axi_writeback", self.axi.transfer_stats(writeback_bytes).cycles)
        return MatcherLatencyReport(
            cycles=breakdown,
            clock_hz=self.accel_config.clock_hz,
            num_queries=num_queries,
            num_map_points=num_map_points,
        )
