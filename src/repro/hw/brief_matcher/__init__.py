"""BRIEF Matcher accelerator: distance computation, comparator and caches."""

from .units import (
    ComparatorUnit,
    DescriptorCacheUnit,
    DistanceComputingUnit,
    MatchRecord,
    ResultCacheUnit,
)
from .matcher_accel import BriefMatcherAccelerator, MatcherLatencyReport

__all__ = [
    "DistanceComputingUnit",
    "ComparatorUnit",
    "DescriptorCacheUnit",
    "ResultCacheUnit",
    "MatchRecord",
    "BriefMatcherAccelerator",
    "MatcherLatencyReport",
]
