"""Datapath units of the BRIEF Matcher (Figure 6).

The matcher compares every current-frame descriptor against every global-map
descriptor: the Distance Computing module XORs two 256-bit descriptors and
popcounts the result with an adder tree, and the Comparator tracks the
running minimum distance and its index.  The Descriptor Cache and Result
Cache buffer inputs/outputs between AXI transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ...errors import HardwareModelError
from ...matching.hamming import hamming_distance
from .. import bram


class DistanceComputingUnit:
    """256-bit XOR + popcount adder tree.

    One descriptor pair per cycle per lane; ``lanes`` parallel trees process
    several map descriptors simultaneously (the parallelisation knob of the
    accelerator configuration).
    """

    def __init__(self, descriptor_bytes: int = 32, lanes: int = 4) -> None:
        if descriptor_bytes <= 0 or lanes <= 0:
            raise HardwareModelError("descriptor_bytes and lanes must be positive")
        self.descriptor_bytes = descriptor_bytes
        self.lanes = lanes
        self.pairs_evaluated = 0

    def distance(self, descriptor_a: np.ndarray, descriptor_b: np.ndarray) -> int:
        """Hamming distance of one descriptor pair (functional reference)."""
        a = np.asarray(descriptor_a, dtype=np.uint8)
        b = np.asarray(descriptor_b, dtype=np.uint8)
        if a.size != self.descriptor_bytes or b.size != self.descriptor_bytes:
            raise HardwareModelError(
                f"descriptors must be {self.descriptor_bytes} bytes"
            )
        self.pairs_evaluated += 1
        return hamming_distance(a, b)

    def cycles_for(self, num_queries: int, num_candidates: int) -> float:
        """Total cycles to evaluate the full distance matrix."""
        if num_queries < 0 or num_candidates < 0:
            raise HardwareModelError("counts must be non-negative")
        return float(num_queries) * float(num_candidates) / self.lanes

    def adder_tree_depth(self) -> int:
        """Pipeline depth of the popcount adder tree (log2 of bit count)."""
        return int(np.ceil(np.log2(self.descriptor_bytes * 8)))


@dataclass
class MatchRecord:
    """Best-match output of the comparator for one query descriptor."""

    query_index: int
    best_index: int
    best_distance: int


class ComparatorUnit:
    """Running-minimum search over the streamed Hamming distances."""

    def __init__(self) -> None:
        self.comparisons = 0

    def find_minimum(self, distances: np.ndarray, query_index: int) -> MatchRecord:
        """Return the minimum distance and its index for one query row."""
        values = np.asarray(distances)
        if values.ndim != 1 or values.size == 0:
            raise HardwareModelError("distance row must be a non-empty 1-D array")
        self.comparisons += values.size
        best_index = int(np.argmin(values))
        return MatchRecord(
            query_index=query_index,
            best_index=best_index,
            best_distance=int(values[best_index]),
        )


class DescriptorCacheUnit:
    """On-chip buffer for current-frame and global-map descriptors."""

    def __init__(self, frame_capacity: int = 1024, map_capacity: int = 8192) -> None:
        if frame_capacity <= 0 or map_capacity <= 0:
            raise HardwareModelError("cache capacities must be positive")
        self.frame_capacity = frame_capacity
        self.map_capacity = map_capacity
        self._frame_descriptors: Optional[np.ndarray] = None
        self._map_descriptors: Optional[np.ndarray] = None

    def load_frame_descriptors(self, descriptors: np.ndarray) -> None:
        descriptors = np.asarray(descriptors, dtype=np.uint8)
        if descriptors.shape[0] > self.frame_capacity:
            raise HardwareModelError(
                f"{descriptors.shape[0]} frame descriptors exceed capacity {self.frame_capacity}"
            )
        self._frame_descriptors = descriptors

    def load_map_descriptors(self, descriptors: np.ndarray) -> None:
        descriptors = np.asarray(descriptors, dtype=np.uint8)
        if descriptors.shape[0] > self.map_capacity:
            raise HardwareModelError(
                f"{descriptors.shape[0]} map descriptors exceed capacity {self.map_capacity}"
            )
        self._map_descriptors = descriptors

    @property
    def frame_descriptors(self) -> np.ndarray:
        if self._frame_descriptors is None:
            raise HardwareModelError("frame descriptors have not been loaded")
        return self._frame_descriptors

    @property
    def map_descriptors(self) -> np.ndarray:
        if self._map_descriptors is None:
            raise HardwareModelError("map descriptors have not been loaded")
        return self._map_descriptors

    def bram_requirements(self, descriptor_bytes: int = 32) -> List[bram.BramRequirement]:
        return [
            bram.BramRequirement(
                "matcher.frame_descriptors", self.frame_capacity, descriptor_bytes * 8
            ),
            bram.BramRequirement(
                "matcher.map_descriptors", self.map_capacity, descriptor_bytes * 8
            ),
        ]


class ResultCacheUnit:
    """Buffer of match results awaiting write-back to SDRAM."""

    RESULT_RECORD_BYTES: int = 8  # query index, best index, distance

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise HardwareModelError("capacity must be positive")
        self.capacity = capacity
        self.records: List[MatchRecord] = []

    def store(self, record: MatchRecord) -> None:
        if len(self.records) >= self.capacity:
            raise HardwareModelError("result cache overflow")
        self.records.append(record)

    def clear(self) -> None:
        self.records.clear()

    def writeback_bytes(self) -> int:
        return len(self.records) * self.RESULT_RECORD_BYTES
