"""Cycle accounting primitives for the accelerator model.

The eSLAM accelerator is modelled at *cycle-approximate* granularity: each
hardware unit reports how many clock cycles it spends on a given workload,
and the top-level modules combine those counts according to the streaming /
pipelined schedule described in Section 3.  :class:`CycleBreakdown` is the
common currency: a named bag of cycle counts that can be merged sequentially
(stages run back to back) or in parallel (stages overlap and the slowest
dominates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

from ..errors import HardwareModelError


@dataclass
class CycleBreakdown:
    """Named cycle counts for one hardware activity.

    The breakdown keeps per-component counts (useful for reports) and exposes
    the total.  Combining breakdowns follows hardware composition rules:

    * :meth:`sequential` -- activities one after another: totals add.
    * :meth:`overlapped` -- activities running concurrently: the maximum
      dominates, but per-component detail is preserved under prefixed names.
    """

    components: Dict[str, float] = field(default_factory=dict)

    def add(self, name: str, cycles: float) -> "CycleBreakdown":
        """Add ``cycles`` under ``name`` (accumulating if it already exists)."""
        if cycles < 0:
            raise HardwareModelError(f"cycle count for '{name}' must be non-negative")
        self.components[name] = self.components.get(name, 0.0) + float(cycles)
        return self

    @property
    def total(self) -> float:
        return float(sum(self.components.values()))

    def scaled(self, factor: float) -> "CycleBreakdown":
        """Return a copy with every component multiplied by ``factor``."""
        if factor < 0:
            raise HardwareModelError("scale factor must be non-negative")
        return CycleBreakdown({k: v * factor for k, v in self.components.items()})

    @classmethod
    def sequential(cls, parts: Mapping[str, "CycleBreakdown"]) -> "CycleBreakdown":
        """Concatenate activities in time; component names are prefixed."""
        merged = cls()
        for prefix, part in parts.items():
            for name, cycles in part.components.items():
                merged.add(f"{prefix}.{name}", cycles)
        return merged

    @classmethod
    def overlapped(cls, parts: Mapping[str, "CycleBreakdown"]) -> "CycleBreakdown":
        """Overlap activities; the total equals the slowest part.

        The returned breakdown contains a single ``<name>.total`` entry for
        the dominating part plus zero-cost informational entries for the
        hidden ones, so reports still show what was overlapped.
        """
        if not parts:
            return cls()
        slowest_name = max(parts, key=lambda name: parts[name].total)
        merged = cls()
        for name, part in parts.items():
            if name == slowest_name:
                merged.add(f"{name}.total", part.total)
            else:
                merged.add(f"{name}.hidden", 0.0)
        return merged

    def to_seconds(self, clock_hz: float) -> float:
        """Convert the total cycle count to seconds at ``clock_hz``."""
        if clock_hz <= 0:
            raise HardwareModelError("clock frequency must be positive")
        return self.total / clock_hz

    def to_milliseconds(self, clock_hz: float) -> float:
        return self.to_seconds(clock_hz) * 1e3

    def merge_from(self, other: "CycleBreakdown", prefix: str = "") -> "CycleBreakdown":
        """In-place accumulation of another breakdown's components."""
        for name, cycles in other.components.items():
            self.add(f"{prefix}{name}" if prefix else name, cycles)
        return self


def cycles_to_ms(cycles: float, clock_hz: float) -> float:
    """Convert a raw cycle count to milliseconds."""
    if clock_hz <= 0:
        raise HardwareModelError("clock frequency must be positive")
    return cycles / clock_hz * 1e3


def sum_totals(breakdowns: Iterable[CycleBreakdown]) -> float:
    """Sum the totals of several breakdowns."""
    return float(sum(b.total for b in breakdowns))
