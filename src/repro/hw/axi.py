"""AXI bus and SDRAM transfer model.

The ORB Extractor and BRIEF Matcher read their inputs from SDRAM and write
their outputs back over an AXI interface (Figures 3, 4 and 6).  The model
here accounts for the cycles spent on burst transfers: each burst pays a
fixed address/latency overhead plus one cycle per data beat, and a transfer
of ``n`` bytes is split into as many maximum-length bursts as needed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import AcceleratorConfig
from ..errors import HardwareModelError
from .cycles import CycleBreakdown


@dataclass
class AxiTransferStats:
    """Byte/beat/burst counts of one logical transfer."""

    bytes_transferred: int
    beats: int
    bursts: int
    cycles: float


class AxiPort:
    """One AXI master port with the accelerator's burst parameters.

    Parameters come from :class:`~repro.config.AcceleratorConfig`:
    ``axi_data_bytes`` per beat, ``axi_burst_length`` beats per burst and
    ``axi_latency_cycles`` of fixed overhead per burst (address phase plus
    memory-controller latency).
    """

    def __init__(self, config: AcceleratorConfig | None = None, name: str = "axi") -> None:
        self.config = config or AcceleratorConfig()
        self.name = name
        self.total_bytes_read = 0
        self.total_bytes_written = 0
        self.total_cycles = 0.0

    # -- transfer cost ------------------------------------------------------
    def transfer_stats(self, num_bytes: int) -> AxiTransferStats:
        """Return the cost of moving ``num_bytes`` in one direction."""
        if num_bytes < 0:
            raise HardwareModelError("transfer size must be non-negative")
        if num_bytes == 0:
            return AxiTransferStats(0, 0, 0, 0.0)
        beat_bytes = self.config.axi_data_bytes
        beats = (num_bytes + beat_bytes - 1) // beat_bytes
        burst_len = self.config.axi_burst_length
        bursts = (beats + burst_len - 1) // burst_len
        cycles = float(beats + bursts * self.config.axi_latency_cycles)
        return AxiTransferStats(num_bytes, beats, bursts, cycles)

    def read(self, num_bytes: int) -> CycleBreakdown:
        """Account for a read of ``num_bytes`` from SDRAM."""
        stats = self.transfer_stats(num_bytes)
        self.total_bytes_read += stats.bytes_transferred
        self.total_cycles += stats.cycles
        return CycleBreakdown({f"{self.name}.read": stats.cycles})

    def write(self, num_bytes: int) -> CycleBreakdown:
        """Account for a write of ``num_bytes`` to SDRAM."""
        stats = self.transfer_stats(num_bytes)
        self.total_bytes_written += stats.bytes_transferred
        self.total_cycles += stats.cycles
        return CycleBreakdown({f"{self.name}.write": stats.cycles})

    def bandwidth_bytes_per_cycle(self) -> float:
        """Effective sustained bandwidth of this port (bytes per cycle)."""
        beat_bytes = self.config.axi_data_bytes
        burst_len = self.config.axi_burst_length
        cycles_per_burst = burst_len + self.config.axi_latency_cycles
        return beat_bytes * burst_len / cycles_per_burst

    def streaming_read_cycles(self, num_bytes: int, compute_cycles: float) -> float:
        """Cycles for a read that overlaps with ``compute_cycles`` of processing.

        When the computation keeps up with the stream (compute slower than the
        bus), the transfer is fully hidden and only the first-burst fill
        latency remains visible.  When the bus is the bottleneck, the read
        time dominates.
        """
        stats = self.transfer_stats(num_bytes)
        fill_latency = float(self.config.axi_latency_cycles + self.config.axi_burst_length)
        if stats.cycles <= compute_cycles:
            return fill_latency
        return stats.cycles - compute_cycles + fill_latency


class SdramModel:
    """A byte-addressable SDRAM sized for frames, pyramids and map data.

    The model tracks occupancy of the buffers the accelerator uses (input
    image, pyramid levels, feature results, map descriptors) and validates
    that the configuration fits the off-chip memory; transfer timing is
    handled by :class:`AxiPort`.
    """

    def __init__(self, capacity_bytes: int = 1 << 30) -> None:
        if capacity_bytes <= 0:
            raise HardwareModelError("SDRAM capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._allocations: dict[str, int] = {}

    def allocate(self, name: str, num_bytes: int) -> None:
        """Reserve a named buffer; raises if the memory would overflow."""
        if num_bytes < 0:
            raise HardwareModelError("allocation size must be non-negative")
        if name in self._allocations:
            raise HardwareModelError(f"buffer '{name}' already allocated")
        if self.used_bytes + num_bytes > self.capacity_bytes:
            raise HardwareModelError(
                f"SDRAM overflow: {self.used_bytes + num_bytes} > {self.capacity_bytes}"
            )
        self._allocations[name] = num_bytes

    def free(self, name: str) -> None:
        if name not in self._allocations:
            raise HardwareModelError(f"buffer '{name}' is not allocated")
        del self._allocations[name]

    @property
    def used_bytes(self) -> int:
        return sum(self._allocations.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def allocation(self, name: str) -> int:
        if name not in self._allocations:
            raise HardwareModelError(f"buffer '{name}' is not allocated")
        return self._allocations[name]

    def allocations(self) -> dict[str, int]:
        return dict(self._allocations)
