"""FPGA resource utilisation model (Table 1).

The paper reports the post-implementation resource utilisation of eSLAM on a
Xilinx Zynq XCZ7045: 56954 LUTs (26.0%), 67809 FFs (15.5%), 111 DSPs (12.3%)
and 78 BRAMs (14.3%).  Absolute synthesis results cannot be produced without
the FPGA toolchain, so this module provides a *parameterised estimation
model*: every accelerator block contributes an estimate derived from its
configuration (descriptor width, window sizes, cache geometry, parallelism),
and the per-block coefficients are calibrated so the default eSLAM
configuration reproduces the paper's totals.  Changing the configuration
(e.g. halving the heap or doubling matcher lanes) changes the estimate in the
direction and rough magnitude a hardware designer would expect, which is what
the ablation benchmarks exercise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..config import AcceleratorConfig, DescriptorConfig, ExtractorConfig
from ..errors import HardwareModelError
from .bram import BramRequirement, line_buffer_requirement, total_bram36


@dataclass(frozen=True)
class DeviceCapacity:
    """Available resources of the target FPGA device."""

    name: str
    luts: int
    flip_flops: int
    dsps: int
    bram36: int

    @classmethod
    def xc7z045(cls) -> "DeviceCapacity":
        """Xilinx Zynq-7000 XC7Z045 (the board used in the paper)."""
        return cls(name="XC7Z045", luts=218600, flip_flops=437200, dsps=900, bram36=545)

    @classmethod
    def xc7z020(cls) -> "DeviceCapacity":
        """Smaller Zynq the paper suggests the design would also fit."""
        return cls(name="XC7Z020", luts=53200, flip_flops=106400, dsps=220, bram36=140)


@dataclass
class ModuleResources:
    """Resource estimate of one accelerator block."""

    name: str
    luts: int
    flip_flops: int
    dsps: int
    bram36: int

    def __add__(self, other: "ModuleResources") -> "ModuleResources":
        return ModuleResources(
            name=f"{self.name}+{other.name}",
            luts=self.luts + other.luts,
            flip_flops=self.flip_flops + other.flip_flops,
            dsps=self.dsps + other.dsps,
            bram36=self.bram36 + other.bram36,
        )


@dataclass
class ResourceReport:
    """Full utilisation report (absolute counts plus device percentages)."""

    modules: List[ModuleResources]
    device: DeviceCapacity

    def totals(self) -> ModuleResources:
        total = ModuleResources("total", 0, 0, 0, 0)
        for module in self.modules:
            total = ModuleResources(
                "total",
                total.luts + module.luts,
                total.flip_flops + module.flip_flops,
                total.dsps + module.dsps,
                total.bram36 + module.bram36,
            )
        return total

    def utilization_percent(self) -> Dict[str, float]:
        total = self.totals()
        return {
            "LUT": 100.0 * total.luts / self.device.luts,
            "FF": 100.0 * total.flip_flops / self.device.flip_flops,
            "DSP": 100.0 * total.dsps / self.device.dsps,
            "BRAM": 100.0 * total.bram36 / self.device.bram36,
        }

    def fits(self, device: DeviceCapacity | None = None) -> bool:
        """True if the design fits within the given (or own) device."""
        target = device or self.device
        total = self.totals()
        return (
            total.luts <= target.luts
            and total.flip_flops <= target.flip_flops
            and total.dsps <= target.dsps
            and total.bram36 <= target.bram36
        )

    def as_rows(self) -> List[Dict[str, object]]:
        """Rows suitable for tabular printing (per module plus total)."""
        rows: List[Dict[str, object]] = []
        for module in self.modules:
            rows.append(
                {
                    "module": module.name,
                    "LUT": module.luts,
                    "FF": module.flip_flops,
                    "DSP": module.dsps,
                    "BRAM": module.bram36,
                }
            )
        total = self.totals()
        rows.append(
            {
                "module": "total",
                "LUT": total.luts,
                "FF": total.flip_flops,
                "DSP": total.dsps,
                "BRAM": total.bram36,
            }
        )
        return rows


@dataclass
class ResourceModel:
    """Parameterised resource estimator for the eSLAM accelerator.

    Per-primitive coefficients (LUTs per comparator bit, FFs per pipeline
    register, etc.) are round numbers typical of 7-series mapping; the
    residual "control and interconnect" block absorbs the calibration gap so
    the default configuration lands on the paper's Table 1 totals.
    """

    extractor_config: ExtractorConfig = field(default_factory=ExtractorConfig)
    accel_config: AcceleratorConfig = field(default_factory=AcceleratorConfig)
    device: DeviceCapacity = field(default_factory=DeviceCapacity.xc7z045)

    # calibration constants (per-primitive costs)
    LUTS_PER_COMPARATOR_BIT: int = 2
    LUTS_PER_ADDER_BIT: int = 1
    FFS_PER_PIPELINE_STAGE_BIT: int = 1

    def estimate(self) -> ResourceReport:
        modules = [
            self._fast_detection(),
            self._image_smoother(),
            self._nms(),
            self._orientation(),
            self._brief_computing(),
            self._brief_rotator(),
            self._heap(),
            self._extractor_caches(),
            self._brief_matcher(),
            self._image_resizer(),
            self._axi_and_control(),
        ]
        return ResourceReport(modules=modules, device=self.device)

    # -- per-module estimators ---------------------------------------------------
    def _fast_detection(self) -> ModuleResources:
        # 16 ring comparators (9-bit), contiguity logic, Harris gradients and MACs
        ring_luts = 16 * 9 * self.LUTS_PER_COMPARATOR_BIT + 640
        harris_luts = 3500
        harris_dsps = 12  # gradient products and the det/trace arithmetic
        ffs = 7 * 7 * 8 * self.FFS_PER_PIPELINE_STAGE_BIT + 4200
        return ModuleResources("fast_detection", ring_luts + harris_luts, ffs, harris_dsps, 0)

    def _image_smoother(self) -> ModuleResources:
        # 7x7 Gaussian: symmetric kernel folds 49 taps into ~10 distinct weights
        dsps = 10
        luts = 2600
        ffs = 7 * 7 * 8 + 2400
        return ModuleResources("image_smoother", luts, ffs, dsps, 0)

    def _nms(self) -> ModuleResources:
        luts = 8 * 32 * self.LUTS_PER_COMPARATOR_BIT + 400
        ffs = 3 * 32 + 700
        return ModuleResources("nms", luts, ffs, 0, 0)

    def _orientation(self) -> ModuleResources:
        # centroid accumulators (row sums), one divider, LUT-based angle decode
        luts = 3400
        dsps = 14
        ffs = 4200
        return ModuleResources("orientation_computing", luts, dsps=dsps, flip_flops=ffs, bram36=1)

    def _brief_computing(self) -> ModuleResources:
        cfg = self.extractor_config.descriptor
        comparators = cfg.num_bits
        luts = comparators * 8 * self.LUTS_PER_COMPARATOR_BIT + 2800
        ffs = cfg.num_bits * 2 + 3600
        return ModuleResources("brief_computing", luts, ffs, 0, 0)

    def _brief_rotator(self) -> ModuleResources:
        cfg = self.extractor_config.descriptor
        # byte-wise barrel shifter: num_bytes * log2(num_bytes) mux stages
        stages = max(1, (cfg.num_bytes - 1).bit_length())
        luts = cfg.num_bytes * 8 * stages
        ffs = cfg.num_bits
        return ModuleResources("brief_rotator", luts, ffs, 0, 0)

    def _heap(self) -> ModuleResources:
        capacity = self.extractor_config.max_features
        record_bits = 256 + 32 + 32  # descriptor + coordinates + score
        storage = BramRequirement("heap", capacity, record_bits)
        levels = max(1, capacity.bit_length())
        luts = levels * 48 * self.LUTS_PER_COMPARATOR_BIT + 1200
        ffs = levels * 96 + 1500
        return ModuleResources("feature_heap", luts, ffs, 0, storage.bram36_blocks())

    def _extractor_caches(self) -> ModuleResources:
        height = self.extractor_config.image_height
        columns = self.accel_config.cache_line_columns
        lines = self.accel_config.cache_lines
        requirements = [
            line_buffer_requirement("image_cache", height, columns, lines),
            # Harris scores are stored as 16-bit fixed point per column
            line_buffer_requirement("score_cache", height, columns * 2, lines),
            line_buffer_requirement("smoothed_cache", height, columns, lines),
        ]
        bram_blocks = total_bram36(requirements)
        luts = 2200  # address generation + ping-pong FSMs
        ffs = 2600
        return ModuleResources("extractor_caches", luts, ffs, 0, bram_blocks)

    def _brief_matcher(self) -> ModuleResources:
        lanes = self.accel_config.matcher_parallelism
        bits = self.extractor_config.descriptor.num_bits
        # per lane: 256-bit XOR + popcount adder tree + comparator
        per_lane_luts = bits * self.LUTS_PER_ADDER_BIT * 2 + 520
        luts = lanes * per_lane_luts + 1800
        ffs = lanes * bits * 2 + 2600
        frame_cache = BramRequirement(
            "matcher_frame_cache", self.accel_config.heap_capacity, bits
        )
        # on-chip working set of global-map descriptors (streamed in tiles)
        map_cache = BramRequirement("matcher_map_cache", 2048, bits)
        result_cache = BramRequirement("matcher_result_cache", self.accel_config.heap_capacity, 64)
        brams = total_bram36([frame_cache, map_cache, result_cache])
        return ModuleResources("brief_matcher", luts, ffs, 0, brams)

    def _image_resizer(self) -> ModuleResources:
        luts = 900
        ffs = 1100
        brams = line_buffer_requirement(
            "resizer_line", self.extractor_config.image_width, 1
        ).bram36_blocks()
        return ModuleResources("image_resizer", luts, ffs, 0, brams)

    def _axi_and_control(self) -> ModuleResources:
        """AXI masters, DMA engines, top-level control and interconnect.

        This block also carries the calibration residual between the sum of
        the analytic per-module estimates and the paper's reported totals.
        """
        partial = ModuleResources("partial", 0, 0, 0, 0)
        for module in (
            self._fast_detection(),
            self._image_smoother(),
            self._nms(),
            self._orientation(),
            self._brief_computing(),
            self._brief_rotator(),
            self._heap(),
            self._extractor_caches(),
            self._brief_matcher(),
            self._image_resizer(),
        ):
            partial = partial + module
        target = self.calibration_targets()
        return ModuleResources(
            "axi_interface_and_control",
            luts=max(2000, target["LUT"] - partial.luts),
            flip_flops=max(3000, target["FF"] - partial.flip_flops),
            dsps=max(0, target["DSP"] - partial.dsps),
            bram36=max(2, target["BRAM"] - partial.bram36),
        )

    @staticmethod
    def calibration_targets() -> Dict[str, int]:
        """The Table 1 totals the default configuration is calibrated to."""
        return {"LUT": 56954, "FF": 67809, "DSP": 111, "BRAM": 78}

    def scaling_factor(self) -> float:
        """Rough LUT scaling of a non-default configuration vs the default.

        Used by ablation benchmarks to show how descriptor width, heap size
        and matcher parallelism move the resource needle.
        """
        default = ResourceModel().estimate().totals().luts
        current = self.estimate().totals().luts
        if default <= 0:
            raise HardwareModelError("default resource estimate must be positive")
        return current / default
