"""Image Resizing module.

The Image Resizing module generates the image pyramid layer by layer using
nearest-neighbour downsampling: while the ORB Extractor processes layer
``k``, the resizer reads the same layer and produces layer ``k+1`` (Section
3).  Because the resizer output for level ``k+1`` is always much smaller than
the extractor's level-``k`` workload, its work is completely hidden behind
the extractor in the pipeline; the model still exposes its raw cycle count so
the overlap claim can be verified rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..config import AcceleratorConfig, PyramidConfig
from ..errors import HardwareModelError
from ..image import (
    GrayImage,
    ImagePyramid,
    nearest_neighbor_resize,
    pyramid_level_shapes,
    resize_dimensions,
)
from .cycles import CycleBreakdown


@dataclass
class ResizerReport:
    """Per-level cycle cost of pyramid generation."""

    per_level_cycles: List[float]
    clock_hz: float

    @property
    def total_cycles(self) -> float:
        return float(sum(self.per_level_cycles))

    @property
    def latency_ms(self) -> float:
        return self.total_cycles / self.clock_hz * 1e3


class ImageResizerModule:
    """Nearest-neighbour downsampler producing pyramid levels.

    Functionally identical to :func:`repro.image.nearest_neighbor_resize`;
    the cycle cost of producing one level is one cycle per *output* pixel
    (each output pixel is a single read-modify-write of the line buffer).
    """

    def __init__(
        self,
        pyramid_config: PyramidConfig | None = None,
        accel_config: AcceleratorConfig | None = None,
    ) -> None:
        self.pyramid_config = pyramid_config or PyramidConfig()
        self.accel_config = accel_config or AcceleratorConfig()

    def resize(self, image: GrayImage) -> GrayImage:
        """Produce the next pyramid level from ``image``."""
        return nearest_neighbor_resize(image, self.pyramid_config.scale_factor)

    def output_shape(self, image: GrayImage) -> tuple[int, int]:
        """Shape of the next level, from the shared rounding rule.

        Delegates to :func:`repro.image.resize_dimensions` — the same
        arithmetic every software pyramid provider uses — so the hardware
        model and the software levels cannot drift.
        """
        return resize_dimensions(image.height, image.width, self.pyramid_config.scale_factor)

    def build_pyramid(self, image: GrayImage) -> tuple[ImagePyramid, ResizerReport]:
        """Build the full pyramid and report per-level resizer cycles.

        The cycle cost is one cycle per output pixel, so the per-level
        counts come straight from :func:`repro.image.pyramid_level_shapes`
        (shared with :mod:`repro.pyramid`) rather than a second private
        size computation.
        """
        pyramid = ImagePyramid(image, self.pyramid_config)
        shapes = pyramid_level_shapes(image.height, image.width, self.pyramid_config)
        per_level = [0.0]  # level 0 is the input image, no resizing cost
        per_level.extend(float(height * width) for height, width in shapes[1:])
        return pyramid, ResizerReport(per_level, self.accel_config.clock_hz)

    def overlap_check(self, image: GrayImage) -> bool:
        """Verify the resizer always finishes before the extractor needs its output.

        Producing level ``k+1`` takes ``pixels(k+1)`` cycles while the
        extractor spends at least ``pixels(k)`` cycles on level ``k``; since
        the scale factor is > 1 the resizer is always faster, so pyramid
        generation never stalls the extractor.  Returns True when that holds
        for every level of the given image.
        """
        pyramid, report = self.build_pyramid(image)
        for level_index in range(1, pyramid.num_levels):
            extractor_budget = pyramid.level(level_index - 1).image.num_pixels
            if report.per_level_cycles[level_index] > extractor_budget:
                return False
        return True

    def cycle_breakdown(self, image: GrayImage) -> CycleBreakdown:
        """Cycle breakdown of pyramid generation (informational; overlapped)."""
        _, report = self.build_pyramid(image)
        breakdown = CycleBreakdown()
        for level_index, cycles in enumerate(report.per_level_cycles):
            breakdown.add(f"resize.level{level_index}", cycles)
        return breakdown


def validate_resizer_functional(image: GrayImage, config: PyramidConfig | None = None) -> bool:
    """Check that module output equals the software pyramid at every level."""
    cfg = config or PyramidConfig()
    module = ImageResizerModule(cfg)
    software = ImagePyramid(image, cfg)
    current = image
    for level_index in range(1, cfg.num_levels):
        current = module.resize(current)
        if not (current == software.level(level_index).image):
            return False
    if cfg.num_levels < 1:
        raise HardwareModelError("pyramid must have at least one level")
    return True
