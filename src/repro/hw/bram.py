"""On-chip memory (BRAM) sizing helpers.

The caches of the ORB Extractor (Image Cache, Score Cache, Smoothened Image
Cache), the heap storage and the matcher's descriptor/result caches all map
to block RAM.  These helpers convert logical buffer dimensions into BRAM36
block counts so the resource report (Table 1) can be assembled from module
parameters instead of magic numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import HardwareModelError

#: Usable bits in one Xilinx BRAM36 block (36 Kbit).
BRAM36_BITS: int = 36 * 1024


@dataclass(frozen=True)
class BramRequirement:
    """On-chip buffer described by depth (words) and word width (bits)."""

    name: str
    depth: int
    width_bits: int
    copies: int = 1

    def __post_init__(self) -> None:
        if self.depth <= 0 or self.width_bits <= 0 or self.copies <= 0:
            raise HardwareModelError("BRAM requirement dimensions must be positive")

    @property
    def total_bits(self) -> int:
        return self.depth * self.width_bits * self.copies

    def bram36_blocks(self) -> int:
        """Number of BRAM36 blocks needed (with width-aware packing).

        A BRAM36 provides 1K x 36, 2K x 18, 4K x 9 ... aspect ratios; the
        estimate packs the requested width into 36-bit wide slices and the
        depth into 1K-deep slices, which matches how synthesis tools map
        simple dual-port buffers.
        """
        width_slices = (self.width_bits + 35) // 36
        depth_slices = (self.depth + 1023) // 1024
        return width_slices * depth_slices * self.copies


def line_buffer_requirement(
    name: str, rows: int, row_bytes: int, copies: int = 1
) -> BramRequirement:
    """BRAM requirement of a line buffer of ``rows`` lines x ``row_bytes`` bytes."""
    return BramRequirement(name=name, depth=rows, width_bits=row_bytes * 8, copies=copies)


def total_bram36(requirements: list[BramRequirement]) -> int:
    """Sum the BRAM36 blocks over a list of requirements."""
    return sum(requirement.bram36_blocks() for requirement in requirements)
