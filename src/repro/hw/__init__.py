"""FPGA accelerator model: cycle accounting, datapath units, resources."""

from .cycles import CycleBreakdown, cycles_to_ms, sum_totals
from .fixed_point import (
    HARRIS_SCORE_FORMAT,
    ORIENTATION_RATIO_FORMAT,
    PIXEL_FORMAT,
    FixedPointFormat,
)
from .axi import AxiPort, AxiTransferStats, SdramModel
from .bram import BRAM36_BITS, BramRequirement, line_buffer_requirement, total_bram36
from .resizer import ImageResizerModule, ResizerReport, validate_resizer_functional
from .resources import DeviceCapacity, ModuleResources, ResourceModel, ResourceReport
from .accelerator import AcceleratorFrameReport, EslamAccelerator
from .orb_extractor import (
    ExtractorLatencyReport,
    OrbExtractorAccelerator,
    PingPongImageCache,
    stream_image_through_cache,
)
from .brief_matcher import BriefMatcherAccelerator, MatcherLatencyReport

__all__ = [
    "CycleBreakdown",
    "cycles_to_ms",
    "sum_totals",
    "FixedPointFormat",
    "PIXEL_FORMAT",
    "ORIENTATION_RATIO_FORMAT",
    "HARRIS_SCORE_FORMAT",
    "AxiPort",
    "AxiTransferStats",
    "SdramModel",
    "BramRequirement",
    "BRAM36_BITS",
    "line_buffer_requirement",
    "total_bram36",
    "ImageResizerModule",
    "ResizerReport",
    "validate_resizer_functional",
    "DeviceCapacity",
    "ModuleResources",
    "ResourceModel",
    "ResourceReport",
    "AcceleratorFrameReport",
    "EslamAccelerator",
    "ExtractorLatencyReport",
    "OrbExtractorAccelerator",
    "PingPongImageCache",
    "stream_image_through_cache",
    "BriefMatcherAccelerator",
    "MatcherLatencyReport",
]
