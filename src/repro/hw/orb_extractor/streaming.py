"""Streaming functional simulation of the ORB Extractor front end.

The integrated accelerator model (:mod:`.extractor`) uses the software
reference for its functional output and a cycle model for timing.  This
module closes the remaining fidelity gap for the *front end*: it actually
streams an image column-group by column-group through the ping-pong Image
Cache (Figure 5), evaluates the FAST Detection unit on the 7x7 windows served
by the cache, applies the streaming 3x3 NMS unit on the score rows, and emits
keypoints in the order the hardware would produce them.

It exists to demonstrate (and let tests verify) that the documented cache
schedule really does deliver every window needed by the detector and that the
streaming datapath produces the same keypoints as the vectorised software
implementation, up to the documented differences: the unit's quantized
windowed Harris score (integer accumulators, rescaled into the 24-bit score
register — see :mod:`repro.quant.kernels`) differs from the whole-image
Sobel float response, which moves NMS picks within corner clusters and drops
weak corners whose quantized response truncates to zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ...config import FastConfig
from ...errors import HardwareModelError
from ...image import GrayImage
from .image_cache import PingPongImageCache
from .units import FastDetectionUnit, NmsUnit


@dataclass(frozen=True)
class StreamedKeypoint:
    """A keypoint emitted by the streaming front end."""

    x: int
    y: int
    score: float
    emitted_in_state: int  # FSM state (column group) during which it was emitted


@dataclass
class StreamingFrontEndResult:
    """Output of one streaming pass over an image."""

    keypoints: List[StreamedKeypoint]
    fsm_states: int
    windows_evaluated: int

    def keypoint_set(self) -> set[tuple[int, int]]:
        return {(kp.x, kp.y) for kp in self.keypoints}


class StreamingFrontEnd:
    """Column-streaming FAST + NMS front end fed by the ping-pong cache.

    The datapath evaluates a pixel's 7x7 window only once all columns covering
    the window are resident in the cache, i.e. while the column group
    ``ceil((x + 4) / columns_per_line)`` is being filled -- exactly the
    constraint the ping-pong FSM of Figure 5 creates.  NMS runs one column
    behind detection so that the 3x3 score neighbourhood is complete before a
    keypoint is emitted.
    """

    def __init__(
        self,
        fast_config: FastConfig | None = None,
        columns_per_line: int = 8,
        border: int = 16,
    ) -> None:
        if columns_per_line < 7:
            raise HardwareModelError(
                "columns_per_line must be at least the window width (7)"
            )
        self.fast_config = fast_config or FastConfig()
        self.columns_per_line = columns_per_line
        self.border = border
        self.fast_unit = FastDetectionUnit(self.fast_config)
        self.nms_unit = NmsUnit()

    def process(self, image: GrayImage) -> StreamingFrontEndResult:
        """Stream ``image`` through the cache and return the emitted keypoints."""
        height, width = image.shape
        cache = PingPongImageCache(height, self.columns_per_line)
        scores = np.zeros((height, width), dtype=np.float64)
        keypoints: List[StreamedKeypoint] = []
        detect_frontier = 0  # first column whose window is not yet computable
        nms_frontier = 0  # first column not yet NMS-resolved
        num_groups = (width + self.columns_per_line - 1) // self.columns_per_line

        for group in range(num_groups):
            start = group * self.columns_per_line
            stop = min(start + self.columns_per_line, width)
            block = np.zeros((height, self.columns_per_line), dtype=np.uint8)
            block[:, : stop - start] = image.pixels[:, start:stop]
            cache.push_columns(block)
            loaded_columns = stop
            # FAST windows need 3 columns of context on each side
            detect_limit = loaded_columns - 3
            self._detect_columns(image, cache, scores, detect_frontier, detect_limit)
            detect_frontier = max(detect_frontier, detect_limit)
            # NMS needs the detection result one column ahead
            nms_limit = detect_frontier - 1
            self._suppress_columns(
                scores, keypoints, nms_frontier, nms_limit, group, image.shape
            )
            nms_frontier = max(nms_frontier, nms_limit)

        # flush: detect and suppress whatever remains at the right edge
        self._detect_columns(image, cache, scores, detect_frontier, width)
        self._suppress_columns(
            scores, keypoints, nms_frontier, width, num_groups - 1, image.shape
        )
        return StreamingFrontEndResult(
            keypoints=keypoints,
            fsm_states=num_groups,
            windows_evaluated=self.fast_unit.windows_evaluated,
        )

    # -- helpers -----------------------------------------------------------------
    def _detect_columns(
        self,
        image: GrayImage,
        cache: PingPongImageCache,
        scores: np.ndarray,
        first_column: int,
        last_column: int,
    ) -> None:
        """Run the FAST unit on every interior pixel of columns [first, last)."""
        height, width = image.shape
        for x in range(max(first_column, self.border), min(last_column, width - self.border)):
            try:
                slab = cache.window(x, width=7)
            except HardwareModelError:
                # the column group containing x has been evicted; this cannot
                # happen while the frontier follows the fill pointer
                raise
            for y in range(self.border, height - self.border):
                window = slab[y - 3 : y + 4, :]
                is_corner, score = self.fast_unit.evaluate_window(window)
                if is_corner:
                    scores[y, x] = score

    def _suppress_columns(
        self,
        scores: np.ndarray,
        keypoints: List[StreamedKeypoint],
        first_column: int,
        last_column: int,
        state_index: int,
        shape: tuple[int, int],
    ) -> None:
        """Emit locally-maximal keypoints from columns [first, last)."""
        height, width = shape
        for x in range(max(first_column, 1), min(last_column, width - 1)):
            column_scores = scores[:, x - 1 : x + 2]
            candidate_rows = np.nonzero(scores[:, x] > 0)[0]
            for y in candidate_rows:
                if y < 1 or y >= height - 1:
                    continue
                window = column_scores[y - 1 : y + 2, :]
                if self.nms_unit.is_local_maximum(window):
                    keypoints.append(
                        StreamedKeypoint(
                            x=int(x),
                            y=int(y),
                            score=float(scores[y, x]),
                            emitted_in_state=state_index,
                        )
                    )


def compare_with_software(
    image: GrayImage, fast_config: FastConfig | None = None
) -> dict:
    """Compare the streaming front end with the vectorised software detector.

    Returns a dictionary with the two keypoint counts and their overlap ratio.
    The detectors agree on the segment test by construction; differences come
    from the score feeding NMS — the unit's quantized windowed Harris
    (integer accumulators, ``>> 26`` rescale) vs the software's
    Sobel-accumulated float response — which shifts tie-breaks within corner
    clusters and drops weak corners whose quantized score truncates to zero.
    """
    from ...features import fast_corner_mask, harris_response_map, non_maximum_suppression

    config = fast_config or FastConfig()
    streaming = StreamingFrontEnd(config).process(image)
    corner_mask = fast_corner_mask(image, config)
    software_scores = harris_response_map(image)
    survivors = non_maximum_suppression(corner_mask, software_scores, radius=1)
    ys, xs = np.nonzero(survivors)
    software_set = set(zip(xs.tolist(), ys.tolist()))
    streaming_set = streaming.keypoint_set()
    overlap = len(software_set & streaming_set)
    union = max(1, len(software_set | streaming_set))

    def near(point: tuple[int, int], reference: set[tuple[int, int]], radius: int = 1) -> bool:
        x, y = point
        return any(
            (x + dx, y + dy) in reference
            for dx in range(-radius, radius + 1)
            for dy in range(-radius, radius + 1)
        )

    # exact-set agreement is pessimistic: the two paths use slightly different
    # Harris scores, so NMS can pick a neighbouring pixel within a corner
    # cluster.  Coverage within a 1-pixel radius is the meaningful fidelity
    # measure for the detector itself.
    streaming_covered = sum(1 for p in streaming_set if near(p, software_set))
    software_covered = sum(1 for p in software_set if near(p, streaming_set))
    return {
        "streaming_keypoints": len(streaming_set),
        "software_keypoints": len(software_set),
        "overlap": overlap,
        "jaccard": overlap / union,
        "streaming_coverage_1px": streaming_covered / max(1, len(streaming_set)),
        "software_coverage_1px": software_covered / max(1, len(software_set)),
    }
