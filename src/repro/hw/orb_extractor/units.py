"""Datapath units of the ORB Extractor (Figure 4).

Each class models one hardware block: its *functional* behaviour operates on
the same data the software pipeline uses (so outputs can be cross-checked
bit-for-bit against :mod:`repro.features`), and its *cycle cost* follows the
streaming schedule of Section 3.1.  Resource estimates for Table 1 are
derived from the same parameters in :mod:`repro.hw.resources`.

The quantized *arithmetic* of each unit lives in :mod:`repro.quant.kernels`
(shared with the batched ``hwexact`` engine pair, so the datapath cannot
fork); the units here keep the per-window/per-feature call granularity of
the streaming hardware plus the cycle accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ...config import DescriptorConfig, FastConfig
from ...errors import HardwareModelError
from ...features.fast import FAST_CIRCLE_OFFSETS
from ...features.heap_filter import BoundedScoreHeap
from ...features.orientation import NUM_ORIENTATION_BINS
from ...features.rs_brief import rotate_descriptor_bytes, rs_brief_pattern
from ...image import GrayImage
from ...quant.kernels import (
    brief_descriptor_from_patch,
    harris_window_score_quantized,
    orientation_bin_from_patch_quantized,
    quantize_gaussian_kernel,
    smooth_image_quantized,
    smooth_window_quantized,
)
from ..cycles import CycleBreakdown


# ---------------------------------------------------------------------------
# FAST detection + Harris scoring
# ---------------------------------------------------------------------------
class FastDetectionUnit:
    """Window-based FAST segment test with Harris scoring.

    The hardware evaluates one 7x7 window per clock cycle: the 16 circle
    comparisons, the contiguous-arc check and the Harris response all fit in
    a fully unrolled combinational pipeline.  The functional model therefore
    exposes :meth:`evaluate_window` operating on a single 7x7 patch, and the
    cycle cost of processing an image is simply one cycle per interior pixel
    (accounted by the integrated extractor, not here).
    """

    def __init__(self, config: FastConfig | None = None) -> None:
        self.config = config or FastConfig()
        self.windows_evaluated = 0

    def evaluate_window(self, window: np.ndarray) -> Tuple[bool, float]:
        """Return ``(is_corner, harris_score)`` for one 7x7 pixel window."""
        window = np.asarray(window, dtype=np.int64)
        if window.shape != (7, 7):
            raise HardwareModelError("FAST window must be 7x7")
        self.windows_evaluated += 1
        center = int(window[3, 3])
        ring = [int(window[3 + dy, 3 + dx]) for dx, dy in FAST_CIRCLE_OFFSETS]
        is_corner = self._segment_test(center, ring)
        score = float(self._harris_score(window)) if is_corner else 0.0
        return is_corner, score

    def _segment_test(self, center: int, ring: Sequence[int]) -> bool:
        threshold = self.config.threshold
        arc = self.config.arc_length
        brighter = [value > center + threshold for value in ring]
        darker = [value < center - threshold for value in ring]
        for flags in (brighter, darker):
            doubled = list(flags) + list(flags[: arc - 1])
            run = 0
            for flag in doubled:
                run = run + 1 if flag else 0
                if run >= arc:
                    return True
        return False

    def _harris_score(self, window: np.ndarray) -> int:
        """Quantized Harris response accumulated over the 7x7 window.

        Integer doubled-gradient accumulators with the Q0.7 fixed-point
        sensitivity constant, rescaled into the 24-bit score register — the
        shared kernel :func:`repro.quant.kernels.harris_window_score_quantized`.
        """
        return harris_window_score_quantized(window)


# ---------------------------------------------------------------------------
# Gaussian image smoother
# ---------------------------------------------------------------------------
class ImageSmootherUnit:
    """7x7 Gaussian blur evaluated as a windowed multiply-accumulate.

    The kernel weights are quantised to 8-bit fixed point, which is how an
    FPGA DSP-based smoother would store them; tests check the quantised
    output deviates from the floating-point reference by at most 1 intensity
    level.
    """

    def __init__(self, size: int = 7, sigma: float = 2.0, weight_bits: int = 8) -> None:
        self.size = size
        self.weight_bits = weight_bits
        # keep the kernel normalised after quantisation (the shared kernel
        # adjusts the centre tap so the weights sum to 2**weight_bits)
        self.kernel_fixed = quantize_gaussian_kernel(size, sigma, weight_bits)
        self.windows_processed = 0

    def smooth_window(self, window: np.ndarray) -> int:
        """Return the smoothed centre pixel of one ``size x size`` window."""
        self.windows_processed += 1
        return smooth_window_quantized(window, self.kernel_fixed, self.weight_bits)

    def smooth_image(self, image: GrayImage) -> GrayImage:
        """Slide the unit over a whole image (one window per pixel).

        Pure integer arithmetic, so each interior pixel is exactly what
        :meth:`smooth_window` produces for that window (asserted by the unit
        tests); edges replicate, matching the clamping line buffer.
        """
        self.windows_processed += image.num_pixels
        return smooth_image_quantized(image, self.kernel_fixed, self.weight_bits)

    def multipliers_required(self) -> int:
        """Number of multiply units in a fully unrolled implementation."""
        return self.size * self.size


# ---------------------------------------------------------------------------
# Non-maximum suppression
# ---------------------------------------------------------------------------
class NmsUnit:
    """Streaming 3x3 non-maximum suppression on Harris scores.

    Functionally identical to :func:`repro.features.nms.non_maximum_suppression`
    restricted to a 3x3 window; the hardware keeps a 3-row score buffer and
    emits a keypoint only if its score is the strict maximum of the
    neighbourhood (ties resolved in raster order by construction).
    """

    def __init__(self) -> None:
        self.windows_evaluated = 0

    def is_local_maximum(self, score_window: np.ndarray) -> bool:
        """Return True if the centre of a 3x3 score window is the maximum."""
        window = np.asarray(score_window, dtype=np.float64)
        if window.shape != (3, 3):
            raise HardwareModelError("NMS window must be 3x3")
        self.windows_evaluated += 1
        center = window[1, 1]
        if center <= 0:
            return False
        neighbours = window.copy()
        neighbours[1, 1] = -np.inf
        # strictly greater than earlier (raster-order) neighbours, greater or
        # equal to later ones, mirrors the streaming tie-break
        earlier = [window[0, 0], window[0, 1], window[0, 2], window[1, 0]]
        later = [window[1, 2], window[2, 0], window[2, 1], window[2, 2]]
        return all(center > value for value in earlier) and all(
            center >= value for value in later
        )


# ---------------------------------------------------------------------------
# Orientation computing
# ---------------------------------------------------------------------------
class OrientationUnit:
    """Intensity-centroid orientation with the hardware LUT discretisation.

    The unit accumulates ``sum(I*x)``, ``sum(I*y)`` and ``sum(I)`` over the
    circular patch, forms the fixed-point ratio ``v/u`` and looks the 32-way
    orientation label up from the ratio and the sign bits -- no ``atan2`` in
    hardware.  The functional model reuses the software centroid and LUT
    label computation, quantising the ratio to the datapath's fixed-point
    format to capture the (tiny) numeric difference from pure software.
    """

    def __init__(self, num_bins: int = NUM_ORIENTATION_BINS) -> None:
        self.num_bins = num_bins
        self.patches_processed = 0

    def orientation_bin(self, patch: np.ndarray) -> int:
        """Return the discretised orientation label of a circular patch.

        Delegates to the shared quantized kernel
        (:func:`repro.quant.kernels.orientation_bin_from_patch_quantized`):
        centroid accumulation, Q6.10 ratio quantisation and the 32-way LUT
        label, identical to the batched ``hwexact`` backend.
        """
        self.patches_processed += 1
        return orientation_bin_from_patch_quantized(patch, self.num_bins)

    def cycles_per_feature(self, patch_diameter: int = 31, lanes: int = 31) -> float:
        """Accumulation cycles per feature: one row of the patch per cycle."""
        if lanes <= 0:
            raise HardwareModelError("lanes must be positive")
        return float(patch_diameter * patch_diameter / lanes) + 2.0  # +divide/LUT


# ---------------------------------------------------------------------------
# BRIEF computing + rotator
# ---------------------------------------------------------------------------
class BriefComputingUnit:
    """Evaluates the 256 RS-BRIEF tests for one feature.

    The RS-BRIEF test locations are fixed, so the hardware reads the required
    pixels from the Smoothened Image Cache and performs 256 comparisons.
    With ``comparators_per_cycle`` parallel comparators the unit needs
    ``256 / comparators_per_cycle`` cycles per feature, which is the figure
    the integrated cycle model uses.
    """

    def __init__(
        self,
        config: DescriptorConfig | None = None,
        comparators_per_cycle: int = 32,
    ) -> None:
        if comparators_per_cycle <= 0:
            raise HardwareModelError("comparators_per_cycle must be positive")
        self.config = config or DescriptorConfig()
        self.comparators_per_cycle = comparators_per_cycle
        self.pattern = rs_brief_pattern(self.config)
        self._s_int, self._d_int = self.pattern.rounded()
        self.features_described = 0

    def describe(self, smoothed_patch: np.ndarray) -> np.ndarray:
        """Compute the unrotated descriptor from a smoothed square patch.

        The patch must be centred on the feature and large enough to contain
        the pattern (side ``2 * patch_radius + 1``).
        """
        self.features_described += 1
        return brief_descriptor_from_patch(smoothed_patch, self._s_int, self._d_int)

    def cycles_per_feature(self) -> float:
        return float(self.config.num_bits / self.comparators_per_cycle)


class BriefRotatorUnit:
    """Barrel shifter applying the feature orientation to the descriptor.

    For orientation label ``n`` the first ``8 * n`` bits move from the start
    of the descriptor to the end.  With 8 seed pairs this is a whole-byte
    rotation, implemented here exactly as in the software path so the two
    stay bit-identical.  One descriptor rotates per cycle.
    """

    def __init__(self) -> None:
        self.descriptors_rotated = 0

    def rotate(self, descriptor: np.ndarray, orientation_bin: int) -> np.ndarray:
        if not 0 <= orientation_bin < NUM_ORIENTATION_BINS:
            raise HardwareModelError(
                f"orientation bin {orientation_bin} outside [0, {NUM_ORIENTATION_BINS})"
            )
        self.descriptors_rotated += 1
        return rotate_descriptor_bytes(np.asarray(descriptor, dtype=np.uint8), orientation_bin)

    @staticmethod
    def cycles_per_feature() -> float:
        return 1.0


# ---------------------------------------------------------------------------
# Feature heap
# ---------------------------------------------------------------------------
@dataclass
class HeapEntry:
    """Feature record stored in the hardware heap."""

    x: int
    y: int
    level: int
    score: float
    descriptor: np.ndarray
    #: orientation label carried alongside the descriptor in the feature
    #: record (written back over AXI with the coordinates)
    orientation_bin: int = 0


class FeatureHeapUnit:
    """The 1024-entry filtering heap of the ORB Extractor.

    Streams feature records in, keeps the ``capacity`` highest Harris scores.
    The cycle cost of an insertion is logarithmic in the heap size (one
    comparator level per tree level), matching a pipelined hardware heap.
    """

    def __init__(self, capacity: int = 1024) -> None:
        self.capacity = capacity
        self._heap: BoundedScoreHeap[HeapEntry] = BoundedScoreHeap(capacity)
        self.offers = 0

    def offer(self, entry: HeapEntry) -> bool:
        self.offers += 1
        return self._heap.offer(entry.score, entry)

    def retained(self) -> List[HeapEntry]:
        return self._heap.items_by_score()

    @property
    def comparisons(self) -> int:
        """Comparator operations performed so far (feeds the cycle model)."""
        return self._heap.stats.comparisons

    def __len__(self) -> int:
        return len(self._heap)

    def insertion_cycles(self) -> float:
        """Average cycles per offered feature (log2(capacity) comparator steps)."""
        return float(max(1, self.capacity.bit_length()))

    def flush_cycles(self) -> float:
        """Cycles to drain the heap contents to the AXI write channel."""
        return float(len(self._heap))

    def cycle_breakdown(self) -> CycleBreakdown:
        breakdown = CycleBreakdown()
        breakdown.add("heap.insert", self.offers * self.insertion_cycles())
        breakdown.add("heap.flush", self.flush_cycles())
        return breakdown
