"""Datapath units of the ORB Extractor (Figure 4).

Each class models one hardware block: its *functional* behaviour operates on
the same data the software pipeline uses (so outputs can be cross-checked
bit-for-bit against :mod:`repro.features`), and its *cycle cost* follows the
streaming schedule of Section 3.1.  Resource estimates for Table 1 are
derived from the same parameters in :mod:`repro.hw.resources`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...config import DescriptorConfig, FastConfig
from ...errors import HardwareModelError
from ...features.fast import FAST_CIRCLE_OFFSETS
from ...features.harris import HARRIS_K
from ...features.heap_filter import BoundedScoreHeap
from ...features.orientation import NUM_ORIENTATION_BINS, intensity_centroid, orientation_lut_label
from ...features.rs_brief import rotate_descriptor_bytes, rs_brief_pattern
from ...image.filters import gaussian_kernel_2d
from ..cycles import CycleBreakdown
from ..fixed_point import ORIENTATION_RATIO_FORMAT


# ---------------------------------------------------------------------------
# FAST detection + Harris scoring
# ---------------------------------------------------------------------------
class FastDetectionUnit:
    """Window-based FAST segment test with Harris scoring.

    The hardware evaluates one 7x7 window per clock cycle: the 16 circle
    comparisons, the contiguous-arc check and the Harris response all fit in
    a fully unrolled combinational pipeline.  The functional model therefore
    exposes :meth:`evaluate_window` operating on a single 7x7 patch, and the
    cycle cost of processing an image is simply one cycle per interior pixel
    (accounted by the integrated extractor, not here).
    """

    def __init__(self, config: FastConfig | None = None) -> None:
        self.config = config or FastConfig()
        self.windows_evaluated = 0

    def evaluate_window(self, window: np.ndarray) -> Tuple[bool, float]:
        """Return ``(is_corner, harris_score)`` for one 7x7 pixel window."""
        window = np.asarray(window, dtype=np.int64)
        if window.shape != (7, 7):
            raise HardwareModelError("FAST window must be 7x7")
        self.windows_evaluated += 1
        center = int(window[3, 3])
        ring = [int(window[3 + dy, 3 + dx]) for dx, dy in FAST_CIRCLE_OFFSETS]
        is_corner = self._segment_test(center, ring)
        score = self._harris_score(window) if is_corner else 0.0
        return is_corner, score

    def _segment_test(self, center: int, ring: Sequence[int]) -> bool:
        threshold = self.config.threshold
        arc = self.config.arc_length
        brighter = [value > center + threshold for value in ring]
        darker = [value < center - threshold for value in ring]
        for flags in (brighter, darker):
            doubled = list(flags) + list(flags[: arc - 1])
            run = 0
            for flag in doubled:
                run = run + 1 if flag else 0
                if run >= arc:
                    return True
        return False

    def _harris_score(self, window: np.ndarray) -> float:
        """Harris response from gradients accumulated over the 7x7 window."""
        patch = window.astype(np.float64)
        gx = np.zeros_like(patch)
        gy = np.zeros_like(patch)
        gx[:, 1:-1] = (patch[:, 2:] - patch[:, :-2]) / 2.0
        gy[1:-1, :] = (patch[2:, :] - patch[:-2, :]) / 2.0
        sxx = float((gx * gx).sum())
        syy = float((gy * gy).sum())
        sxy = float((gx * gy).sum())
        det = sxx * syy - sxy * sxy
        trace = sxx + syy
        return det - HARRIS_K * trace * trace


# ---------------------------------------------------------------------------
# Gaussian image smoother
# ---------------------------------------------------------------------------
class ImageSmootherUnit:
    """7x7 Gaussian blur evaluated as a windowed multiply-accumulate.

    The kernel weights are quantised to 8-bit fixed point, which is how an
    FPGA DSP-based smoother would store them; tests check the quantised
    output deviates from the floating-point reference by at most 1 intensity
    level.
    """

    def __init__(self, size: int = 7, sigma: float = 2.0, weight_bits: int = 8) -> None:
        if weight_bits <= 0:
            raise HardwareModelError("weight_bits must be positive")
        kernel = gaussian_kernel_2d(size, sigma)
        scale = 2**weight_bits
        quantized = np.rint(kernel * scale).astype(np.int64)
        # keep the kernel normalised after quantisation by adjusting the centre
        deficit = scale - int(quantized.sum())
        quantized[size // 2, size // 2] += deficit
        self.size = size
        self.weight_bits = weight_bits
        self.kernel_fixed = quantized
        self.windows_processed = 0

    def smooth_window(self, window: np.ndarray) -> int:
        """Return the smoothed centre pixel of one ``size x size`` window."""
        window = np.asarray(window, dtype=np.int64)
        if window.shape != (self.size, self.size):
            raise HardwareModelError(f"smoother window must be {self.size}x{self.size}")
        self.windows_processed += 1
        accumulator = int((window * self.kernel_fixed).sum())
        return int(np.clip(accumulator >> self.weight_bits, 0, 255))

    def multipliers_required(self) -> int:
        """Number of multiply units in a fully unrolled implementation."""
        return self.size * self.size


# ---------------------------------------------------------------------------
# Non-maximum suppression
# ---------------------------------------------------------------------------
class NmsUnit:
    """Streaming 3x3 non-maximum suppression on Harris scores.

    Functionally identical to :func:`repro.features.nms.non_maximum_suppression`
    restricted to a 3x3 window; the hardware keeps a 3-row score buffer and
    emits a keypoint only if its score is the strict maximum of the
    neighbourhood (ties resolved in raster order by construction).
    """

    def __init__(self) -> None:
        self.windows_evaluated = 0

    def is_local_maximum(self, score_window: np.ndarray) -> bool:
        """Return True if the centre of a 3x3 score window is the maximum."""
        window = np.asarray(score_window, dtype=np.float64)
        if window.shape != (3, 3):
            raise HardwareModelError("NMS window must be 3x3")
        self.windows_evaluated += 1
        center = window[1, 1]
        if center <= 0:
            return False
        neighbours = window.copy()
        neighbours[1, 1] = -np.inf
        # strictly greater than earlier (raster-order) neighbours, greater or
        # equal to later ones, mirrors the streaming tie-break
        earlier = [window[0, 0], window[0, 1], window[0, 2], window[1, 0]]
        later = [window[1, 2], window[2, 0], window[2, 1], window[2, 2]]
        return all(center > value for value in earlier) and all(
            center >= value for value in later
        )


# ---------------------------------------------------------------------------
# Orientation computing
# ---------------------------------------------------------------------------
class OrientationUnit:
    """Intensity-centroid orientation with the hardware LUT discretisation.

    The unit accumulates ``sum(I*x)``, ``sum(I*y)`` and ``sum(I)`` over the
    circular patch, forms the fixed-point ratio ``v/u`` and looks the 32-way
    orientation label up from the ratio and the sign bits -- no ``atan2`` in
    hardware.  The functional model reuses the software centroid and LUT
    label computation, quantising the ratio to the datapath's fixed-point
    format to capture the (tiny) numeric difference from pure software.
    """

    def __init__(self, num_bins: int = NUM_ORIENTATION_BINS) -> None:
        self.num_bins = num_bins
        self.patches_processed = 0

    def orientation_bin(self, patch: np.ndarray) -> int:
        """Return the discretised orientation label of a circular patch."""
        self.patches_processed += 1
        u, v = intensity_centroid(np.asarray(patch, dtype=np.float64))
        if abs(u) < 1e-12 and abs(v) < 1e-12:
            return 0
        if abs(u) > 1e-12:
            ratio = float(ORIENTATION_RATIO_FORMAT.quantize(v / u))
            v_quantized = ratio * u
        else:
            v_quantized = v
        return orientation_lut_label(u, v_quantized, self.num_bins)

    def cycles_per_feature(self, patch_diameter: int = 31, lanes: int = 31) -> float:
        """Accumulation cycles per feature: one row of the patch per cycle."""
        if lanes <= 0:
            raise HardwareModelError("lanes must be positive")
        return float(patch_diameter * patch_diameter / lanes) + 2.0  # +divide/LUT


# ---------------------------------------------------------------------------
# BRIEF computing + rotator
# ---------------------------------------------------------------------------
class BriefComputingUnit:
    """Evaluates the 256 RS-BRIEF tests for one feature.

    The RS-BRIEF test locations are fixed, so the hardware reads the required
    pixels from the Smoothened Image Cache and performs 256 comparisons.
    With ``comparators_per_cycle`` parallel comparators the unit needs
    ``256 / comparators_per_cycle`` cycles per feature, which is the figure
    the integrated cycle model uses.
    """

    def __init__(
        self,
        config: DescriptorConfig | None = None,
        comparators_per_cycle: int = 32,
    ) -> None:
        if comparators_per_cycle <= 0:
            raise HardwareModelError("comparators_per_cycle must be positive")
        self.config = config or DescriptorConfig()
        self.comparators_per_cycle = comparators_per_cycle
        self.pattern = rs_brief_pattern(self.config)
        self._s_int, self._d_int = self.pattern.rounded()
        self.features_described = 0

    def describe(self, smoothed_patch: np.ndarray) -> np.ndarray:
        """Compute the unrotated descriptor from a smoothed square patch.

        The patch must be centred on the feature and large enough to contain
        the pattern (side ``2 * patch_radius + 1``).
        """
        patch = np.asarray(smoothed_patch, dtype=np.int64)
        radius = patch.shape[0] // 2
        if patch.shape[0] != patch.shape[1] or patch.shape[0] % 2 == 0:
            raise HardwareModelError("descriptor patch must be square with odd side")
        max_offset = int(np.abs(np.concatenate([self._s_int, self._d_int])).max())
        if radius < max_offset:
            raise HardwareModelError(
                f"patch radius {radius} too small for pattern radius {max_offset}"
            )
        self.features_described += 1
        s_vals = patch[radius + self._s_int[:, 1], radius + self._s_int[:, 0]]
        d_vals = patch[radius + self._d_int[:, 1], radius + self._d_int[:, 0]]
        bits = (s_vals > d_vals).astype(np.uint8)
        return np.packbits(bits, bitorder="little")

    def cycles_per_feature(self) -> float:
        return float(self.config.num_bits / self.comparators_per_cycle)


class BriefRotatorUnit:
    """Barrel shifter applying the feature orientation to the descriptor.

    For orientation label ``n`` the first ``8 * n`` bits move from the start
    of the descriptor to the end.  With 8 seed pairs this is a whole-byte
    rotation, implemented here exactly as in the software path so the two
    stay bit-identical.  One descriptor rotates per cycle.
    """

    def __init__(self) -> None:
        self.descriptors_rotated = 0

    def rotate(self, descriptor: np.ndarray, orientation_bin: int) -> np.ndarray:
        if not 0 <= orientation_bin < NUM_ORIENTATION_BINS:
            raise HardwareModelError(
                f"orientation bin {orientation_bin} outside [0, {NUM_ORIENTATION_BINS})"
            )
        self.descriptors_rotated += 1
        return rotate_descriptor_bytes(np.asarray(descriptor, dtype=np.uint8), orientation_bin)

    @staticmethod
    def cycles_per_feature() -> float:
        return 1.0


# ---------------------------------------------------------------------------
# Feature heap
# ---------------------------------------------------------------------------
@dataclass
class HeapEntry:
    """Feature record stored in the hardware heap."""

    x: int
    y: int
    level: int
    score: float
    descriptor: np.ndarray


class FeatureHeapUnit:
    """The 1024-entry filtering heap of the ORB Extractor.

    Streams feature records in, keeps the ``capacity`` highest Harris scores.
    The cycle cost of an insertion is logarithmic in the heap size (one
    comparator level per tree level), matching a pipelined hardware heap.
    """

    def __init__(self, capacity: int = 1024) -> None:
        self.capacity = capacity
        self._heap: BoundedScoreHeap[HeapEntry] = BoundedScoreHeap(capacity)
        self.offers = 0

    def offer(self, entry: HeapEntry) -> bool:
        self.offers += 1
        return self._heap.offer(entry.score, entry)

    def retained(self) -> List[HeapEntry]:
        return self._heap.items_by_score()

    def __len__(self) -> int:
        return len(self._heap)

    def insertion_cycles(self) -> float:
        """Average cycles per offered feature (log2(capacity) comparator steps)."""
        return float(max(1, self.capacity.bit_length()))

    def flush_cycles(self) -> float:
        """Cycles to drain the heap contents to the AXI write channel."""
        return float(len(self._heap))

    def cycle_breakdown(self) -> CycleBreakdown:
        breakdown = CycleBreakdown()
        breakdown.add("heap.insert", self.offers * self.insertion_cycles())
        breakdown.add("heap.flush", self.flush_cycles())
        return breakdown
