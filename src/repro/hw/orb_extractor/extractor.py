"""Integrated ORB Extractor accelerator model.

Combines the datapath units of :mod:`repro.hw.orb_extractor.units`, the
ping-pong caches and the AXI port into a model of the whole ORB Extractor
(Figure 4), following the rescheduled streaming workflow of Section 3.1:

* the front end (FAST detection, Harris, smoothing, NMS) consumes one pixel
  per clock cycle as the image streams through the ping-pong caches,
* descriptors and orientations are computed for every detected keypoint in a
  pipeline that overlaps the pixel stream (stalling only if keypoints arrive
  faster than the descriptor units can drain them),
* the heap filters the streamed features down to the best 1024, and
* the results are written back over AXI when the pyramid finishes.

The functional output is produced by the software reference extractor with
the rescheduled workflow (bit-identical descriptors); the cycle count is
derived from the same extraction profile, so the model's latency responds to
the actual workload (image size, pyramid depth, keypoint density) rather than
being a constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ...config import AcceleratorConfig, ExtractorConfig
from ...errors import HardwareModelError
from ...features import ExtractionResult, OrbExtractor
from ...features.keypoint import Feature, Keypoint
from ...features.nms import suppress_keypoints
from ...features.orb import ExtractionProfile
from ...features.orientation import ORIENTATION_BIN_RAD
from ...image import GrayImage, ImagePyramid, within_border
from ..axi import AxiPort
from ..cycles import CycleBreakdown
from .units import (
    BriefComputingUnit,
    BriefRotatorUnit,
    FastDetectionUnit,
    FeatureHeapUnit,
    HeapEntry,
    ImageSmootherUnit,
    NmsUnit,
    OrientationUnit,
)

#: Bytes written back to SDRAM per retained feature: 32-byte descriptor,
#: 4-byte packed coordinates/level and 4-byte Harris score.
FEATURE_RECORD_BYTES: int = 40


@dataclass
class ExtractorLatencyReport:
    """Latency of one frame through the ORB Extractor accelerator."""

    cycles: CycleBreakdown
    clock_hz: float
    features: int
    keypoints_detected: int
    pixels_processed: int
    workflow: str

    @property
    def total_cycles(self) -> float:
        return self.cycles.total

    @property
    def latency_ms(self) -> float:
        return self.cycles.to_milliseconds(self.clock_hz)


class OrbExtractorAccelerator:
    """Cycle-approximate model of the FPGA ORB Extractor."""

    def __init__(
        self,
        extractor_config: ExtractorConfig | None = None,
        accel_config: AcceleratorConfig | None = None,
    ) -> None:
        self.extractor_config = extractor_config or ExtractorConfig()
        self.accel_config = accel_config or AcceleratorConfig()
        if not self.extractor_config.use_rs_brief:
            raise HardwareModelError(
                "the accelerator implements RS-BRIEF; the original ORB descriptor "
                "requires the 30-pattern LUT the paper explicitly avoids"
            )
        self._reference = OrbExtractor(self.extractor_config)
        self.axi = AxiPort(self.accel_config, name="orb_extractor")
        self.fast_unit = FastDetectionUnit(self.extractor_config.fast)
        self.smoother_unit = ImageSmootherUnit()
        self.nms_unit = NmsUnit()
        self.orientation_unit = OrientationUnit()
        self.brief_unit = BriefComputingUnit(self.extractor_config.descriptor)
        self.rotator_unit = BriefRotatorUnit()
        self.heap_capacity = self.extractor_config.max_features

    # -- functional + timing ----------------------------------------------------
    def extract(self, image: GrayImage) -> tuple[ExtractionResult, ExtractorLatencyReport]:
        """Extract features and report the modelled accelerator latency."""
        result = self._reference.extract(image)
        report = self.latency_from_profile(
            image,
            keypoints_after_nms=result.profile.keypoints_after_nms,
            descriptors_computed=result.profile.descriptors_computed,
            features_retained=result.profile.features_retained,
        )
        return result, report

    def latency_for_image(self, image: GrayImage) -> ExtractorLatencyReport:
        """Latency model only (runs the reference extractor for the workload)."""
        _, report = self.extract(image)
        return report

    def extract_quantized(
        self, image: GrayImage
    ) -> tuple[ExtractionResult, ExtractorLatencyReport]:
        """Quantized functional extraction, driven unit by unit.

        Runs the actual fixed-point datapath: every interior 7x7 window
        through :class:`~.units.FastDetectionUnit` (integer Harris
        accumulators), raster-order NMS on the quantized scores, the 8-bit
        fixed-point :class:`~.units.ImageSmootherUnit`, per-feature
        :class:`~.units.OrientationUnit` (Q6.10 ratio LUT) and
        :class:`~.units.BriefComputingUnit` + :class:`~.units.BriefRotatorUnit`,
        filtered through the :class:`~.units.FeatureHeapUnit`.

        The output is bit-identical to the batched ``hwexact`` engine pair
        (``ExtractorConfig(frontend="hwexact", backend="hwexact")``) —
        asserted by ``tests/test_hwexact_parity.py`` — because both sides
        share the arithmetic kernels of :mod:`repro.quant`; this scalar
        orchestration is the cross-check that the batched engines really
        compute what the streaming hardware would.  Requires a FAST border
        of at least 3 (the hardware never evaluates a partial window).
        """
        config = self.extractor_config
        if config.fast.border < 3:
            raise HardwareModelError(
                "the hardware window pipeline needs a FAST border of at least 3"
            )
        pyramid = ImagePyramid(image, config.pyramid)
        profile = ExtractionProfile(workflow="rescheduled")
        profile.pixels_processed = pyramid.total_pixels()
        descriptor_border = max(
            config.fast.border,
            int(np.ceil(self.brief_unit.pattern.max_radius())) + 1,
            config.descriptor.patch_radius + 1,
        )
        heap = FeatureHeapUnit(capacity=self.heap_capacity)
        patch_radius = config.descriptor.patch_radius
        for level in pyramid:
            level_image = level.image
            smoothed = self.smoother_unit.smooth_image(level_image)
            xs, ys, scores = self._detect_level_quantized(level_image, profile)
            if not xs:
                profile.per_level_keypoints.append(0)
                continue
            keep = suppress_keypoints(
                list(zip(xs, ys)), scores, level_image.shape, radius=1
            )
            survivors = [
                index
                for index in keep
                if within_border(
                    np.int64(xs[index]),
                    np.int64(ys[index]),
                    level_image.shape,
                    descriptor_border,
                )
            ]
            profile.keypoints_after_nms += len(survivors)
            profile.per_level_keypoints.append(len(survivors))
            for index in survivors:
                x, y = xs[index], ys[index]
                patch = smoothed.patch(x, y, patch_radius)
                orientation_bin = self.orientation_unit.orientation_bin(patch)
                descriptor = self.rotator_unit.rotate(
                    self.brief_unit.describe(patch), orientation_bin
                )
                profile.descriptors_computed += 1
                heap.offer(
                    HeapEntry(
                        x=x,
                        y=y,
                        level=level.level,
                        score=scores[index],
                        descriptor=descriptor,
                        orientation_bin=orientation_bin,
                    )
                )
        profile.heap_comparisons = heap.comparisons
        features = [self._feature_from_entry(entry) for entry in heap.retained()]
        profile.features_retained = len(features)
        result = ExtractionResult(features=features, profile=profile)
        report = self.latency_from_profile(
            image,
            keypoints_after_nms=profile.keypoints_after_nms,
            descriptors_computed=profile.descriptors_computed,
            features_retained=profile.features_retained,
        )
        return result, report

    def _detect_level_quantized(
        self, level_image: GrayImage, profile: ExtractionProfile
    ) -> tuple[List[int], List[int], List[float]]:
        """FAST + quantized Harris over every complete window of one level."""
        height, width = level_image.shape
        border = self.extractor_config.fast.border
        pixels = level_image.pixels
        xs: List[int] = []
        ys: List[int] = []
        scores: List[float] = []
        detected = 0
        for y in range(border, height - border):
            for x in range(border, width - border):
                window = pixels[y - 3 : y + 4, x - 3 : x + 4]
                is_corner, score = self.fast_unit.evaluate_window(window)
                if not is_corner:
                    continue
                detected += 1
                if score > 0:
                    xs.append(x)
                    ys.append(y)
                    scores.append(score)
        profile.keypoints_detected += detected
        return xs, ys, scores

    def _feature_from_entry(self, entry: HeapEntry) -> Feature:
        """Materialise one retained feature from a heap record."""
        keypoint = Keypoint(
            x=entry.x,
            y=entry.y,
            score=entry.score,
            level=entry.level,
            orientation_bin=entry.orientation_bin,
            orientation_rad=entry.orientation_bin * ORIENTATION_BIN_RAD,
        )
        scale = self.extractor_config.pyramid.level_scale(entry.level)
        x0, y0 = keypoint.level0_coordinates(scale)
        return Feature(keypoint=keypoint, descriptor=entry.descriptor, x0=x0, y0=y0)

    # -- cycle model ----------------------------------------------------------
    def latency_from_profile(
        self,
        image: GrayImage,
        keypoints_after_nms: int,
        descriptors_computed: Optional[int] = None,
        features_retained: Optional[int] = None,
    ) -> ExtractorLatencyReport:
        """Build the cycle breakdown for a known workload.

        This entry point lets the platform models reuse measured workloads
        from the functional SLAM run without re-running extraction.
        """
        descriptors_computed = (
            keypoints_after_nms if descriptors_computed is None else descriptors_computed
        )
        features_retained = (
            min(self.heap_capacity, descriptors_computed)
            if features_retained is None
            else features_retained
        )
        pyramid = ImagePyramid(image, self.extractor_config.pyramid)
        if self.extractor_config.rescheduled_workflow:
            cycles = self._rescheduled_cycles(
                pyramid, descriptors_computed, features_retained
            )
            workflow = "rescheduled"
        else:
            cycles = self._original_workflow_cycles(
                pyramid, keypoints_after_nms, features_retained
            )
            workflow = "original"
        return ExtractorLatencyReport(
            cycles=cycles,
            clock_hz=self.accel_config.clock_hz,
            features=features_retained,
            keypoints_detected=keypoints_after_nms,
            pixels_processed=pyramid.total_pixels(),
            workflow=workflow,
        )

    def _per_level_stream_cycles(self, pyramid: ImagePyramid) -> List[CycleBreakdown]:
        """Front-end streaming cost of each pyramid level."""
        levels = []
        columns_per_line = self.accel_config.cache_line_columns
        prefill_lines = self.accel_config.cache_lines - 1
        for level in pyramid:
            height, width = level.image.shape
            breakdown = CycleBreakdown()
            # ping-pong cache pre-fill: two cache lines of columns before the
            # datapath can start (Figure 5 initialisation)
            breakdown.add("cache_prefill", prefill_lines * columns_per_line * height)
            # one pixel per cycle through FAST/Harris/smoother/NMS
            breakdown.add("pixel_stream", height * width)
            # window pipeline drain at the end of the level
            breakdown.add("pipeline_drain", height)
            levels.append(breakdown)
        return levels

    def _descriptor_pipeline_stall(
        self, total_stream_cycles: float, descriptors_computed: int
    ) -> float:
        """Stall cycles when descriptor computation cannot keep up with detection."""
        per_feature = max(
            self.brief_unit.cycles_per_feature(),
            self.orientation_unit.cycles_per_feature(),
        ) + BriefRotatorUnit.cycles_per_feature()
        demand = descriptors_computed * per_feature
        return max(0.0, demand - total_stream_cycles)

    def _rescheduled_cycles(
        self,
        pyramid: ImagePyramid,
        descriptors_computed: int,
        features_retained: int,
    ) -> CycleBreakdown:
        """Streaming (detect -> describe -> filter) schedule."""
        total = CycleBreakdown()
        level_breakdowns = self._per_level_stream_cycles(pyramid)
        for index, level_breakdown in enumerate(level_breakdowns):
            total.merge_from(level_breakdown, prefix=f"level{index}.")
        stream_total = total.total
        # AXI read of the level-0 image overlaps the stream; only the fill
        # latency and any bandwidth shortfall are visible.
        level0_bytes = pyramid.level(0).image.num_pixels
        total.add("axi_read_visible", self.axi.streaming_read_cycles(level0_bytes, stream_total))
        # descriptor pipeline (orientation + BRIEF + rotator) overlaps the
        # stream; only the excess demand stalls the front end
        total.add(
            "descriptor_stall",
            self._descriptor_pipeline_stall(stream_total, descriptors_computed),
        )
        # heap insertions are pipelined with the descriptor stream; the final
        # drain and the result write-back are exposed
        total.add("heap_flush", float(features_retained))
        writeback = self.axi.transfer_stats(features_retained * FEATURE_RECORD_BYTES)
        total.add("axi_writeback", writeback.cycles)
        return total

    def _original_workflow_cycles(
        self,
        pyramid: ImagePyramid,
        keypoints_detected: int,
        features_retained: int,
    ) -> CycleBreakdown:
        """Original (detect -> filter -> describe) schedule used for the ablation.

        Descriptor computation cannot start until all keypoints are detected
        and filtered, and each retained keypoint's pixel patch must be
        re-fetched because the streaming caches no longer hold it.
        """
        total = CycleBreakdown()
        level_breakdowns = self._per_level_stream_cycles(pyramid)
        for index, level_breakdown in enumerate(level_breakdowns):
            total.merge_from(level_breakdown, prefix=f"detect.level{index}.")
        level0_bytes = pyramid.level(0).image.num_pixels
        total.add(
            "axi_read_visible",
            self.axi.streaming_read_cycles(level0_bytes, total.total),
        )
        # filtering: selection of the best N among M detected keypoints
        total.add(
            "filter",
            float(keypoints_detected) * max(1, self.heap_capacity.bit_length()),
        )
        # descriptor pass: patch refetch + orientation + BRIEF, fully serial
        patch_diameter = 2 * self.extractor_config.descriptor.patch_radius + 1
        patch_bytes = patch_diameter * patch_diameter
        refetch = self.axi.transfer_stats(patch_bytes)
        per_feature = (
            refetch.cycles
            + self.orientation_unit.cycles_per_feature()
            + self.brief_unit.cycles_per_feature()
            + BriefRotatorUnit.cycles_per_feature()
        )
        total.add("describe_serial", features_retained * per_feature)
        writeback = self.axi.transfer_stats(features_retained * FEATURE_RECORD_BYTES)
        total.add("axi_writeback", writeback.cycles)
        return total

    # -- memory footprint (rescheduling ablation) --------------------------------
    def on_chip_buffer_bytes(self, rescheduled: bool, image_height: int = 480) -> int:
        """On-chip buffering required by the chosen workflow.

        The streaming workflow only needs the three ping-pong caches (image,
        score, smoothened image), each ``cache_lines`` lines of
        ``cache_line_columns`` columns.  The original workflow must keep the
        smoothened image of a whole level (plus the candidate keypoint list)
        alive until filtering completes, because descriptors are computed
        afterwards.
        """
        line_bytes = self.accel_config.cache_line_columns * image_height
        ping_pong = 3 * self.accel_config.cache_lines * line_bytes
        if rescheduled:
            return ping_pong
        level0_pixels = (
            self.extractor_config.image_width * self.extractor_config.image_height
        )
        candidate_record_bytes = 8  # x, y, level, score
        # worst-case candidate count: one per 3x3 NMS cell
        worst_candidates = level0_pixels // 9
        return ping_pong + level0_pixels + worst_candidates * candidate_record_bytes
