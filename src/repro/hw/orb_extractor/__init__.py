"""ORB Extractor accelerator: caches, datapath units and the integrated model."""

from .image_cache import (
    CacheLineState,
    FsmTransition,
    PingPongImageCache,
    stream_image_through_cache,
)
from .units import (
    BriefComputingUnit,
    BriefRotatorUnit,
    FastDetectionUnit,
    FeatureHeapUnit,
    HeapEntry,
    ImageSmootherUnit,
    NmsUnit,
    OrientationUnit,
)
from .extractor import (
    FEATURE_RECORD_BYTES,
    ExtractorLatencyReport,
    OrbExtractorAccelerator,
)
from .streaming import (
    StreamedKeypoint,
    StreamingFrontEnd,
    StreamingFrontEndResult,
    compare_with_software,
)

__all__ = [
    "StreamingFrontEnd",
    "StreamingFrontEndResult",
    "StreamedKeypoint",
    "compare_with_software",
    "PingPongImageCache",
    "CacheLineState",
    "FsmTransition",
    "stream_image_through_cache",
    "FastDetectionUnit",
    "ImageSmootherUnit",
    "NmsUnit",
    "OrientationUnit",
    "BriefComputingUnit",
    "BriefRotatorUnit",
    "FeatureHeapUnit",
    "HeapEntry",
    "FEATURE_RECORD_BYTES",
    "ExtractorLatencyReport",
    "OrbExtractorAccelerator",
]
