"""The ping-pong Image Cache and its finite-state machine (Figure 5).

The Image Cache of the ORB Extractor holds three cache lines, each storing 8
columns of image pixels.  The lines receive input data by turns under control
of an FSM: the FSM is initialised by pre-storing 16 columns (two lines), and
in every subsequent state one line receives new columns from the AXI stream
while the other two feed the 7x7-window datapath.  The same ping-pong
structure is reused for the Score Cache and the Smoothened Image Cache.

:class:`PingPongImageCache` simulates this behaviour explicitly: columns are
pushed in groups of ``columns_per_line`` and the class tracks which line is
filling and which lines are readable in each state, so tests can check the
schedule of Figure 5 literally (line A, B fill first, then C fills while A
and B stream out, and so on cyclically).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ...errors import HardwareModelError
from .. import bram


@dataclass
class CacheLineState:
    """State of one cache line at a point in time."""

    index: int
    columns: Optional[np.ndarray] = None  # (rows, columns_per_line) pixels
    column_offset: int = -1  # image column index of the first stored column

    @property
    def is_valid(self) -> bool:
        return self.columns is not None


@dataclass
class FsmTransition:
    """Record of one FSM state: which line filled, which lines streamed."""

    state_index: int
    filling_line: int
    streaming_lines: Tuple[int, int]
    column_offset: int


class PingPongImageCache:
    """Cycle- and data-accurate model of the 3-line ping-pong cache.

    Parameters
    ----------
    rows:
        Image height (pixels per column).
    columns_per_line:
        Number of image columns stored per cache line (8 in the paper).
    num_lines:
        Number of cache lines (3 in the paper).
    """

    def __init__(self, rows: int, columns_per_line: int = 8, num_lines: int = 3) -> None:
        if rows <= 0:
            raise HardwareModelError("rows must be positive")
        if columns_per_line <= 0:
            raise HardwareModelError("columns_per_line must be positive")
        if num_lines < 3:
            raise HardwareModelError("the ping-pong cache needs at least 3 lines")
        self.rows = rows
        self.columns_per_line = columns_per_line
        self.num_lines = num_lines
        self.lines: List[CacheLineState] = [CacheLineState(i) for i in range(num_lines)]
        self.transitions: List[FsmTransition] = []
        self._next_fill = 0
        self._columns_loaded = 0
        self._state_index = 0

    # -- loading -------------------------------------------------------------
    def push_columns(self, columns: np.ndarray) -> FsmTransition:
        """Load one line's worth of image columns into the cache.

        ``columns`` must have shape ``(rows, columns_per_line)``.  Returns the
        FSM transition record describing which line filled and which lines are
        streaming to the datapath during this state.
        """
        columns = np.asarray(columns, dtype=np.uint8)
        if columns.shape != (self.rows, self.columns_per_line):
            raise HardwareModelError(
                f"expected columns of shape {(self.rows, self.columns_per_line)}, "
                f"got {columns.shape}"
            )
        fill_index = self._next_fill
        line = self.lines[fill_index]
        line.columns = columns.copy()
        line.column_offset = self._columns_loaded
        self._columns_loaded += self.columns_per_line
        self._next_fill = (self._next_fill + 1) % self.num_lines
        streaming = self._streaming_lines(fill_index)
        transition = FsmTransition(
            state_index=self._state_index,
            filling_line=fill_index,
            streaming_lines=streaming,
            column_offset=line.column_offset,
        )
        self.transitions.append(transition)
        self._state_index += 1
        return transition

    def _streaming_lines(self, filling: int) -> Tuple[int, int]:
        """The two lines that feed the datapath while ``filling`` receives data."""
        others = [i for i in range(self.num_lines) if i != filling]
        return (others[0], others[1])

    # -- data access ------------------------------------------------------------
    @property
    def is_initialized(self) -> bool:
        """True once two lines have been pre-stored (the FSM's initial condition)."""
        return sum(1 for line in self.lines if line.is_valid) >= 2

    def readable_columns(self) -> int:
        """Number of distinct image columns currently resident in the cache."""
        return sum(self.columns_per_line for line in self.lines if line.is_valid)

    def window(self, center_column: int, width: int = 7) -> np.ndarray:
        """Extract a ``rows x width`` slab centred on ``center_column``.

        The requested columns must all be resident; this mirrors the datapath
        constraint that the 7x7 window only reads from the two streaming
        lines (plus the previously filled one).
        """
        half = width // 2
        first = center_column - half
        last = center_column + half
        slab = np.zeros((self.rows, width), dtype=np.uint8)
        for offset in range(width):
            column_index = first + offset
            slab[:, offset] = self._column(column_index)
        if first < 0 or last >= self._columns_loaded:
            raise HardwareModelError(
                f"window [{first}, {last}] outside loaded columns (0..{self._columns_loaded - 1})"
            )
        return slab

    def _column(self, column_index: int) -> np.ndarray:
        if column_index < 0:
            raise HardwareModelError(f"column {column_index} is negative")
        for line in self.lines:
            if not line.is_valid:
                continue
            start = line.column_offset
            if start <= column_index < start + self.columns_per_line:
                assert line.columns is not None
                return line.columns[:, column_index - start]
        raise HardwareModelError(f"column {column_index} is not resident in the cache")

    # -- reporting ------------------------------------------------------------
    def bram_requirement(self, name: str = "image_cache") -> bram.BramRequirement:
        """On-chip storage of the cache (used by the resource model)."""
        return bram.BramRequirement(
            name=name,
            depth=self.rows,
            width_bits=self.columns_per_line * 8,
            copies=self.num_lines,
        )

    def fsm_schedule(self) -> List[Tuple[int, Tuple[int, int]]]:
        """Return the (filling line, streaming lines) sequence observed so far.

        This is the schedule Figure 5 draws: after initialisation the fill
        target cycles A -> B -> C -> A -> ... while the other two lines stream.
        """
        return [(t.filling_line, t.streaming_lines) for t in self.transitions]


def stream_image_through_cache(
    pixels: np.ndarray, columns_per_line: int = 8, num_lines: int = 3
) -> tuple[PingPongImageCache, int]:
    """Stream a whole image through a fresh cache; return (cache, num_states).

    Used by tests and by the Figure-5 benchmark to reproduce the documented
    I/O schedule on a real image.  Trailing columns that do not fill a whole
    line are zero-padded, as a hardware DMA would pad the final burst.
    """
    pixels = np.asarray(pixels, dtype=np.uint8)
    if pixels.ndim != 2:
        raise HardwareModelError("pixels must be a 2-D array")
    rows, cols = pixels.shape
    cache = PingPongImageCache(rows, columns_per_line, num_lines)
    num_groups = (cols + columns_per_line - 1) // columns_per_line
    for group in range(num_groups):
        start = group * columns_per_line
        stop = min(start + columns_per_line, cols)
        block = np.zeros((rows, columns_per_line), dtype=np.uint8)
        block[:, : stop - start] = pixels[:, start:stop]
        cache.push_columns(block)
    return cache, num_groups
