"""Top-level eSLAM FPGA accelerator model (Figure 3).

Composes the ORB Extractor, the BRIEF Matcher and the Image Resizing module
behind a shared AXI/SDRAM interface, producing per-frame functional outputs
(features, matches) together with the modelled FPGA latency of the feature
extraction (FE) and feature matching (FM) stages that feed the heterogeneous
pipeline model in :mod:`repro.platforms`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..config import AcceleratorConfig, ExtractorConfig
from ..features import ExtractionResult
from ..image import GrayImage
from ..matching import Match
from .axi import SdramModel
from .brief_matcher import BriefMatcherAccelerator, MatcherLatencyReport
from .orb_extractor import ExtractorLatencyReport, OrbExtractorAccelerator
from .resizer import ImageResizerModule
from .resources import DeviceCapacity, ResourceModel, ResourceReport


@dataclass
class AcceleratorFrameReport:
    """Everything the accelerator produced for one frame."""

    extraction: ExtractionResult
    matches: List[Match]
    extractor_report: ExtractorLatencyReport
    matcher_report: Optional[MatcherLatencyReport]

    @property
    def feature_extraction_ms(self) -> float:
        return self.extractor_report.latency_ms

    @property
    def feature_matching_ms(self) -> float:
        if self.matcher_report is None:
            return 0.0
        return self.matcher_report.latency_ms


class EslamAccelerator:
    """The FPGA portion of eSLAM: extractor + matcher + resizer."""

    def __init__(
        self,
        extractor_config: ExtractorConfig | None = None,
        accel_config: AcceleratorConfig | None = None,
        sdram_capacity_bytes: int = 1 << 30,
    ) -> None:
        self.extractor_config = extractor_config or ExtractorConfig()
        self.accel_config = accel_config or AcceleratorConfig()
        self.extractor = OrbExtractorAccelerator(self.extractor_config, self.accel_config)
        self.matcher = BriefMatcherAccelerator(self.accel_config)
        self.resizer = ImageResizerModule(self.extractor_config.pyramid, self.accel_config)
        self.sdram = SdramModel(sdram_capacity_bytes)
        self._reserve_sdram_buffers()

    def _reserve_sdram_buffers(self) -> None:
        """Allocate the off-chip buffers the accelerator expects to exist."""
        image_bytes = self.extractor_config.image_width * self.extractor_config.image_height
        self.sdram.allocate("input_image", image_bytes)
        self.sdram.allocate("pyramid", image_bytes)  # downsampled levels fit in one frame
        self.sdram.allocate(
            "feature_results", self.extractor_config.max_features * 40
        )
        self.sdram.allocate("map_descriptors", 32 * 65536)
        self.sdram.allocate("match_results", self.extractor_config.max_features * 8)

    # -- per-frame processing -----------------------------------------------------
    def process_frame(
        self,
        image: GrayImage,
        map_descriptors: Optional[np.ndarray] = None,
    ) -> AcceleratorFrameReport:
        """Run FE (and FM when a map is supplied) for one frame."""
        extraction, extractor_report = self.extractor.extract(image)
        matches: List[Match] = []
        matcher_report: Optional[MatcherLatencyReport] = None
        if map_descriptors is not None and np.asarray(map_descriptors).size > 0:
            matches, matcher_report = self.matcher.match(
                extraction.descriptor_matrix(), map_descriptors
            )
        return AcceleratorFrameReport(
            extraction=extraction,
            matches=matches,
            extractor_report=extractor_report,
            matcher_report=matcher_report,
        )

    # -- analytic latencies (no image needed) ---------------------------------------
    def feature_extraction_latency_ms(
        self, keypoints_after_nms: int, descriptors_computed: Optional[int] = None
    ) -> float:
        """FE latency for a nominal full-resolution frame and given keypoint load."""
        blank = GrayImage.zeros(
            self.extractor_config.image_height, self.extractor_config.image_width
        )
        report = self.extractor.latency_from_profile(
            blank,
            keypoints_after_nms=keypoints_after_nms,
            descriptors_computed=descriptors_computed,
        )
        return report.latency_ms

    def feature_matching_latency_ms(self, num_features: int, num_map_points: int) -> float:
        """FM latency for the given matching workload."""
        return self.matcher.latency_for(num_features, num_map_points).latency_ms

    # -- resources --------------------------------------------------------------------
    def resource_report(self, device: DeviceCapacity | None = None) -> ResourceReport:
        """Estimated FPGA resource utilisation (Table 1)."""
        model = ResourceModel(
            extractor_config=self.extractor_config,
            accel_config=self.accel_config,
            device=device or DeviceCapacity.xc7z045(),
        )
        return model.estimate()
