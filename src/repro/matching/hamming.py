"""Hamming distance between binary descriptors.

BRIEF descriptors are binary strings, so descriptor distance is the Hamming
distance (number of differing bits).  The hardware Distance Computing module
realises this with XOR followed by a popcount adder tree; the software path
uses a byte-wise popcount lookup table so that full ``N x M`` distance
matrices are a handful of vectorised numpy operations.
"""

from __future__ import annotations

import numpy as np

from ..errors import DescriptorError

#: Popcount of every byte value, used to vectorise Hamming distance.
_POPCOUNT_TABLE = np.array([bin(value).count("1") for value in range(256)], dtype=np.uint8)


def _validate_descriptor_matrix(descriptors: np.ndarray, name: str) -> np.ndarray:
    matrix = np.asarray(descriptors, dtype=np.uint8)
    if matrix.ndim == 1:
        matrix = matrix[np.newaxis, :]
    if matrix.ndim != 2:
        raise DescriptorError(f"{name} must be a 1-D or 2-D byte array, got {matrix.ndim}-D")
    return matrix


def hamming_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Return the Hamming distance between two packed descriptors."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.shape != b.shape:
        raise DescriptorError(f"descriptor shapes differ: {a.shape} vs {b.shape}")
    return int(_POPCOUNT_TABLE[np.bitwise_xor(a, b)].sum())


def hamming_distance_matrix(descriptors_a: np.ndarray, descriptors_b: np.ndarray) -> np.ndarray:
    """Return the ``(N, M)`` Hamming distance matrix between two descriptor sets.

    ``descriptors_a`` has shape ``(N, B)`` and ``descriptors_b`` ``(M, B)``
    where ``B`` is the descriptor byte length (32 for 256-bit descriptors).
    """
    a = _validate_descriptor_matrix(descriptors_a, "descriptors_a")
    b = _validate_descriptor_matrix(descriptors_b, "descriptors_b")
    if a.shape[1] != b.shape[1]:
        raise DescriptorError(
            f"descriptor byte lengths differ: {a.shape[1]} vs {b.shape[1]}"
        )
    xor = np.bitwise_xor(a[:, np.newaxis, :], b[np.newaxis, :, :])
    return _POPCOUNT_TABLE[xor].sum(axis=2, dtype=np.int32)


def popcount_bytes(values: np.ndarray) -> np.ndarray:
    """Return the popcount of every byte in ``values`` (same shape)."""
    return _POPCOUNT_TABLE[np.asarray(values, dtype=np.uint8)]


def normalized_hamming(a: np.ndarray, b: np.ndarray) -> float:
    """Return the Hamming distance as a fraction of descriptor length in bits."""
    a = np.asarray(a, dtype=np.uint8)
    total_bits = a.size * 8
    if total_bits == 0:
        raise DescriptorError("descriptors must not be empty")
    return hamming_distance(a, b) / total_bits
