"""Brute-force descriptor matching.

Feature matching in eSLAM compares every descriptor of the current frame with
every descriptor of the global map and keeps the minimum-distance candidate
(Section 3.2).  The software matcher reproduces that behaviour and adds the
standard quality filters (maximum distance, Lowe ratio test, cross-check)
used to reject ambiguous matches before pose estimation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..config import MatcherConfig
from ..errors import DescriptorError
from .hamming import hamming_distance_matrix


@dataclass(frozen=True)
class Match:
    """A single descriptor correspondence.

    ``query_index`` indexes the current-frame descriptor set, ``train_index``
    the reference (map) descriptor set, and ``distance`` is their Hamming
    distance in bits.
    """

    query_index: int
    train_index: int
    distance: int


@dataclass
class MatchStatistics:
    """Aggregate statistics of one matching pass (used by runtime models)."""

    num_queries: int = 0
    num_candidates: int = 0
    distance_evaluations: int = 0
    accepted: int = 0
    rejected_distance: int = 0
    rejected_ratio: int = 0
    rejected_cross_check: int = 0


@dataclass(frozen=True)
class MatchArrays:
    """Accepted correspondences as parallel arrays (the matcher hot path).

    The array form of a ``List[Match]``: row ``i`` of the three arrays is
    one accepted correspondence.  Consumers that only gather by index (pose
    estimation, map updates) can use the arrays directly; ``to_matches``
    materialises the per-correspondence objects for the object API.
    """

    query_indices: np.ndarray
    train_indices: np.ndarray
    distances: np.ndarray

    @property
    def size(self) -> int:
        return int(self.query_indices.size)

    @classmethod
    def empty(cls) -> "MatchArrays":
        return cls(
            query_indices=np.zeros(0, dtype=np.int64),
            train_indices=np.zeros(0, dtype=np.int64),
            distances=np.zeros(0, dtype=np.int64),
        )

    def to_matches(self) -> List[Match]:
        """Materialise :class:`Match` objects (identical to the object API)."""
        return [
            Match(query_index=int(qi), train_index=int(ti), distance=int(d))
            for qi, ti, d in zip(
                self.query_indices.tolist(),
                self.train_indices.tolist(),
                self.distances.tolist(),
            )
        ]


class BruteForceMatcher:
    """Exhaustive Hamming matcher with optional ratio and cross-check filters."""

    def __init__(self, config: MatcherConfig | None = None) -> None:
        self.config = config or MatcherConfig()
        self.last_stats = MatchStatistics()

    def match(
        self,
        query_descriptors: np.ndarray,
        train_descriptors: np.ndarray,
    ) -> List[Match]:
        """Match every query descriptor against the train set.

        Returns at most one match per query descriptor; matches that fail the
        distance, ratio or cross-check criteria are dropped.  Thin object
        wrapper over :meth:`match_arrays` — identical output and statistics.
        """
        return self.match_arrays(query_descriptors, train_descriptors).to_matches()

    def match_arrays(
        self,
        query_descriptors: np.ndarray,
        train_descriptors: np.ndarray,
    ) -> MatchArrays:
        """Array fast path of :meth:`match`: no per-``Match`` construction.

        Selection and every quality filter run as one array pass per
        criterion; the rejection counters tally exactly like the old
        per-query loop (distance first, then ratio, then cross-check), and
        the accepted rows come back as :class:`MatchArrays` so hot paths
        never build per-correspondence Python objects.
        """
        query = np.asarray(query_descriptors, dtype=np.uint8)
        train = np.asarray(train_descriptors, dtype=np.uint8)
        stats = MatchStatistics(
            num_queries=int(query.shape[0]) if query.ndim == 2 else 0,
            num_candidates=int(train.shape[0]) if train.ndim == 2 else 0,
        )
        self.last_stats = stats
        if query.size == 0 or train.size == 0:
            return MatchArrays.empty()
        if query.ndim != 2 or train.ndim != 2:
            raise DescriptorError("descriptor sets must be 2-D (N, bytes) arrays")
        distances = hamming_distance_matrix(query, train)
        stats.distance_evaluations = distances.size
        best_train = np.argmin(distances, axis=1)
        query_range = np.arange(distances.shape[0])
        best_distance = distances[query_range, best_train]
        alive = best_distance <= self.config.max_hamming_distance
        stats.rejected_distance = int(np.count_nonzero(~alive))
        passes_ratio = self._ratio_test_mask(distances, best_train, best_distance)
        stats.rejected_ratio = int(np.count_nonzero(alive & ~passes_ratio))
        alive &= passes_ratio
        if self.config.cross_check:
            reverse_best = np.argmin(distances, axis=0)
            mutual = reverse_best[best_train] == query_range
            stats.rejected_cross_check = int(np.count_nonzero(alive & ~mutual))
            alive &= mutual
        accepted = np.nonzero(alive)[0].astype(np.int64)
        stats.accepted = int(accepted.size)
        return MatchArrays(
            query_indices=accepted,
            train_indices=best_train[accepted].astype(np.int64),
            distances=best_distance[accepted].astype(np.int64),
        )

    def _ratio_test_mask(
        self, distances: np.ndarray, best_train: np.ndarray, best_distance: np.ndarray
    ) -> np.ndarray:
        """Lowe ratio test for every query row at once.

        The second-best distance is the row minimum with the best *position*
        masked out (identical to the old per-row ``np.delete`` + partition);
        a second-best of 0 always fails, and the test is skipped entirely
        when disabled or when there is only one candidate.
        """
        num_queries, num_candidates = distances.shape
        if self.config.ratio_threshold >= 1.0 or num_candidates < 2:
            return np.ones(num_queries, dtype=bool)
        masked = distances.astype(np.float64, copy=True)
        masked[np.arange(num_queries), best_train] = np.inf
        second = masked.min(axis=1)
        return (second > 0) & (best_distance <= self.config.ratio_threshold * second)


def match_minimum_distance(
    query_descriptors: np.ndarray, train_descriptors: np.ndarray
) -> List[Match]:
    """Pure minimum-distance matching with no filters.

    This is exactly what the hardware BRIEF Matcher computes: for every
    current-frame descriptor, the index of the global-map descriptor with the
    minimum Hamming distance.  Filters are applied later on the host.
    """
    query = np.asarray(query_descriptors, dtype=np.uint8)
    train = np.asarray(train_descriptors, dtype=np.uint8)
    if query.size == 0 or train.size == 0:
        return []
    distances = hamming_distance_matrix(query, train)
    best = np.argmin(distances, axis=1)
    return [
        Match(query_index=qi, train_index=int(ti), distance=int(distances[qi, ti]))
        for qi, ti in enumerate(best)
    ]


def filter_matches_by_distance(matches: Sequence[Match], max_distance: int) -> List[Match]:
    """Return the subset of ``matches`` whose distance is within ``max_distance``."""
    return [m for m in matches if m.distance <= max_distance]
