"""Descriptor matching: Hamming distance and brute-force matchers."""

from .hamming import (
    hamming_distance,
    hamming_distance_matrix,
    normalized_hamming,
    popcount_bytes,
)
from .matcher import (
    BruteForceMatcher,
    Match,
    MatchArrays,
    MatchStatistics,
    filter_matches_by_distance,
    match_minimum_distance,
)

__all__ = [
    "hamming_distance",
    "hamming_distance_matrix",
    "normalized_hamming",
    "popcount_bytes",
    "BruteForceMatcher",
    "Match",
    "MatchArrays",
    "MatchStatistics",
    "match_minimum_distance",
    "filter_matches_by_distance",
]
