"""The global map: insertion, lookup and culling of map points.

Map updating in eSLAM runs only on key frames: new 3-D points observed in the
key frame are added to the global map, and points that have not been matched
for a long period are deleted to keep the map bounded (Section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..errors import MapError
from .map_point import MapPoint


@dataclass
class MapUpdateStats:
    """Bookkeeping of one map-updating step (consumed by runtime models)."""

    points_added: int = 0
    points_deleted: int = 0
    points_total: int = 0


class GlobalMap:
    """Container of all :class:`MapPoint` landmarks.

    The map exposes dense descriptor/position matrices because both the
    software matcher and the hardware BRIEF Matcher model operate on the
    whole map at once.
    """

    def __init__(self, max_points: int = 20000) -> None:
        if max_points <= 0:
            raise MapError("max_points must be positive")
        self.max_points = max_points
        self._points: Dict[int, MapPoint] = {}
        self._next_id = 0
        self._dirty = True
        self._descriptor_cache: Optional[np.ndarray] = None
        self._position_cache: Optional[np.ndarray] = None
        self._id_cache: List[int] = []

    # -- basic container protocol -----------------------------------------
    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, point_id: int) -> bool:
        return point_id in self._points

    def get(self, point_id: int) -> MapPoint:
        try:
            return self._points[point_id]
        except KeyError as exc:
            raise MapError(f"map point {point_id} does not exist") from exc

    def points(self) -> List[MapPoint]:
        return list(self._points.values())

    # -- insertion -----------------------------------------------------------
    def add_point(
        self, position: np.ndarray, descriptor: np.ndarray, created_frame: int
    ) -> MapPoint:
        """Create a new landmark; returns the created :class:`MapPoint`."""
        if len(self._points) >= self.max_points:
            raise MapError(f"map is full (max_points={self.max_points})")
        point = MapPoint(
            point_id=self._next_id,
            position=position,
            descriptor=descriptor,
            created_frame=created_frame,
        )
        self._points[point.point_id] = point
        self._next_id += 1
        self._dirty = True
        return point

    def add_points(
        self,
        positions: Iterable[np.ndarray],
        descriptors: Iterable[np.ndarray],
        created_frame: int,
    ) -> List[MapPoint]:
        """Bulk insertion used by key-frame map updates."""
        created = []
        for position, descriptor in zip(positions, descriptors):
            if len(self._points) >= self.max_points:
                break
            created.append(self.add_point(position, descriptor, created_frame))
        return created

    # -- dense views ------------------------------------------------------------
    def _refresh_cache(self) -> None:
        if not self._dirty:
            return
        ids = sorted(self._points)
        self._id_cache = ids
        if ids:
            self._descriptor_cache = np.stack([self._points[i].descriptor for i in ids])
            self._position_cache = np.stack([self._points[i].position for i in ids])
        else:
            self._descriptor_cache = np.zeros((0, 32), dtype=np.uint8)
            self._position_cache = np.zeros((0, 3), dtype=np.float64)
        self._dirty = False

    def descriptor_matrix(self) -> np.ndarray:
        """All descriptors stacked ``(M, 32)`` in ascending point-id order."""
        self._refresh_cache()
        assert self._descriptor_cache is not None
        return self._descriptor_cache

    def position_matrix(self) -> np.ndarray:
        """All positions stacked ``(M, 3)`` in ascending point-id order."""
        self._refresh_cache()
        assert self._position_cache is not None
        return self._position_cache

    def point_ids(self) -> List[int]:
        """Point ids in the row order of the dense matrices."""
        self._refresh_cache()
        return list(self._id_cache)

    # -- match bookkeeping / culling --------------------------------------------
    def record_match(
        self, point_id: int, frame_index: int, descriptor: np.ndarray | None = None
    ) -> None:
        self.get(point_id).record_match(frame_index, descriptor)
        if descriptor is not None:
            self._dirty = True

    def cull(self, current_frame: int, ttl_frames: int) -> int:
        """Delete points unmatched for more than ``ttl_frames``; return count."""
        if ttl_frames <= 0:
            raise MapError("ttl_frames must be positive")
        stale = [
            point_id
            for point_id, point in self._points.items()
            if point.frames_since_match(current_frame) > ttl_frames
        ]
        for point_id in stale:
            del self._points[point_id]
        if stale:
            self._dirty = True
        return len(stale)
