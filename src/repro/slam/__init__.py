"""SLAM core: frames, map, tracking, full system and trajectory evaluation."""

from .frame import Frame
from .map_point import MapPoint
from .map import GlobalMap, MapUpdateStats
from .keyframe import KeyframeDecision, KeyframePolicy
from .tracker import StageWorkload, Tracker, TrackingResult
from .evaluation import (
    AteResult,
    RpeResult,
    absolute_trajectory_error,
    camera_centers,
    relative_pose_error,
    umeyama_alignment,
)
from .system import SlamRunResult, SlamSystem, run_slam
from .visualization import ascii_scatter, error_bars, matching_summary, trajectory_top_view

__all__ = [
    "ascii_scatter",
    "trajectory_top_view",
    "error_bars",
    "matching_summary",
    "Frame",
    "MapPoint",
    "GlobalMap",
    "MapUpdateStats",
    "KeyframeDecision",
    "KeyframePolicy",
    "StageWorkload",
    "Tracker",
    "TrackingResult",
    "AteResult",
    "RpeResult",
    "absolute_trajectory_error",
    "relative_pose_error",
    "camera_centers",
    "umeyama_alignment",
    "SlamRunResult",
    "SlamSystem",
    "run_slam",
]
