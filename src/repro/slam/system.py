"""The complete ORB-SLAM system (functional model).

:class:`SlamSystem` runs the full pipeline of Figure 1 over an RGB-D sequence
and produces the estimated trajectory, per-frame tracking results and the
per-stage workload statistics consumed by the platform models.  It is the
software twin of the heterogeneous eSLAM system: the accelerated platform
model in :mod:`repro.platforms` reuses its workloads, and the hardware
simulator in :mod:`repro.hw` reproduces its feature-extraction stage cycle by
cycle.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..config import SlamConfig
from ..dataset import RgbdFrame, RgbdSequence
from ..errors import ReproError
from ..geometry import Pose
from ..serving import stable_frame_id
from ..telemetry import current_tracer
from .evaluation import AteResult, absolute_trajectory_error
from .frame import Frame
from .tracker import Tracker, TrackingResult


@dataclass
class SlamRunResult:
    """Everything produced by running SLAM over one sequence."""

    sequence_name: str
    frame_results: List[TrackingResult] = field(default_factory=list)
    estimated_poses: List[Pose] = field(default_factory=list)
    ground_truth_poses: List[Pose] = field(default_factory=list)
    timestamps: List[float] = field(default_factory=list)

    @property
    def num_frames(self) -> int:
        return len(self.frame_results)

    @property
    def num_keyframes(self) -> int:
        return sum(1 for result in self.frame_results if result.is_keyframe)

    @property
    def keyframe_ratio(self) -> float:
        if not self.frame_results:
            return 0.0
        return self.num_keyframes / len(self.frame_results)

    @property
    def tracking_success_ratio(self) -> float:
        if not self.frame_results:
            return 0.0
        return sum(1 for result in self.frame_results if result.tracked) / len(
            self.frame_results
        )

    def ate(self, align: bool = True) -> AteResult:
        """Absolute trajectory error against ground truth."""
        return absolute_trajectory_error(
            self.estimated_poses, self.ground_truth_poses, align=align
        )

    def mean_workload(self) -> dict:
        """Average per-frame workload counters (for the runtime models)."""
        if not self.frame_results:
            return {}
        keys = vars(self.frame_results[0].workload).keys()
        averages = {}
        for key in keys:
            averages[key] = float(
                np.mean([getattr(result.workload, key) for result in self.frame_results])
            )
        return averages


class SlamSystem:
    """Runs the full ORB-SLAM pipeline over RGB-D frames.

    An already-built extractor (with its keypoint compute backend and
    precomputed pattern tables) can be injected so many systems — e.g. the
    sequence sweeps run by :class:`repro.analysis.experiments.BatchRunner` —
    share one engine instead of rebuilding tables per run.
    """

    def __init__(self, config: SlamConfig | None = None, extractor=None) -> None:
        self.config = config or SlamConfig()
        self.tracker = Tracker(self.config, extractor=extractor)

    def process_frame(self, rgbd_frame: RgbdFrame, camera, extraction=None) -> TrackingResult:
        """Process a single RGB-D frame (lower-level entry point)."""
        frame = Frame(
            index=rgbd_frame.index,
            timestamp=rgbd_frame.timestamp,
            image=rgbd_frame.image,
            depth=rgbd_frame.depth,
            camera=camera,
        )
        return self.tracker.process(frame, extraction=extraction)

    def run(
        self,
        sequence: RgbdSequence,
        max_frames: Optional[int] = None,
        frame_server=None,
        frame_ids: Optional[List[int]] = None,
        frame_deadline_s: Optional[float] = None,
    ) -> SlamRunResult:
        """Run the system over a whole sequence and collect results.

        ``frame_server`` accepts anything satisfying the
        :class:`repro.serving.FrameServing` protocol — the thread
        :class:`repro.serving.FrameServer` or the process
        :class:`repro.cluster.ClusterServer` (or one of its
        ``sequence_handle`` shards) — and pipelines feature extraction for
        the whole sequence through it, many frames in flight, while
        tracking consumes the results in order.  Tracking output is
        identical to the sequential path because extraction is a pure
        per-frame function.

        ``frame_ids`` overrides the pyramid-cache key submitted per frame;
        by default each frame gets :func:`repro.serving.stable_frame_id`
        of ``(sequence.name, frame.index)``, so N systems replaying the
        same sequence against one shared pyramid cache attach to one
        cached pyramid N times instead of building N.

        ``frame_deadline_s`` optionally forwards a per-frame serving
        budget to servers that support one (``submit(...,
        deadline_s=...)`` — both shipped servers do): a frame past its
        budget fails with :class:`repro.errors.JobFailed` instead of
        being retried or served arbitrarily late (``docs/serving.md`` →
        Failure semantics).
        """
        result = SlamRunResult(sequence_name=sequence.name)
        frames = [
            rgbd_frame
            for rgbd_frame in sequence
            if max_frames is None or rgbd_frame.index < max_frames
        ]
        if frame_server is not None and frame_server.extractor_config != self.config.extractor:
            raise ReproError(
                "frame server extractor configuration does not match the "
                "SLAM extractor configuration"
            )
        if frame_server is not None:
            if frame_ids is None:
                frame_ids = [
                    stable_frame_id(sequence.name, rgbd_frame.index)
                    for rgbd_frame in frames
                ]
            elif len(frame_ids) != len(frames):
                raise ReproError("frame_ids must supply one id per served frame")
        # keep at most the server's in-flight window of frames submitted
        # ahead of the tracker, so extraction overlaps tracking while only a
        # bounded number of ExtractionResults is ever resident
        pending: deque = deque()
        next_to_submit = 0
        # only forward the deadline when one was asked for, so any server
        # satisfying the protocol keeps working without the keyword
        submit_kwargs = {}
        if frame_deadline_s is not None:
            submit_kwargs["deadline_s"] = frame_deadline_s
        tracer = current_tracer()
        for index, rgbd_frame in enumerate(frames):
            extraction = None
            if frame_server is not None:
                window = frame_server.max_in_flight
                while next_to_submit < len(frames) and next_to_submit <= index + window - 1:
                    pending.append(
                        frame_server.submit(
                            frames[next_to_submit].image,
                            frame_id=frame_ids[next_to_submit],
                            **submit_kwargs,
                        )
                    )
                    next_to_submit += 1
                if tracer.enabled:
                    wait_start = time.perf_counter()
                    extraction = pending.popleft().result()
                    # tracker-side stall waiting on the serving pipeline —
                    # nonzero only when extraction lags tracking
                    tracer.record(
                        "await_result",
                        wait_start,
                        time.perf_counter(),
                        frame=frame_ids[index],
                    )
                else:
                    extraction = pending.popleft().result()
            with tracer.span("track", frame=rgbd_frame.index):
                tracking = self.process_frame(
                    rgbd_frame, sequence.camera, extraction=extraction
                )
            result.frame_results.append(tracking)
            result.estimated_poses.append(tracking.pose)
            result.ground_truth_poses.append(rgbd_frame.ground_truth_pose)
            result.timestamps.append(rgbd_frame.timestamp)
        return result


def run_slam(
    sequence: RgbdSequence,
    config: SlamConfig | None = None,
    max_frames: Optional[int] = None,
) -> SlamRunResult:
    """Convenience wrapper: construct a :class:`SlamSystem` and run it."""
    return SlamSystem(config).run(sequence, max_frames=max_frames)
