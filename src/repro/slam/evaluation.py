"""Trajectory evaluation: absolute trajectory error and relative pose error.

The accuracy of the SLAM system is measured by trajectory error -- the
difference between the ground-truth trajectory and the estimated one
(Section 4.2, Figure 8/9).  Following the TUM benchmark methodology, the
estimated trajectory is first rigidly aligned to the ground truth (Horn /
Umeyama closed form without scale) and the absolute trajectory error (ATE)
is the RMSE / mean of the remaining translational differences.  Relative pose
error (RPE) measures drift over a fixed frame delta.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import DatasetError
from ..geometry import Pose


@dataclass(frozen=True)
class AteResult:
    """Absolute trajectory error statistics (metres)."""

    rmse: float
    mean: float
    median: float
    max: float
    per_frame_errors: np.ndarray
    aligned_estimate: np.ndarray  # (N, 3) aligned estimated camera centres
    ground_truth: np.ndarray  # (N, 3) ground-truth camera centres

    @property
    def mean_cm(self) -> float:
        """Mean error in centimetres (the unit used by Figure 8)."""
        return self.mean * 100.0

    @property
    def rmse_cm(self) -> float:
        return self.rmse * 100.0


@dataclass(frozen=True)
class RpeResult:
    """Relative pose error statistics over a fixed delta."""

    delta_frames: int
    translation_rmse: float
    translation_mean: float
    rotation_rmse_rad: float
    rotation_mean_rad: float
    per_pair_translation: np.ndarray
    per_pair_rotation: np.ndarray


def camera_centers(poses: Sequence[Pose]) -> np.ndarray:
    """Stack camera centres (world frame) of world-to-camera poses."""
    if not poses:
        raise DatasetError("pose list must not be empty")
    return np.stack([pose.camera_center() for pose in poses])


def umeyama_alignment(
    source: np.ndarray, target: np.ndarray, with_scale: bool = False
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Closed-form rigid (optionally similarity) alignment ``target ~ s R source + t``.

    Returns ``(rotation, translation, scale)`` minimising the squared error.
    """
    source = np.asarray(source, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if source.shape != target.shape or source.ndim != 2 or source.shape[1] != 3:
        raise DatasetError("source and target must both be (N, 3)")
    if source.shape[0] < 3:
        raise DatasetError("alignment needs at least 3 points")
    mu_source = source.mean(axis=0)
    mu_target = target.mean(axis=0)
    source_centered = source - mu_source
    target_centered = target - mu_target
    covariance = target_centered.T @ source_centered / source.shape[0]
    u, singular_values, vt = np.linalg.svd(covariance)
    sign = np.sign(np.linalg.det(u @ vt))
    d = np.diag([1.0, 1.0, sign])
    rotation = u @ d @ vt
    if with_scale:
        variance = (source_centered**2).sum() / source.shape[0]
        scale = float(np.trace(np.diag(singular_values) @ d) / variance)
    else:
        scale = 1.0
    translation = mu_target - scale * rotation @ mu_source
    return rotation, translation, scale


def absolute_trajectory_error(
    estimated: Sequence[Pose], ground_truth: Sequence[Pose], align: bool = True
) -> AteResult:
    """Compute the ATE between estimated and ground-truth trajectories.

    Both trajectories must have the same length and frame correspondence
    (true by construction for the synthetic sequences).
    """
    if len(estimated) != len(ground_truth):
        raise DatasetError("trajectories must have the same length")
    est_centers = camera_centers(estimated)
    gt_centers = camera_centers(ground_truth)
    if align and len(estimated) >= 3:
        rotation, translation, scale = umeyama_alignment(est_centers, gt_centers)
        aligned = (scale * (rotation @ est_centers.T)).T + translation
    else:
        aligned = est_centers
    errors = np.linalg.norm(aligned - gt_centers, axis=1)
    return AteResult(
        rmse=float(np.sqrt((errors**2).mean())),
        mean=float(errors.mean()),
        median=float(np.median(errors)),
        max=float(errors.max()),
        per_frame_errors=errors,
        aligned_estimate=aligned,
        ground_truth=gt_centers,
    )


def relative_pose_error(
    estimated: Sequence[Pose], ground_truth: Sequence[Pose], delta_frames: int = 1
) -> RpeResult:
    """Compute the RPE over pose pairs separated by ``delta_frames``."""
    if len(estimated) != len(ground_truth):
        raise DatasetError("trajectories must have the same length")
    if delta_frames < 1:
        raise DatasetError("delta_frames must be >= 1")
    if len(estimated) <= delta_frames:
        raise DatasetError("trajectory too short for the requested delta")
    translations: List[float] = []
    rotations: List[float] = []
    for i in range(len(estimated) - delta_frames):
        est_rel = estimated[i + delta_frames].compose(estimated[i].inverse())
        gt_rel = ground_truth[i + delta_frames].compose(ground_truth[i].inverse())
        error = est_rel.compose(gt_rel.inverse())
        translations.append(float(np.linalg.norm(error.translation)))
        rotations.append(error.rotation_angle(Pose.identity()))
    translation_array = np.array(translations)
    rotation_array = np.array(rotations)
    return RpeResult(
        delta_frames=delta_frames,
        translation_rmse=float(np.sqrt((translation_array**2).mean())),
        translation_mean=float(translation_array.mean()),
        rotation_rmse_rad=float(np.sqrt((rotation_array**2).mean())),
        rotation_mean_rad=float(rotation_array.mean()),
        per_pair_translation=translation_array,
        per_pair_rotation=rotation_array,
    )
