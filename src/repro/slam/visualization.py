"""Text-based visualisation of trajectories and tracking results.

The paper's Figure 9 overlays estimated trajectories on the ground truth.
Without a plotting dependency, this module renders the same comparison as an
ASCII scatter plot (top-down x/z view by default) plus per-frame error bars,
which the examples and the Figure-9 benchmark print to the terminal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import DatasetError
from ..geometry import Pose
from .evaluation import camera_centers


@dataclass(frozen=True)
class PlotExtent:
    """Axis ranges of a 2-D plot."""

    x_min: float
    x_max: float
    y_min: float
    y_max: float

    @property
    def x_span(self) -> float:
        return max(self.x_max - self.x_min, 1e-9)

    @property
    def y_span(self) -> float:
        return max(self.y_max - self.y_min, 1e-9)


def _extent(points: np.ndarray, margin: float = 0.05) -> PlotExtent:
    x_min, x_max = float(points[:, 0].min()), float(points[:, 0].max())
    y_min, y_max = float(points[:, 1].min()), float(points[:, 1].max())
    pad_x = margin * max(x_max - x_min, 1e-3)
    pad_y = margin * max(y_max - y_min, 1e-3)
    return PlotExtent(x_min - pad_x, x_max + pad_x, y_min - pad_y, y_max + pad_y)


def ascii_scatter(
    series: Sequence[Tuple[str, np.ndarray]],
    width: int = 60,
    height: int = 20,
    markers: str = "*o+x",
) -> str:
    """Render several 2-D point series on a shared character grid.

    ``series`` is a list of ``(label, points)`` pairs with ``points`` of shape
    ``(N, 2)``.  Later series overwrite earlier ones where they collide, which
    makes overlapping trajectories visible as mixed markers.
    """
    if not series:
        raise DatasetError("at least one series is required")
    if width < 10 or height < 5:
        raise DatasetError("plot must be at least 10x5 characters")
    stacked = np.vstack([points for _, points in series])
    if stacked.ndim != 2 or stacked.shape[1] != 2:
        raise DatasetError("series points must be (N, 2) arrays")
    extent = _extent(stacked)
    grid = [[" "] * width for _ in range(height)]
    for series_index, (_, points) in enumerate(series):
        marker = markers[series_index % len(markers)]
        cols = ((points[:, 0] - extent.x_min) / extent.x_span * (width - 1)).astype(int)
        rows = ((points[:, 1] - extent.y_min) / extent.y_span * (height - 1)).astype(int)
        for row, col in zip(rows, cols):
            grid[height - 1 - row][col] = marker
    lines = ["".join(row) for row in grid]
    legend = "  ".join(
        f"{markers[i % len(markers)]} = {label}" for i, (label, _) in enumerate(series)
    )
    header = (
        f"x: [{extent.x_min:+.2f}, {extent.x_max:+.2f}] m   "
        f"y: [{extent.y_min:+.2f}, {extent.y_max:+.2f}] m"
    )
    return "\n".join([header, legend, "+" + "-" * width + "+"]
                     + ["|" + line + "|" for line in lines]
                     + ["+" + "-" * width + "+"])


def trajectory_top_view(
    estimated: Sequence[Pose],
    ground_truth: Sequence[Pose],
    width: int = 60,
    height: int = 20,
) -> str:
    """Top-down (x, z) overlay of an estimated trajectory on its ground truth.

    This is the ASCII analogue of Figure 9.
    """
    if len(estimated) != len(ground_truth):
        raise DatasetError("trajectories must have the same length")
    est = camera_centers(estimated)[:, [0, 2]]
    gt = camera_centers(ground_truth)[:, [0, 2]]
    return ascii_scatter(
        [("ground truth", gt), ("estimated", est)], width=width, height=height
    )


def error_bars(per_frame_errors: np.ndarray, width: int = 50) -> str:
    """Render per-frame trajectory errors as horizontal bars (one row per frame)."""
    errors = np.asarray(per_frame_errors, dtype=np.float64)
    if errors.ndim != 1 or errors.size == 0:
        raise DatasetError("per_frame_errors must be a non-empty 1-D array")
    peak = max(float(errors.max()), 1e-9)
    lines = [f"per-frame ATE (max {peak * 100:.2f} cm)"]
    for index, error in enumerate(errors):
        bar = "#" * int(round(error / peak * width))
        lines.append(f"  {index:3d} |{bar:<{width}s}| {error * 100:6.2f} cm")
    return "\n".join(lines)


def matching_summary(num_features: int, num_matches: int, num_inliers: int) -> str:
    """One-line funnel summary: features -> matches -> RANSAC inliers."""
    if num_features <= 0:
        return "no features extracted"
    match_rate = 100.0 * num_matches / num_features
    inlier_rate = 100.0 * num_inliers / max(1, num_matches)
    return (
        f"{num_features} features -> {num_matches} matches ({match_rate:.0f}%) "
        f"-> {num_inliers} inliers ({inlier_rate:.0f}% of matches)"
    )
