"""Frame-to-map tracking: the SLAM front-end.

The tracker strings together the stages of Figure 1: feature extraction,
feature matching against the global map, pose estimation (PnP + RANSAC),
pose optimisation (Levenberg-Marquardt on reprojection error), key-frame
decision and map updating.  It also records per-stage workload statistics so
the platform runtime models can translate the *same* work into latencies on
the ARM, Intel i7 and eSLAM platforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..config import SlamConfig
from ..errors import TrackingError
from ..features import OrbExtractor
from ..geometry import PnpRansac, Pose, RansacConfig
from ..matching import BruteForceMatcher, MatchArrays
from ..optimization import PoseOptimizer
from .frame import Frame
from .keyframe import KeyframePolicy
from .map import GlobalMap, MapUpdateStats


@dataclass
class StageWorkload:
    """Workload counters of one frame, grouped by pipeline stage.

    These counters are deliberately platform-independent: the number of
    pixels processed, descriptors computed, descriptor-pair distances
    evaluated, RANSAC/LM iterations run and map points touched.  The platform
    models in :mod:`repro.platforms` convert them into per-stage runtimes.
    """

    # feature extraction
    pixels_processed: int = 0
    keypoints_detected: int = 0
    descriptors_computed: int = 0
    features_retained: int = 0
    # feature matching
    map_points_matched_against: int = 0
    distance_evaluations: int = 0
    matches_accepted: int = 0
    # pose estimation
    ransac_iterations: int = 0
    ransac_inliers: int = 0
    # pose optimisation
    lm_iterations: int = 0
    lm_observations: int = 0
    # map updating
    map_points_added: int = 0
    map_points_deleted: int = 0
    map_size_after: int = 0


@dataclass
class TrackingResult:
    """Per-frame tracking outcome."""

    frame_index: int
    timestamp: float
    pose: Pose
    is_keyframe: bool
    num_matches: int
    num_inliers: int
    tracked: bool
    workload: StageWorkload = field(default_factory=StageWorkload)


class Tracker:
    """RGB-D frame-to-map tracker implementing the eSLAM pipeline stages.

    Parameters
    ----------
    config:
        SLAM configuration (extractor, matcher, tracker sections).
    extractor:
        Optional pre-built :class:`OrbExtractor` to reuse.  Batch drivers
        (:class:`repro.analysis.experiments.BatchRunner`) share one extractor
        — and therefore one keypoint compute backend with its precomputed
        pattern tables — across many sequences; its configuration must match
        ``config.extractor``.
    """

    def __init__(
        self,
        config: SlamConfig | None = None,
        extractor: OrbExtractor | None = None,
    ) -> None:
        self.config = config or SlamConfig()
        if extractor is not None and extractor.config != self.config.extractor:
            raise TrackingError(
                "injected extractor configuration does not match config.extractor"
            )
        self.extractor = extractor or OrbExtractor(self.config.extractor)
        self.matcher = BruteForceMatcher(self.config.matcher)
        self.map = GlobalMap(max_points=self.config.tracker.max_map_points)
        self.keyframe_policy = KeyframePolicy(self.config.tracker)
        self._last_pose: Optional[Pose] = None
        self.results: List[TrackingResult] = []

    # -- public API ----------------------------------------------------------
    def process(self, frame: Frame, extraction=None) -> TrackingResult:
        """Track one frame; returns the per-frame result (also stored).

        ``extraction`` optionally supplies a precomputed
        :class:`~repro.features.ExtractionResult` for the frame (produced by
        a :class:`repro.serving.FrameServer` pipelining extraction ahead of
        tracking); extraction is a pure function of the image, so the result
        is identical to extracting inline.
        """
        workload = StageWorkload()
        self._extract(frame, workload, extraction=extraction)
        if len(self.map) == 0:
            result = self._initialize(frame, workload)
        else:
            result = self._track(frame, workload)
        self.results.append(result)
        return result

    @property
    def last_pose(self) -> Optional[Pose]:
        return self._last_pose

    def estimated_poses(self) -> List[Pose]:
        return [result.pose for result in self.results]

    # -- stage 1: feature extraction ------------------------------------------
    def _extract(self, frame: Frame, workload: StageWorkload, extraction=None) -> None:
        if extraction is None:
            extraction = self.extractor.extract(frame.image)
        frame.set_features(extraction)
        profile = extraction.profile
        workload.pixels_processed = profile.pixels_processed
        workload.keypoints_detected = profile.keypoints_detected
        workload.descriptors_computed = profile.descriptors_computed
        workload.features_retained = profile.features_retained

    # -- initialisation ----------------------------------------------------------
    def _initialize(self, frame: Frame, workload: StageWorkload) -> TrackingResult:
        """Bootstrap the map from the first frame (pose = identity)."""
        frame.pose = Pose.identity()
        frame.is_keyframe = True
        self.keyframe_policy.evaluate(frame.pose)
        stats = self._update_map(
            frame, matched_feature_indices=np.zeros(0, dtype=np.int64)
        )
        workload.map_points_added = stats.points_added
        workload.map_points_deleted = stats.points_deleted
        workload.map_size_after = stats.points_total
        self._last_pose = frame.pose
        return TrackingResult(
            frame_index=frame.index,
            timestamp=frame.timestamp,
            pose=frame.pose,
            is_keyframe=True,
            num_matches=0,
            num_inliers=0,
            tracked=True,
            workload=workload,
        )

    # -- stages 2-5: matching, pose estimation/optimisation, map update ----------
    def _track(self, frame: Frame, workload: StageWorkload) -> TrackingResult:
        matches = self._match(frame, workload)
        if matches.size < self.config.tracker.min_matches:
            return self._tracking_failure(frame, workload, matches.size)
        pose, inlier_matches = self._estimate_pose(frame, matches, workload)
        if pose is None:
            return self._tracking_failure(frame, workload, matches.size)
        pose = self._optimize_pose(frame, pose, inlier_matches, workload)
        frame.pose = pose
        decision = self.keyframe_policy.evaluate(pose)
        frame.is_keyframe = decision.is_keyframe
        matched_ids = self._record_matches(frame, inlier_matches)
        if decision.is_keyframe:
            stats = self._update_map(
                frame, matched_feature_indices=inlier_matches.query_indices
            )
            workload.map_points_added = stats.points_added
            workload.map_points_deleted = stats.points_deleted
            workload.map_size_after = stats.points_total
        else:
            workload.map_size_after = len(self.map)
        self._last_pose = pose
        return TrackingResult(
            frame_index=frame.index,
            timestamp=frame.timestamp,
            pose=pose,
            is_keyframe=decision.is_keyframe,
            num_matches=matches.size,
            num_inliers=inlier_matches.size,
            tracked=True,
            workload=workload,
        )

    def _match(self, frame: Frame, workload: StageWorkload) -> MatchArrays:
        """Match the frame against the map; arrays only on the hot path.

        The matcher's :class:`~repro.matching.MatchArrays` feed pose
        estimation, optimisation and map updating through vectorised index
        gathers; per-correspondence :class:`~repro.matching.Match` objects
        are never materialised while tracking.
        """
        map_descriptors = self.map.descriptor_matrix()
        matches = self.matcher.match_arrays(frame.descriptor_matrix(), map_descriptors)
        stats = self.matcher.last_stats
        workload.map_points_matched_against = stats.num_candidates
        workload.distance_evaluations = stats.distance_evaluations
        workload.matches_accepted = stats.accepted
        return matches

    def _estimate_pose(
        self, frame: Frame, matches: MatchArrays, workload: StageWorkload
    ) -> tuple[Optional[Pose], MatchArrays]:
        positions = self.map.position_matrix()
        pixels = frame.keypoint_pixels()
        depths = frame.feature_depths()
        points_world = positions[matches.train_indices]
        observations = pixels[matches.query_indices]
        observed_depths = depths[matches.query_indices]
        ransac = PnpRansac(
            frame.camera,
            RansacConfig(
                num_iterations=self.config.tracker.ransac_iterations,
                inlier_threshold_px=self.config.tracker.ransac_threshold_px,
                min_inliers=self.config.tracker.min_matches,
                seed=frame.index + 1,
            ),
        )
        try:
            result = ransac.estimate(
                points_world,
                observations,
                observed_depths=observed_depths,
                initial_pose=self._last_pose,
            )
        except Exception:  # degenerate configurations fall back to failure handling
            return None, MatchArrays.empty()
        workload.ransac_iterations = result.num_iterations
        workload.ransac_inliers = result.num_inliers
        if not result.success:
            return None, MatchArrays.empty()
        inliers = np.asarray(result.inlier_indices(), dtype=np.int64)
        inlier_matches = MatchArrays(
            query_indices=matches.query_indices[inliers],
            train_indices=matches.train_indices[inliers],
            distances=matches.distances[inliers],
        )
        return result.model, inlier_matches

    def _optimize_pose(
        self,
        frame: Frame,
        pose: Pose,
        inlier_matches: MatchArrays,
        workload: StageWorkload,
    ) -> Pose:
        if inlier_matches.size < 3:
            return pose
        positions = self.map.position_matrix()
        pixels = frame.keypoint_pixels()
        points_world = positions[inlier_matches.train_indices]
        observations = pixels[inlier_matches.query_indices]
        optimizer = PoseOptimizer(
            frame.camera, max_iterations=self.config.tracker.pose_iterations
        )
        result = optimizer.optimize(points_world, observations, pose)
        workload.lm_iterations = result.iterations
        workload.lm_observations = inlier_matches.size
        return result.pose

    def _record_matches(self, frame: Frame, inlier_matches: MatchArrays) -> List[int]:
        """Update matched map points' statistics; return matched point ids."""
        point_ids = self.map.point_ids()
        matched_ids = []
        for train_index in inlier_matches.train_indices.tolist():
            point_id = point_ids[train_index]
            self.map.record_match(point_id, frame.index)
            matched_ids.append(point_id)
        return matched_ids

    def _update_map(
        self, frame: Frame, matched_feature_indices: np.ndarray
    ) -> MapUpdateStats:
        """Key-frame map update: add new points, cull stale ones.

        Operates on the frame's feature arrays: unmatched features with valid
        depth are back-projected and transformed to world coordinates in one
        batch instead of one Python call chain per feature.
        ``matched_feature_indices`` is the accepted correspondences'
        ``query_indices`` array (possibly empty).
        """
        if frame.pose is None:
            raise TrackingError("frame pose must be set before map updating")
        stats = MapUpdateStats()
        depths = frame.feature_depths()
        candidates = depths > 0
        matched = np.asarray(matched_feature_indices, dtype=np.int64)
        if matched.size:
            candidates[matched[matched < candidates.size]] = False
        selected = np.nonzero(candidates)[0]
        if selected.size:
            pixels = frame.keypoint_pixels()[selected]
            points_cam = frame.camera.back_project_many(pixels, depths[selected])
            points_world = frame.pose.inverse().transform(points_cam)
            descriptor_rows = frame.descriptor_matrix()[selected]
            created = self.map.add_points(
                list(points_world), list(descriptor_rows), frame.index
            )
        else:
            created = []
        stats.points_added = len(created)
        stats.points_deleted = self.map.cull(
            frame.index, self.config.tracker.map_point_ttl_frames
        )
        stats.points_total = len(self.map)
        return stats

    def _tracking_failure(
        self, frame: Frame, workload: StageWorkload, num_matches: int
    ) -> TrackingResult:
        """Fallback when matching/pose estimation fails: hold the last pose."""
        pose = self._last_pose or Pose.identity()
        frame.pose = pose
        workload.map_size_after = len(self.map)
        return TrackingResult(
            frame_index=frame.index,
            timestamp=frame.timestamp,
            pose=pose,
            is_keyframe=False,
            num_matches=num_matches,
            num_inliers=0,
            tracked=False,
            workload=workload,
        )
