"""Key-frame selection policy.

Key frames are frames whose camera translation or rotation relative to the
previous key frame exceeds a threshold (Section 2.1).  Map updating only runs
on key frames, which also changes the accelerator pipeline schedule (Fig. 7),
so the policy exposes the observed key-frame rate for the platform models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import TrackerConfig
from ..geometry import Pose


@dataclass
class KeyframeDecision:
    """Outcome of the key-frame test for one frame."""

    is_keyframe: bool
    translation_m: float
    rotation_rad: float
    reason: str


class KeyframePolicy:
    """Threshold-based key-frame selection.

    The first tracked frame is always a key frame (it bootstraps the map).
    Subsequent frames become key frames when they have moved more than
    ``keyframe_translation_m`` metres or rotated more than
    ``keyframe_rotation_rad`` radians since the last key frame.
    """

    def __init__(self, config: TrackerConfig | None = None) -> None:
        self.config = config or TrackerConfig()
        self._last_keyframe_pose: Optional[Pose] = None
        self.num_keyframes = 0
        self.num_frames = 0

    def evaluate(self, pose: Pose) -> KeyframeDecision:
        """Evaluate (and record) the key-frame decision for a tracked pose."""
        self.num_frames += 1
        if self._last_keyframe_pose is None:
            self._accept(pose)
            return KeyframeDecision(True, 0.0, 0.0, "first frame")
        translation = pose.translation_distance(self._last_keyframe_pose)
        rotation = pose.rotation_angle(self._last_keyframe_pose)
        if translation > self.config.keyframe_translation_m:
            self._accept(pose)
            return KeyframeDecision(True, translation, rotation, "translation threshold")
        if rotation > self.config.keyframe_rotation_rad:
            self._accept(pose)
            return KeyframeDecision(True, translation, rotation, "rotation threshold")
        return KeyframeDecision(False, translation, rotation, "below thresholds")

    def _accept(self, pose: Pose) -> None:
        self._last_keyframe_pose = pose
        self.num_keyframes += 1

    @property
    def keyframe_ratio(self) -> float:
        """Fraction of processed frames that became key frames."""
        if self.num_frames == 0:
            return 0.0
        return self.num_keyframes / self.num_frames

    def reset(self) -> None:
        self._last_keyframe_pose = None
        self.num_keyframes = 0
        self.num_frames = 0
