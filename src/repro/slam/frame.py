"""Frame representation used by the SLAM front-end."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import TrackingError
from ..features import ExtractionResult, Feature
from ..geometry import PinholeCamera, Pose
from ..image import GrayImage


@dataclass
class Frame:
    """One RGB-D frame moving through the SLAM pipeline.

    A frame starts as raw sensor data (grayscale image + depth map) and is
    progressively annotated with extracted features, its estimated pose and
    its key-frame status.
    """

    index: int
    timestamp: float
    image: GrayImage
    depth: np.ndarray
    camera: PinholeCamera
    extraction: Optional[ExtractionResult] = None
    pose: Optional[Pose] = None  # world-to-camera, set by the tracker
    is_keyframe: bool = False
    # materialised lazily from ``extraction`` — the tracking hot path only
    # touches the dense arrays, so an arrays-first extraction result (the
    # cluster's packed result transport) never builds Feature objects here
    _features: Optional[List[Feature]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        depth = np.asarray(self.depth, dtype=np.float64)
        if depth.shape != self.image.shape:
            raise TrackingError(
                f"depth shape {depth.shape} does not match image shape {self.image.shape}"
            )
        self.depth = depth

    # -- feature helpers -------------------------------------------------
    # The matrix/array accessors below are the SLAM hot path: they hand the
    # extraction result's cached arrays straight to matching / RANSAC / map
    # updating instead of rebuilding them from per-feature objects each call.
    def set_features(self, extraction: ExtractionResult) -> None:
        """Attach the result of ORB extraction to this frame."""
        self.extraction = extraction
        self._features = None

    @property
    def features(self) -> List[Feature]:
        """Per-feature objects, materialised on first access."""
        if self._features is None:
            self._features = (
                list(self.extraction.features) if self.extraction is not None else []
            )
        return self._features

    @property
    def feature_count(self) -> int:
        """Number of features, without materialising Feature objects."""
        if self._features is not None:
            return len(self._features)
        return self.extraction.feature_count if self.extraction is not None else 0

    def _extraction_arrays_current(self) -> bool:
        """True while the extraction's arrays still describe ``features``."""
        return self.extraction is not None and (
            self._features is None
            or len(self._features) == self.extraction.feature_count
        )

    def descriptor_matrix(self) -> np.ndarray:
        """Stack feature descriptors as an ``(N, 32)`` uint8 matrix."""
        if self._extraction_arrays_current():
            return self.extraction.descriptor_matrix()
        if not self.features:
            return np.zeros((0, 32), dtype=np.uint8)
        return np.stack([f.descriptor for f in self.features])

    def keypoint_pixels(self) -> np.ndarray:
        """Level-0 pixel coordinates of all features, ``(N, 2)``."""
        if self._extraction_arrays_current():
            return self.extraction.keypoint_array()
        if not self.features:
            return np.zeros((0, 2), dtype=np.float64)
        return np.array([[f.x0, f.y0] for f in self.features], dtype=np.float64)

    def feature_depth(self, feature_index: int) -> float:
        """Depth (metres) at the feature's level-0 pixel, 0 if invalid."""
        if not 0 <= feature_index < len(self.features):
            raise TrackingError(f"feature index {feature_index} out of range")
        feature = self.features[feature_index]
        x, y = int(round(feature.x0)), int(round(feature.y0))
        if not (0 <= y < self.depth.shape[0] and 0 <= x < self.depth.shape[1]):
            return 0.0
        return float(self.depth[y, x])

    def feature_depths(self) -> np.ndarray:
        """Depths for all features (``0`` marks invalid depth), vectorised."""
        pixels = self.keypoint_pixels()
        if pixels.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        xs = np.rint(pixels[:, 0]).astype(np.int64)
        ys = np.rint(pixels[:, 1]).astype(np.int64)
        height, width = self.depth.shape
        valid = (xs >= 0) & (xs < width) & (ys >= 0) & (ys < height)
        depths = np.zeros(pixels.shape[0], dtype=np.float64)
        depths[valid] = self.depth[ys[valid], xs[valid]]
        return depths

    # -- geometry helpers --------------------------------------------------
    def back_project_feature(self, feature_index: int) -> Optional[np.ndarray]:
        """World-frame 3-D point of a feature using its depth and frame pose.

        Returns ``None`` when the feature has no valid depth.  Requires the
        frame pose to be set.
        """
        if self.pose is None:
            raise TrackingError("frame pose must be estimated before back-projection")
        depth = self.feature_depth(feature_index)
        if depth <= 0:
            return None
        feature = self.features[feature_index]
        point_cam = self.camera.back_project(feature.x0, feature.y0, depth)
        return self.pose.inverse().transform(point_cam)
