"""Map points: 3-D landmarks with binary descriptors."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import MapError


@dataclass
class MapPoint:
    """A 3-D landmark in the global map.

    Attributes
    ----------
    point_id:
        Unique identifier assigned by the map.
    position:
        World-frame 3-D coordinates.
    descriptor:
        Representative 256-bit descriptor (32 bytes) of the landmark.
    created_frame:
        Index of the key frame that created the point.
    last_matched_frame:
        Index of the most recent frame that matched this point; map updating
        deletes points that have not been matched for a long period.
    times_matched:
        Number of frames that matched this point (a simple quality measure).
    """

    point_id: int
    position: np.ndarray
    descriptor: np.ndarray
    created_frame: int
    last_matched_frame: int = field(default=-1)
    times_matched: int = 0

    def __post_init__(self) -> None:
        position = np.asarray(self.position, dtype=np.float64).reshape(3)
        descriptor = np.asarray(self.descriptor, dtype=np.uint8)
        if descriptor.ndim != 1 or descriptor.size == 0:
            raise MapError("map point descriptor must be a non-empty byte vector")
        self.position = position
        self.descriptor = descriptor
        if self.last_matched_frame < 0:
            self.last_matched_frame = self.created_frame

    def record_match(self, frame_index: int, descriptor: np.ndarray | None = None) -> None:
        """Record that the point was matched in ``frame_index``.

        Optionally refresh the representative descriptor with the newest
        observation (keeps descriptors current under viewpoint change).
        """
        if frame_index < self.last_matched_frame:
            raise MapError("frames must be processed in increasing order")
        self.last_matched_frame = frame_index
        self.times_matched += 1
        if descriptor is not None:
            self.descriptor = np.asarray(descriptor, dtype=np.uint8)

    def frames_since_match(self, current_frame: int) -> int:
        """Number of frames since the point was last matched."""
        return max(0, current_frame - self.last_matched_frame)
