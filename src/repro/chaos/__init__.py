"""Chaos engineering for the serving stack: seeded, replayable fault plans.

:class:`FaultPlan` schedules worker kills, worker stalls, shared-pyramid
publish failures and slow frames against submission indices of a
:class:`~repro.cluster.ClusterServer`, replacing ad-hoc ``kill_worker``
poking with a deterministic storm the chaos tests (``tests/test_chaos.py``)
and the recovery benchmark (``benchmarks/bench_chaos_recovery.py``) can
replay exactly.  See ``docs/serving.md`` → Failure semantics.
"""

from .plan import FAULT_KINDS, FaultEvent, FaultPlan, FiredFault

__all__ = ["FaultPlan", "FaultEvent", "FiredFault", "FAULT_KINDS"]
