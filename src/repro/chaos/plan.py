"""Seeded fault-injection plans for the cluster serving stack.

A :class:`FaultPlan` is a deterministic schedule of faults keyed on the
cluster's submission counter: *at the moment job N is submitted*, fire
these faults.  Determinism is the whole point — the chaos tests and
``benchmarks/bench_chaos_recovery.py`` must be able to say "a worker is
killed every 8th frame, seeded at 7" and replay exactly that storm on
every run, instead of poking workers from an unsynchronised timer thread
whose interleaving never reproduces.

Four fault kinds cover the failure surfaces of
:class:`~repro.cluster.ClusterServer`:

* ``kill`` — SIGKILL one worker (→ crash handling: requeue/retry under
  supervision, structured failure without);
* ``stall`` — SIGSTOP one worker for ``duration_s`` (→ heartbeat stall
  detection; the supervisor kills and respawns it);
* ``publish_fail`` — force the next shared-pyramid publish to report
  failure (→ the zero-copy fast path falls back to the ring transport);
* ``slow_frame`` — sleep ``duration_s`` in the producer before the
  submission (→ load-pattern shaping for elasticity tests).

Faults fire *synchronously inside* ``submit`` (the server calls
:meth:`FaultPlan.on_submit` before any resource is acquired for the job),
so the fault's position in the submission stream is exact even on one
core.  What stays nondeterministic — how far each worker got before the
kill — is exactly what the tests must be robust to, and the invariants
they assert (bit-identical in-order results, zero leaked slots) hold
regardless.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError

#: Fault kinds a plan may schedule.
FAULT_KINDS = ("kill", "stall", "publish_fail", "slow_frame")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``at_submit`` is the submission index (the cluster's job counter) the
    fault fires at; ``worker_id`` is a *preference* — a dead or retired
    preference falls back to the first alive worker, so a storm schedule
    stays meaningful even after earlier faults changed the pool.
    """

    at_submit: int
    kind: str
    worker_id: Optional[int] = None
    duration_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.at_submit < 0:
            raise ReproError("at_submit must be non-negative")
        if self.duration_s < 0.0:
            raise ReproError("duration_s must be non-negative")


@dataclass
class FiredFault:
    """Record of one fault that actually fired (plan report / bench JSON)."""

    at_submit: int
    kind: str
    worker_id: Optional[int]
    duration_s: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "at_submit": self.at_submit,
            "kind": self.kind,
            "worker_id": self.worker_id,
            "duration_s": self.duration_s,
        }


class FaultPlan:
    """A deterministic fault schedule, driven by the cluster's submit path.

    Pass a plan to :class:`~repro.cluster.ClusterServer` via its
    ``fault_plan`` parameter; the server calls :meth:`on_submit` with every
    job id and consumes :meth:`take_publish_failure` before each
    shared-pyramid publish.  Instances are single-use: each event fires at
    most once, and :attr:`fired` accumulates what actually happened for
    the post-run report.
    """

    def __init__(self, events: Sequence[FaultEvent], seed: int = 0) -> None:
        self.seed = seed
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda event: event.at_submit)
        )
        self._by_submit: Dict[int, List[FaultEvent]] = {}
        for event in self.events:
            self._by_submit.setdefault(event.at_submit, []).append(event)
        self.fired: List[FiredFault] = []
        self._armed_publish_failures = 0
        self._lock = threading.Lock()

    @classmethod
    def storm(
        cls,
        frames: int,
        every: int = 8,
        kinds: Sequence[str] = ("kill",),
        num_workers: int = 2,
        stall_s: float = 0.2,
        seed: int = 0,
    ) -> "FaultPlan":
        """A seeded fault-every-N-frames storm over a ``frames``-long run.

        Every ``every``-th submission draws a fault kind from ``kinds`` and
        a preferred worker from ``range(num_workers)`` using a
        :class:`random.Random` seeded with ``seed``, so the same arguments
        always build the same storm.
        """
        if every <= 0:
            raise ReproError("every must be positive")
        if not kinds:
            raise ReproError("storm needs at least one fault kind")
        rng = random.Random(seed)
        events = []
        for at_submit in range(every, frames, every):
            events.append(
                FaultEvent(
                    at_submit=at_submit,
                    kind=rng.choice(list(kinds)),
                    worker_id=rng.randrange(num_workers),
                    duration_s=stall_s,
                )
            )
        return cls(events, seed=seed)

    # -- server-facing hooks ------------------------------------------------
    def on_submit(self, server, job_id: int) -> None:
        """Fire every fault scheduled at submission ``job_id`` (at most once)."""
        with self._lock:
            events = self._by_submit.pop(job_id, None)
        if not events:
            return
        for event in events:
            self._fire(server, event)

    def take_publish_failure(self) -> bool:
        """Consume one armed publish failure (the server's publish gate)."""
        with self._lock:
            if self._armed_publish_failures > 0:
                self._armed_publish_failures -= 1
                return True
            return False

    def _fire(self, server, event: FaultEvent) -> None:
        # Stamp the plan's seed into the server's event journal before the
        # fault's consequences land, so every reaction row (worker_dead,
        # restart, requeue, ...) carries the storm's provenance.
        journal = getattr(server, "journal", None)
        if journal is not None:
            journal.fault_seed = self.seed
        target: Optional[int] = event.worker_id
        if event.kind == "kill":
            target = server.chaos_kill(event.worker_id)
        elif event.kind == "stall":
            target = server.chaos_stall(event.worker_id, duration_s=event.duration_s)
        elif event.kind == "publish_fail":
            with self._lock:
                self._armed_publish_failures += 1
        elif event.kind == "slow_frame":
            time.sleep(event.duration_s)
        if journal is not None:
            journal.log(
                f"chaos_{event.kind}",
                worker_id=target,
                at_submit=event.at_submit,
                duration_s=event.duration_s,
            )
        with self._lock:
            self.fired.append(
                FiredFault(event.at_submit, event.kind, target, event.duration_s)
            )

    # -- reporting ----------------------------------------------------------
    def report(self) -> Dict[str, object]:
        """JSON-friendly summary of the schedule and what actually fired."""
        with self._lock:
            fired = [entry.as_dict() for entry in self.fired]
        kinds: Dict[str, int] = {}
        for entry in fired:
            kinds[entry["kind"]] = kinds.get(entry["kind"], 0) + 1
        return {
            "seed": self.seed,
            "scheduled": len(self.events),
            "fired": len(fired),
            "fired_by_kind": kinds,
            "events": fired,
        }
