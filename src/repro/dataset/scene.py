"""Synthetic 3-D scenes rendered to RGB-D frames.

The TUM RGB-D dataset cannot be shipped offline, so the accuracy experiments
run on synthetic scenes: textured planes rendered by exact ray-plane
intersection.  Rendering produces a grayscale image plus a dense metric depth
map from any camera pose, giving the SLAM pipeline photometrically consistent
frames with perfect ground truth.

Camera convention: x right, y down, z forward (the usual pinhole convention),
and poses are world-to-camera (:class:`repro.geometry.Pose`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import DatasetError
from ..geometry import PinholeCamera, Pose
from ..image import GrayImage
from ..image.synthetic import random_blocks


@dataclass(frozen=True)
class TexturedPlane:
    """A finite textured rectangle in world space.

    The rectangle is spanned by two orthonormal axes ``axis_u`` and ``axis_v``
    starting from ``origin``; its size is ``extent_u`` x ``extent_v`` metres.
    The texture image is mapped across the full extent with nearest-neighbour
    sampling (matching the blocky textures that give FAST strong corners).
    """

    origin: np.ndarray
    axis_u: np.ndarray
    axis_v: np.ndarray
    extent_u: float
    extent_v: float
    texture: GrayImage

    def __post_init__(self) -> None:
        origin = np.asarray(self.origin, dtype=np.float64).reshape(3)
        axis_u = np.asarray(self.axis_u, dtype=np.float64).reshape(3)
        axis_v = np.asarray(self.axis_v, dtype=np.float64).reshape(3)
        for name, axis in (("axis_u", axis_u), ("axis_v", axis_v)):
            norm = np.linalg.norm(axis)
            if norm < 1e-12:
                raise DatasetError(f"{name} must be non-zero")
        axis_u = axis_u / np.linalg.norm(axis_u)
        axis_v = axis_v / np.linalg.norm(axis_v)
        if abs(float(axis_u @ axis_v)) > 1e-9:
            raise DatasetError("plane axes must be orthogonal")
        if self.extent_u <= 0 or self.extent_v <= 0:
            raise DatasetError("plane extents must be positive")
        object.__setattr__(self, "origin", origin)
        object.__setattr__(self, "axis_u", axis_u)
        object.__setattr__(self, "axis_v", axis_v)

    @property
    def normal(self) -> np.ndarray:
        return np.cross(self.axis_u, self.axis_v)

    def sample_texture(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Nearest-neighbour texture lookup at plane coordinates ``(u, v)`` metres."""
        tex = self.texture.pixels
        cols = np.clip(
            (u / self.extent_u * tex.shape[1]).astype(np.int64), 0, tex.shape[1] - 1
        )
        rows = np.clip(
            (v / self.extent_v * tex.shape[0]).astype(np.int64), 0, tex.shape[0] - 1
        )
        return tex[rows, cols]


@dataclass(frozen=True)
class RenderedView:
    """Output of rendering a scene from one pose."""

    image: GrayImage
    depth: np.ndarray  # float64 metres, 0 where no surface is hit

    def valid_mask(self) -> np.ndarray:
        return self.depth > 0


class PlanarScene:
    """A scene made of textured planes, rendered by exact ray-plane intersection."""

    def __init__(self, planes: Sequence[TexturedPlane], background: int = 0) -> None:
        if not planes:
            raise DatasetError("scene must contain at least one plane")
        self.planes: Tuple[TexturedPlane, ...] = tuple(planes)
        self.background = int(background)

    def render(self, camera: PinholeCamera, pose: Pose) -> RenderedView:
        """Render the scene from the given world-to-camera ``pose``.

        For every pixel the camera-frame ray ``(x, y, 1)`` is transformed to a
        world ray; the nearest positive-depth intersection with any plane that
        falls inside its extent defines the pixel intensity (texture sample)
        and depth (the ray parameter equals the camera-frame z because the ray
        direction has unit z in the camera frame).
        """
        h, w = camera.height, camera.width
        us, vs = np.meshgrid(np.arange(w), np.arange(h))
        pixels = np.stack([us.ravel(), vs.ravel()], axis=1).astype(np.float64)
        rays_cam = camera.pixel_rays(pixels)  # (N, 3), z == 1
        cam_to_world = pose.inverse()
        center = cam_to_world.translation
        rays_world = rays_cam @ cam_to_world.rotation.T

        best_depth = np.full(rays_world.shape[0], np.inf)
        intensities = np.full(rays_world.shape[0], self.background, dtype=np.uint8)
        for plane in self.planes:
            normal = plane.normal
            denom = rays_world @ normal
            numer = float((plane.origin - center) @ normal)
            with np.errstate(divide="ignore", invalid="ignore"):
                t = np.where(np.abs(denom) > 1e-12, numer / denom, np.inf)
            hit = (t > 1e-6) & np.isfinite(t)
            if not hit.any():
                continue
            points = center + rays_world[hit] * t[hit, np.newaxis]
            rel = points - plane.origin
            u_coord = rel @ plane.axis_u
            v_coord = rel @ plane.axis_v
            inside = (
                (u_coord >= 0)
                & (u_coord <= plane.extent_u)
                & (v_coord >= 0)
                & (v_coord <= plane.extent_v)
            )
            hit_indices = np.nonzero(hit)[0][inside]
            if hit_indices.size == 0:
                continue
            depths = t[hit][inside]
            closer = depths < best_depth[hit_indices]
            hit_indices = hit_indices[closer]
            if hit_indices.size == 0:
                continue
            best_depth[hit_indices] = depths[closer]
            intensities[hit_indices] = plane.sample_texture(
                u_coord[inside][closer], v_coord[inside][closer]
            )
        depth = np.where(np.isfinite(best_depth), best_depth, 0.0).reshape(h, w)
        image = GrayImage(intensities.reshape(h, w))
        return RenderedView(image=image, depth=depth)


def wall_scene(
    distance: float = 2.5,
    width: float = 8.0,
    height: float = 6.0,
    block_size: int = 12,
    texture_pixels: int = 768,
    seed: int = 11,
) -> PlanarScene:
    """A single textured wall facing the camera at ``z = distance``.

    The default extents are generous so translation-only (xyz-style) and
    small-rotation (rpy-style) trajectories keep texture in view.
    """
    texture = random_blocks(texture_pixels, texture_pixels, block=block_size, seed=seed)
    plane = TexturedPlane(
        origin=np.array([-width / 2.0, -height / 2.0, distance]),
        axis_u=np.array([1.0, 0.0, 0.0]),
        axis_v=np.array([0.0, 1.0, 0.0]),
        extent_u=width,
        extent_v=height,
        texture=texture,
    )
    return PlanarScene([plane])


def room_scene(
    half_size: float = 3.0,
    height: float = 2.4,
    block_size: int = 12,
    texture_pixels: int = 640,
    seed: int = 23,
) -> PlanarScene:
    """A box room: four textured walls around the origin plus floor and ceiling.

    Used by the ``room`` and ``desk`` style sequences where the camera
    rotates enough that a single wall would leave the field of view.
    """
    planes: List[TexturedPlane] = []
    s = half_size
    top = -height / 2.0
    wall_specs = [
        # (origin, axis_u, axis_v, extent_u, extent_v)
        (np.array([-s, top, s]), np.array([1.0, 0, 0]), np.array([0, 1.0, 0]), 2 * s, height),
        (np.array([s, top, -s]), np.array([-1.0, 0, 0]), np.array([0, 1.0, 0]), 2 * s, height),
        (np.array([-s, top, -s]), np.array([0, 0, 1.0]), np.array([0, 1.0, 0]), 2 * s, height),
        (np.array([s, top, s]), np.array([0, 0, -1.0]), np.array([0, 1.0, 0]), 2 * s, height),
    ]
    for index, (origin, axis_u, axis_v, extent_u, extent_v) in enumerate(wall_specs):
        texture = random_blocks(
            texture_pixels, texture_pixels, block=block_size, seed=seed + index
        )
        planes.append(
            TexturedPlane(origin, axis_u, axis_v, extent_u, extent_v, texture)
        )
    # floor (y = +height/2) and ceiling (y = -height/2)
    floor_texture = random_blocks(texture_pixels, texture_pixels, block=block_size, seed=seed + 10)
    ceiling_texture = random_blocks(texture_pixels, texture_pixels, block=block_size, seed=seed + 11)
    planes.append(
        TexturedPlane(
            np.array([-s, height / 2.0, -s]),
            np.array([1.0, 0, 0]),
            np.array([0, 0, 1.0]),
            2 * s,
            2 * s,
            floor_texture,
        )
    )
    planes.append(
        TexturedPlane(
            np.array([-s, -height / 2.0, -s]),
            np.array([1.0, 0, 0]),
            np.array([0, 0, 1.0]),
            2 * s,
            2 * s,
            ceiling_texture,
        )
    )
    return PlanarScene(planes)
