"""Synthetic RGB-D sequences in the style of the TUM benchmark.

A :class:`RgbdSequence` bundles rendered grayscale images, dense depth maps,
timestamps and the ground-truth trajectory for one synthetic "TUM-like"
sequence.  :func:`make_sequence` builds the five sequences evaluated in the
paper (fr1/xyz, fr1/desk, fr1/room, fr2/xyz, fr2/rpy) from the matching scene
and trajectory generators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..errors import DatasetError
from ..geometry import PinholeCamera, Pose
from ..image import GrayImage
from .scene import PlanarScene, RenderedView, room_scene, wall_scene
from .trajectories import SEQUENCE_BUILDERS, TrajectoryProfile, build_trajectory


@dataclass(frozen=True)
class RgbdFrame:
    """One synchronised RGB-D frame with its ground-truth pose."""

    index: int
    timestamp: float
    image: GrayImage
    depth: np.ndarray
    ground_truth_pose: Pose  # world-to-camera

    def depth_at(self, x: float, y: float) -> float:
        """Nearest-neighbour depth lookup at pixel ``(x, y)`` (0 if invalid)."""
        xi, yi = int(round(x)), int(round(y))
        if not (0 <= yi < self.depth.shape[0] and 0 <= xi < self.depth.shape[1]):
            return 0.0
        return float(self.depth[yi, xi])


@dataclass
class RgbdSequence:
    """A full synthetic sequence: frames, camera and ground truth."""

    name: str
    camera: PinholeCamera
    frames: List[RgbdFrame] = field(default_factory=list)
    frame_rate_hz: float = 30.0

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self) -> Iterator[RgbdFrame]:
        return iter(self.frames)

    def __getitem__(self, index: int) -> RgbdFrame:
        return self.frames[index]

    def ground_truth_poses(self) -> List[Pose]:
        return [frame.ground_truth_pose for frame in self.frames]

    def timestamps(self) -> np.ndarray:
        return np.array([frame.timestamp for frame in self.frames])


@dataclass(frozen=True)
class SequenceSpec:
    """Parameters controlling synthetic sequence generation."""

    name: str
    num_frames: int = 40
    image_width: int = 640
    image_height: int = 480
    frame_rate_hz: float = 30.0
    depth_noise_std_m: float = 0.0
    image_noise_std: float = 0.0
    seed: int = 0


def _scene_for(name: str) -> PlanarScene:
    """Pick the scene type that keeps texture in view for the given motion."""
    if name in ("fr1/room", "fr1/desk"):
        return room_scene()
    return wall_scene()


def _scaled_camera(spec: SequenceSpec, base: PinholeCamera) -> PinholeCamera:
    """Scale the TUM intrinsics if a reduced resolution was requested."""
    if spec.image_width == base.width and spec.image_height == base.height:
        return base
    factor = spec.image_width / base.width
    expected_height = int(round(base.height * factor))
    if expected_height != spec.image_height:
        raise DatasetError(
            "image_width/image_height must preserve the 4:3 TUM aspect ratio"
        )
    return base.scaled(factor)


def make_sequence(
    spec: SequenceSpec,
    scene: Optional[PlanarScene] = None,
    camera: Optional[PinholeCamera] = None,
) -> RgbdSequence:
    """Render the named synthetic sequence.

    Parameters
    ----------
    spec:
        Sequence name (one of the five TUM-style names), length, resolution
        and optional sensor-noise levels.
    scene, camera:
        Override the default scene / intrinsics (defaults follow the TUM
        calibration of the corresponding freiburg set).
    """
    if spec.name not in SEQUENCE_BUILDERS:
        raise DatasetError(
            f"unknown sequence '{spec.name}'; available: {sorted(SEQUENCE_BUILDERS)}"
        )
    if spec.num_frames < 2:
        raise DatasetError("a sequence needs at least 2 frames")
    base_camera = camera or (
        PinholeCamera.tum_freiburg2() if spec.name.startswith("fr2") else PinholeCamera.tum_freiburg1()
    )
    cam = _scaled_camera(spec, base_camera)
    scene = scene or _scene_for(spec.name)
    profile: TrajectoryProfile = build_trajectory(
        spec.name, spec.num_frames, spec.frame_rate_hz
    )
    rng = np.random.default_rng(spec.seed)
    frames: List[RgbdFrame] = []
    for index, pose in enumerate(profile.poses):
        view: RenderedView = scene.render(cam, pose)
        image = view.image
        depth = view.depth
        if spec.image_noise_std > 0:
            noisy = image.as_float() + rng.normal(0.0, spec.image_noise_std, image.shape)
            image = GrayImage(np.clip(np.rint(noisy), 0, 255).astype(np.uint8))
        if spec.depth_noise_std_m > 0:
            noise = rng.normal(0.0, spec.depth_noise_std_m, depth.shape)
            depth = np.where(depth > 0, np.maximum(depth + noise, 1e-3), 0.0)
        frames.append(
            RgbdFrame(
                index=index,
                timestamp=index / spec.frame_rate_hz,
                image=image,
                depth=depth,
                ground_truth_pose=pose,
            )
        )
    return RgbdSequence(
        name=spec.name, camera=cam, frames=frames, frame_rate_hz=spec.frame_rate_hz
    )


def paper_sequences(
    num_frames: int = 40,
    image_width: int = 640,
    image_height: int = 480,
) -> Dict[str, SequenceSpec]:
    """Specs for the five sequences evaluated in the paper (Figure 8)."""
    names: Sequence[str] = ("fr1/xyz", "fr2/xyz", "fr1/desk", "fr1/room", "fr2/rpy")
    return {
        name: SequenceSpec(
            name=name,
            num_frames=num_frames,
            image_width=image_width,
            image_height=image_height,
        )
        for name in names
    }
