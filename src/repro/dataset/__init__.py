"""Dataset substrate: synthetic TUM-style RGB-D sequences and trajectory I/O."""

from .scene import PlanarScene, RenderedView, TexturedPlane, room_scene, wall_scene
from .trajectories import (
    SEQUENCE_BUILDERS,
    TrajectoryProfile,
    build_trajectory,
    desk_trajectory,
    room_trajectory,
    rpy_trajectory,
    static_trajectory,
    xyz_trajectory,
)
from .sequence import (
    RgbdFrame,
    RgbdSequence,
    SequenceSpec,
    make_sequence,
    paper_sequences,
)
from .tum import (
    TrajectoryEntry,
    format_trajectory,
    parse_trajectory,
    read_trajectory,
    write_trajectory,
)

__all__ = [
    "PlanarScene",
    "TexturedPlane",
    "RenderedView",
    "wall_scene",
    "room_scene",
    "SEQUENCE_BUILDERS",
    "TrajectoryProfile",
    "build_trajectory",
    "xyz_trajectory",
    "rpy_trajectory",
    "desk_trajectory",
    "room_trajectory",
    "static_trajectory",
    "RgbdFrame",
    "RgbdSequence",
    "SequenceSpec",
    "make_sequence",
    "paper_sequences",
    "TrajectoryEntry",
    "format_trajectory",
    "parse_trajectory",
    "read_trajectory",
    "write_trajectory",
]
