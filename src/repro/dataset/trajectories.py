"""Ground-truth trajectory generators.

The paper evaluates on five TUM sequences whose motions have distinct
characters: ``fr1/xyz`` and ``fr2/xyz`` are translation-dominated, ``fr2/rpy``
is rotation-dominated, ``fr1/desk`` sweeps over a desk with mixed motion and
``fr1/room`` loops through an office.  These generators produce ground-truth
camera trajectories with the same characters, expressed as world-to-camera
:class:`~repro.geometry.Pose` sequences at a fixed frame rate.

All generators keep per-frame motion small (a few millimetres / milliradians)
so frame-to-frame tracking is well-conditioned, just as the 30 Hz TUM capture
does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from ..errors import DatasetError
from ..geometry import Pose, rotation_from_euler


@dataclass(frozen=True)
class TrajectoryProfile:
    """A named ground-truth trajectory."""

    name: str
    poses: tuple
    frame_rate_hz: float = 30.0

    def __len__(self) -> int:
        return len(self.poses)

    def timestamps(self) -> np.ndarray:
        return np.arange(len(self.poses)) / self.frame_rate_hz


def _camera_pose(position: np.ndarray, roll: float, pitch: float, yaw: float) -> Pose:
    """Build a world-to-camera pose from a camera position and orientation.

    ``position`` is the camera centre in world coordinates; the rotation is
    the camera-to-world orientation built from roll/pitch/yaw.  The returned
    pose is the world-to-camera transform used throughout the library.
    """
    rotation_cw = rotation_from_euler(roll, pitch, yaw)  # camera-to-world
    rotation_wc = rotation_cw.T
    translation = -rotation_wc @ np.asarray(position, dtype=np.float64)
    return Pose(rotation_wc, translation)


def xyz_trajectory(
    num_frames: int = 60,
    amplitude_m: float = 0.25,
    periods: float = 1.5,
) -> List[Pose]:
    """Translation-only sinusoidal motion along x, y and z (fr1/xyz style)."""
    if num_frames < 2:
        raise DatasetError("trajectory needs at least 2 frames")
    poses = []
    for k in range(num_frames):
        phase = 2.0 * math.pi * periods * k / num_frames
        position = np.array(
            [
                amplitude_m * math.sin(phase),
                0.5 * amplitude_m * math.sin(2.0 * phase),
                0.3 * amplitude_m * (1.0 - math.cos(phase)),
            ]
        )
        poses.append(_camera_pose(position, 0.0, 0.0, 0.0))
    return poses


def rpy_trajectory(
    num_frames: int = 60,
    amplitude_rad: float = 0.12,
    periods: float = 1.5,
) -> List[Pose]:
    """Rotation-only oscillation about roll, pitch and yaw (fr2/rpy style)."""
    if num_frames < 2:
        raise DatasetError("trajectory needs at least 2 frames")
    poses = []
    for k in range(num_frames):
        phase = 2.0 * math.pi * periods * k / num_frames
        roll = amplitude_rad * math.sin(phase)
        pitch = 0.6 * amplitude_rad * math.sin(2.0 * phase)
        yaw = 0.8 * amplitude_rad * (1.0 - math.cos(phase))
        poses.append(_camera_pose(np.zeros(3), roll, pitch, yaw))
    return poses


def desk_trajectory(
    num_frames: int = 80,
    sweep_m: float = 0.5,
    yaw_sweep_rad: float = 0.35,
) -> List[Pose]:
    """Mixed translation + yaw sweep over a desk-like workspace (fr1/desk style)."""
    if num_frames < 2:
        raise DatasetError("trajectory needs at least 2 frames")
    poses = []
    for k in range(num_frames):
        s = k / (num_frames - 1)
        # ease-in-out lateral sweep with a gentle bob in height and depth
        lateral = sweep_m * (0.5 - 0.5 * math.cos(math.pi * s)) - sweep_m / 2.0
        position = np.array(
            [
                lateral,
                0.05 * math.sin(2.0 * math.pi * s),
                0.15 * math.sin(math.pi * s),
            ]
        )
        yaw = yaw_sweep_rad * (s - 0.5)
        pitch = 0.08 * math.sin(2.0 * math.pi * s)
        poses.append(_camera_pose(position, 0.0, pitch, yaw))
    return poses


def room_trajectory(
    num_frames: int = 100,
    radius_m: float = 0.8,
    yaw_total_rad: float = math.pi / 2.0,
) -> List[Pose]:
    """Arc through a room with continuous yaw (fr1/room style loop segment)."""
    if num_frames < 2:
        raise DatasetError("trajectory needs at least 2 frames")
    poses = []
    for k in range(num_frames):
        s = k / (num_frames - 1)
        angle = yaw_total_rad * s
        position = np.array(
            [
                radius_m * math.sin(angle),
                0.04 * math.sin(4.0 * math.pi * s),
                radius_m * (1.0 - math.cos(angle)),
            ]
        )
        poses.append(_camera_pose(position, 0.0, 0.0, angle))
    return poses


def static_trajectory(num_frames: int = 10) -> List[Pose]:
    """A perfectly static camera (useful for tests and noise-floor studies)."""
    if num_frames < 1:
        raise DatasetError("trajectory needs at least 1 frame")
    return [Pose.identity() for _ in range(num_frames)]


#: Mapping from TUM-style sequence names to (trajectory builder, recommended scene).
SEQUENCE_BUILDERS: Dict[str, Callable[[int], List[Pose]]] = {
    "fr1/xyz": lambda n: xyz_trajectory(num_frames=n),
    "fr2/xyz": lambda n: xyz_trajectory(num_frames=n, amplitude_m=0.18, periods=1.0),
    "fr1/desk": lambda n: desk_trajectory(num_frames=n),
    "fr1/room": lambda n: room_trajectory(num_frames=n),
    "fr2/rpy": lambda n: rpy_trajectory(num_frames=n),
}


def build_trajectory(name: str, num_frames: int, frame_rate_hz: float = 30.0) -> TrajectoryProfile:
    """Build the named trajectory profile (one of :data:`SEQUENCE_BUILDERS`)."""
    if name not in SEQUENCE_BUILDERS:
        raise DatasetError(
            f"unknown sequence '{name}'; available: {sorted(SEQUENCE_BUILDERS)}"
        )
    poses = SEQUENCE_BUILDERS[name](num_frames)
    return TrajectoryProfile(name=name, poses=tuple(poses), frame_rate_hz=frame_rate_hz)
