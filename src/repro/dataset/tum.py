"""TUM RGB-D trajectory file format.

Ground-truth and estimated trajectories in the TUM benchmark are text files
with one line per pose::

    timestamp tx ty tz qx qy qz qw

where ``(tx, ty, tz)`` is the camera position in the world frame and the
quaternion is the camera-to-world orientation.  This module reads and writes
that format and converts to/from the library's world-to-camera
:class:`~repro.geometry.Pose` representation, so trajectories produced here
can be checked with the standard TUM evaluation tools.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import DatasetError
from ..geometry import Pose, rotation_from_quaternion, quaternion_from_rotation


@dataclass(frozen=True)
class TrajectoryEntry:
    """One timestamped pose in TUM convention (camera-to-world)."""

    timestamp: float
    position: np.ndarray
    quaternion: np.ndarray  # (qx, qy, qz, qw)

    def to_world_to_camera(self) -> Pose:
        """Convert to the library's world-to-camera pose."""
        rotation_cw = rotation_from_quaternion(self.quaternion)
        rotation_wc = rotation_cw.T
        translation = -rotation_wc @ np.asarray(self.position, dtype=np.float64)
        return Pose(rotation_wc, translation)

    @classmethod
    def from_world_to_camera(cls, timestamp: float, pose: Pose) -> "TrajectoryEntry":
        rotation_cw = pose.rotation.T
        position = pose.camera_center()
        return cls(
            timestamp=timestamp,
            position=position,
            quaternion=quaternion_from_rotation(rotation_cw),
        )


def format_trajectory(
    timestamps: Sequence[float], poses: Sequence[Pose]
) -> str:
    """Serialise world-to-camera poses as TUM trajectory text."""
    if len(timestamps) != len(poses):
        raise DatasetError("timestamps and poses must have the same length")
    lines = ["# timestamp tx ty tz qx qy qz qw"]
    for timestamp, pose in zip(timestamps, poses):
        entry = TrajectoryEntry.from_world_to_camera(timestamp, pose)
        tx, ty, tz = entry.position
        qx, qy, qz, qw = entry.quaternion
        lines.append(
            f"{timestamp:.6f} {tx:.6f} {ty:.6f} {tz:.6f} "
            f"{qx:.6f} {qy:.6f} {qz:.6f} {qw:.6f}"
        )
    return "\n".join(lines) + "\n"


def parse_trajectory(text: str) -> List[TrajectoryEntry]:
    """Parse TUM trajectory text into timestamped entries."""
    entries: List[TrajectoryEntry] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) != 8:
            raise DatasetError(
                f"line {line_number}: expected 8 fields, got {len(fields)}"
            )
        try:
            values = [float(field) for field in fields]
        except ValueError as exc:
            raise DatasetError(f"line {line_number}: non-numeric field") from exc
        entries.append(
            TrajectoryEntry(
                timestamp=values[0],
                position=np.array(values[1:4]),
                quaternion=np.array(values[4:8]),
            )
        )
    return entries


def write_trajectory(
    path: str | Path, timestamps: Sequence[float], poses: Sequence[Pose]
) -> None:
    """Write world-to-camera poses to ``path`` in TUM format."""
    Path(path).write_text(format_trajectory(timestamps, poses))


def read_trajectory(path: str | Path) -> Tuple[np.ndarray, List[Pose]]:
    """Read a TUM trajectory file; return (timestamps, world-to-camera poses)."""
    entries = parse_trajectory(Path(path).read_text())
    timestamps = np.array([entry.timestamp for entry in entries])
    poses = [entry.to_world_to_camera() for entry in entries]
    return timestamps, poses
