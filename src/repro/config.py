"""Global configuration dataclasses shared across the eSLAM reproduction.

The defaults mirror the configuration evaluated in the paper:

* 640 x 480 input images (TUM RGB-D resolution),
* a 4-layer image pyramid built by nearest-neighbour downsampling,
* FAST-9/16 keypoints scored with Harris corner response,
* 256-bit descriptors built from the 32-fold rotationally symmetric
  RS-BRIEF pattern (8 + 8 seed locations),
* a 1024-entry max-heap that keeps the best-Harris features per frame,
* a 100 MHz accelerator clock and a 767 MHz ARM Cortex-A9 host clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple


@dataclass(frozen=True)
class PyramidConfig:
    """Configuration of the image pyramid used for scale invariance.

    ``provider`` selects the pyramid construction strategy
    (:mod:`repro.pyramid`): ``"eager"`` (default) materialises every level
    up front like the original software path, ``"streaming"`` builds each
    level just in time in row bands as the detection engine consumes the
    previous one (mirroring the hardware Image Resizing module), and
    ``"shared"`` adds a ``multiprocessing.shared_memory`` cache so several
    consumers of the same frame reuse one build.  All providers produce
    bit-identical levels.
    """

    num_levels: int = 4
    scale_factor: float = 1.2
    provider: str = "eager"

    def __post_init__(self) -> None:
        if self.num_levels < 1:
            raise ValueError("pyramid must have at least one level")
        if self.scale_factor < 1.0:
            raise ValueError("scale_factor must be >= 1.0 (downsampling pyramid)")
        if not isinstance(self.provider, str) or not self.provider:
            raise ValueError("provider must be a non-empty pyramid provider name")

    def level_scale(self, level: int) -> float:
        """Return the downscale factor applied at ``level`` (level 0 is 1.0)."""
        if level < 0 or level >= self.num_levels:
            raise ValueError(f"level {level} outside [0, {self.num_levels})")
        return self.scale_factor**level


@dataclass(frozen=True)
class FastConfig:
    """Configuration of the FAST segment-test detector."""

    threshold: int = 20
    arc_length: int = 9
    border: int = 16

    def __post_init__(self) -> None:
        if not 1 <= self.arc_length <= 16:
            raise ValueError("arc_length must be in [1, 16]")
        if self.threshold < 0:
            raise ValueError("threshold must be non-negative")


@dataclass(frozen=True)
class DescriptorConfig:
    """Configuration of the BRIEF / RS-BRIEF descriptor."""

    num_bits: int = 256
    patch_radius: int = 15
    seed_pairs: int = 8
    symmetry: int = 32
    seed: int = 2019

    def __post_init__(self) -> None:
        if self.seed_pairs * self.symmetry != self.num_bits:
            raise ValueError(
                "num_bits must equal seed_pairs * symmetry "
                f"({self.seed_pairs} * {self.symmetry} != {self.num_bits})"
            )

    @property
    def num_bytes(self) -> int:
        return self.num_bits // 8


@dataclass(frozen=True)
class ExtractorConfig:
    """Configuration of the full ORB extractor (software and hardware model).

    ``backend`` selects the keypoint compute engine used for the orientation
    and description hot path: ``"vectorized"`` (default) batches whole pyramid
    levels through numpy, ``"reference"`` keeps the bit-exact per-keypoint
    scalar path, ``"hwexact"`` runs the FPGA model's fixed-point arithmetic
    (quantized orientation ratio LUT, requires ``use_rs_brief``).  See
    :mod:`repro.backends`.

    ``frontend`` selects the detection front-end engine (FAST + Harris + NMS
    + smoothing): ``"vectorized"`` (default) runs the fused arc-LUT /
    sparse-Harris pass, ``"reference"`` keeps the dense per-stage ground
    truth, ``"hwexact"`` runs the quantized integer Harris and 8-bit
    fixed-point smoother of the hardware model.  Select the ``hwexact`` pair
    together to reproduce :mod:`repro.hw` extraction bit for bit (see
    ``docs/hwexact.md``).

    ``pyramid.provider`` selects how the multi-scale pyramid feeding those
    engines is built (``"eager"`` / ``"streaming"`` / ``"shared"``, see
    :mod:`repro.pyramid` and ``docs/pyramid.md``).
    """

    image_width: int = 640
    image_height: int = 480
    pyramid: PyramidConfig = field(default_factory=PyramidConfig)
    fast: FastConfig = field(default_factory=FastConfig)
    descriptor: DescriptorConfig = field(default_factory=DescriptorConfig)
    max_features: int = 1024
    use_rs_brief: bool = True
    rescheduled_workflow: bool = True
    backend: str = "vectorized"
    frontend: str = "vectorized"

    def __post_init__(self) -> None:
        if self.max_features <= 0:
            raise ValueError("max_features must be positive")
        if self.image_width <= 0 or self.image_height <= 0:
            raise ValueError("image dimensions must be positive")
        if not isinstance(self.backend, str) or not self.backend:
            raise ValueError("backend must be a non-empty backend name")
        if not isinstance(self.frontend, str) or not self.frontend:
            raise ValueError("frontend must be a non-empty detection engine name")

    @property
    def image_shape(self) -> Tuple[int, int]:
        return (self.image_height, self.image_width)

    def with_descriptor_mode(self, use_rs_brief: bool) -> "ExtractorConfig":
        """Return a copy of this configuration with the descriptor mode changed."""
        return replace(self, use_rs_brief=use_rs_brief)

    def with_backend(self, backend: str) -> "ExtractorConfig":
        """Return a copy of this configuration with a different compute backend."""
        return replace(self, backend=backend)

    def with_frontend(self, frontend: str) -> "ExtractorConfig":
        """Return a copy of this configuration with a different detection engine."""
        return replace(self, frontend=frontend)

    def with_pyramid_provider(self, provider: str) -> "ExtractorConfig":
        """Return a copy of this configuration with a different pyramid provider."""
        return replace(self, pyramid=replace(self.pyramid, provider=provider))


@dataclass(frozen=True)
class MatcherConfig:
    """Configuration of descriptor matching."""

    max_hamming_distance: int = 64
    ratio_threshold: float = 0.85
    cross_check: bool = False

    def __post_init__(self) -> None:
        if self.max_hamming_distance < 0:
            raise ValueError("max_hamming_distance must be non-negative")
        if not 0.0 < self.ratio_threshold <= 1.0:
            raise ValueError("ratio_threshold must lie in (0, 1]")


@dataclass(frozen=True)
class TrackerConfig:
    """Configuration of the SLAM tracking front-end."""

    min_matches: int = 12
    ransac_iterations: int = 128
    ransac_threshold_px: float = 3.0
    pose_iterations: int = 15
    keyframe_translation_m: float = 0.08
    keyframe_rotation_rad: float = 0.12
    map_point_ttl_frames: int = 30
    max_map_points: int = 20000


@dataclass(frozen=True)
class SlamConfig:
    """Top-level configuration of the SLAM system."""

    extractor: ExtractorConfig = field(default_factory=ExtractorConfig)
    matcher: MatcherConfig = field(default_factory=MatcherConfig)
    tracker: TrackerConfig = field(default_factory=TrackerConfig)


@dataclass(frozen=True)
class AcceleratorConfig:
    """Configuration of the FPGA accelerator cycle model."""

    clock_hz: float = 100e6
    axi_data_bytes: int = 8
    axi_burst_length: int = 16
    axi_latency_cycles: int = 20
    cache_line_columns: int = 8
    cache_lines: int = 3
    heap_capacity: int = 1024
    matcher_parallelism: int = 4

    @property
    def clock_period_s(self) -> float:
        return 1.0 / self.clock_hz


DEFAULT_SLAM_CONFIG = SlamConfig()
DEFAULT_ACCELERATOR_CONFIG = AcceleratorConfig()
