"""Multiprocessing start-method selection, shared by every process layer.

One definition for :class:`~repro.cluster.server.ClusterServer` and
:meth:`repro.analysis.experiments.BatchRunner.run_all_multiprocess`, so the
two multiprocess entry points cannot drift: prefer ``fork`` where the
platform offers it (workers inherit the imported interpreter — engine
spin-up in milliseconds), fall back to ``spawn`` elsewhere (each worker
re-imports; everything handed to workers is picklable by design).
"""

from __future__ import annotations

import multiprocessing


def default_start_method() -> str:
    """The start method used when the caller does not pin one."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def get_mp_context(start_method: str | None = None):
    """A :mod:`multiprocessing` context for ``start_method`` (or the default)."""
    return multiprocessing.get_context(start_method or default_start_method())
