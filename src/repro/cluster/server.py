"""Process-sharded frame serving: one engine per worker process.

:class:`ClusterServer` is the multi-core counterpart of
:class:`repro.serving.FrameServer`.  The thread server keeps one engine busy
from many threads, but every Python-level stage of the extractor shares the
producer's GIL, so serving saturates near one host core.  The cluster
spawns ``num_workers`` worker *processes*, each owning a full
engine/backend pair (any registered pair: ``reference``, ``vectorized``,
``hwexact``), and moves pixels through a shared-memory ring
(:mod:`repro.cluster.shared_ring`) so no frame is ever pickled.

Semantics mirror the thread server deliberately:

* **back-pressure** — at most ``max_in_flight`` frames are in flight; a
  submit beyond that blocks the producer on a condition variable (woken
  the instant a completion frees the window) instead of queueing unbounded
  pixels;
* **in-order results** — :meth:`ClusterServer.extract_many` returns results
  in submission order regardless of worker completion order;
* **identical output** — every worker builds its engine from the same
  :class:`~repro.config.ExtractorConfig`, extraction is a pure per-frame
  function, and both transports are byte-exact, so results are
  bit-identical to sequential extraction (``tests/test_cluster.py``) no
  matter which worker ends up running a frame;
* **clean lifecycle** — context manager, graceful drain on close, and
  crashed-worker detection that fails the affected submissions with a
  :class:`~repro.errors.ReproError` instead of hanging the producer.

Placement is delegated to a :class:`~repro.cluster.router.ShardPolicy`
(``round_robin``, ``by_sequence`` or the load-aware ``least_loaded``,
which reads a live per-worker :class:`~repro.cluster.router.WorkerLoad`
view — queue depth + EWMA latency — snapshotted from :class:`ClusterStats`
at routing time).  A **dispatcher thread** hands each worker at most
:data:`DISPATCH_DEPTH` jobs at a time and keeps the rest in per-worker
backlogs; with ``work_stealing=True`` an idle worker drains a saturated
worker's backlog.  Stealing moves *where* a job runs, never *what* it
computes: the job's future, cache key and pixels are untouched, so results
stay bit-identical and in submission order.

Frame transport is chosen per frame: when the configuration selects the
``shared`` pyramid provider, the producer publishes the frame's whole
pyramid (level 0 included) into a
:class:`~repro.pyramid.SharedPyramidCache`, pins the slot, and hands the
worker only the job id — the **zero-copy fast path**; the ring write is
skipped entirely and only happens as a fallback when the publish fails
(cache full).  Per-worker and aggregate counters, including steal and
publish-fallback counts and bytes copied through the ring, live in
:class:`ClusterStats`.
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..config import ExtractorConfig
from ..errors import ReproError
from ..features import ExtractionResult
from ..image import GrayImage
from ..pyramid import SharedPyramidCache
from ..serving.frame_server import LATENCY_WINDOW, percentile_ms
from .context import get_mp_context
from .router import ShardPolicy, WorkerLoad, create_policy
from .shared_ring import SharedFrameRing
from .worker import SHUTDOWN, worker_main

#: How often the collector wakes to check worker health (seconds).
_HEALTH_POLL_S = 0.05

#: Jobs handed to one worker's queue at a time.  Everything beyond this
#: stays in the server-side backlog where the dispatcher can still steal
#: it for an idle worker; small enough that stealing has material work to
#: move, large enough that a worker is never starved between refills.
DISPATCH_DEPTH = 2

#: Weight of the newest sample in the per-worker EWMA latency feeding the
#: ``least_loaded`` load view.
_EWMA_ALPHA = 0.2

#: Safety net on ring acquisition.  Admission control guarantees a free
#: slot exists whenever the ring is used (in-flight frames never exceed the
#: slot count), so hitting this timeout indicates a leaked slot, not
#: back-pressure.
_RING_ACQUIRE_TIMEOUT_S = 5.0


@dataclass
class WorkerStats:
    """Counters of one worker process, maintained by the parent."""

    worker_id: int
    frames_completed: int = 0
    frames_failed: int = 0
    queue_depth: int = 0
    steals: int = 0
    ewma_latency_s: float = 0.0
    alive: bool = True
    # bounded recent-latency window (see serving.frame_server.LATENCY_WINDOW)
    latencies_s: "deque[float]" = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW), repr=False
    )

    @property
    def latency_p50_ms(self) -> float:
        # tuple() snapshots the deque in one C-level pass; appends happen
        # under ClusterStats._lock, which aggregate readers hold instead
        return percentile_ms(tuple(self.latencies_s), 50.0)

    @property
    def latency_p95_ms(self) -> float:
        return percentile_ms(tuple(self.latencies_s), 95.0)

    def as_dict(self) -> Dict[str, object]:
        return {
            "worker_id": self.worker_id,
            "frames_completed": self.frames_completed,
            "frames_failed": self.frames_failed,
            "queue_depth": self.queue_depth,
            "steals": self.steals,
            "ewma_latency_ms": 1000.0 * self.ewma_latency_s,
            "alive": self.alive,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
        }


@dataclass
class ClusterStats:
    """Aggregate + per-worker counters of a :class:`ClusterServer`.

    Field names match :class:`repro.serving.ServingStats` where the concept
    matches, so thread-server and cluster reports line up column for column.
    On top of those, the routing/transport counters make the fast paths
    observable: ``steals`` (jobs moved off a saturated worker's backlog),
    ``frames_zero_copy`` / ``frames_via_ring`` (which transport carried
    each frame), ``ring_bytes_copied`` (producer-side memcpy volume; zero
    for zero-copy frames) and ``publish_fallbacks`` (shared-pyramid
    publishes that failed and fell back to the ring).
    """

    frames_submitted: int = 0
    frames_completed: int = 0
    frames_failed: int = 0
    max_in_flight: int = 0
    steals: int = 0
    publish_fallbacks: int = 0
    frames_zero_copy: int = 0
    frames_via_ring: int = 0
    ring_bytes_copied: int = 0
    workers: List[WorkerStats] = field(default_factory=list)
    _in_flight: int = 0
    _first_submit_s: Optional[float] = None
    _last_completed_s: Optional[float] = None
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    # -- bookkeeping (server-internal) ------------------------------------
    def _submitted(self, worker_id: int) -> None:
        with self._lock:
            if self._first_submit_s is None:
                self._first_submit_s = time.perf_counter()
            self.frames_submitted += 1
            self._in_flight += 1
            self.max_in_flight = max(self.max_in_flight, self._in_flight)
            self.workers[worker_id].queue_depth += 1

    def _completed(self, worker_id: int, latency_s: float) -> None:
        with self._lock:
            self._last_completed_s = time.perf_counter()
            self.frames_completed += 1
            self._in_flight -= 1
            worker = self.workers[worker_id]
            worker.frames_completed += 1
            worker.queue_depth -= 1
            worker.latencies_s.append(latency_s)
            if worker.frames_completed == 1:
                worker.ewma_latency_s = latency_s
            else:
                worker.ewma_latency_s = (
                    (1.0 - _EWMA_ALPHA) * worker.ewma_latency_s
                    + _EWMA_ALPHA * latency_s
                )

    def _failed(self, worker_id: int) -> None:
        with self._lock:
            self._last_completed_s = time.perf_counter()
            self.frames_failed += 1
            self._in_flight -= 1
            worker = self.workers[worker_id]
            worker.frames_failed += 1
            worker.queue_depth -= 1

    def _abandoned(self, worker_id: int) -> None:
        """Undo a submission whose hand-off failed (never extracted)."""
        with self._lock:
            self.frames_submitted -= 1
            self._in_flight -= 1
            self.workers[worker_id].queue_depth -= 1

    def _stolen(self, victim_id: int, thief_id: int) -> None:
        """Move one queued job's accounting from ``victim`` to ``thief``."""
        with self._lock:
            self.steals += 1
            self.workers[thief_id].steals += 1
            self.workers[victim_id].queue_depth -= 1
            self.workers[thief_id].queue_depth += 1

    def _transport(self, zero_copy: bool, bytes_copied: int, fallback: bool) -> None:
        """Record which transport carried one frame and its copy volume."""
        with self._lock:
            if zero_copy:
                self.frames_zero_copy += 1
            else:
                self.frames_via_ring += 1
                self.ring_bytes_copied += bytes_copied
            if fallback:
                self.publish_fallbacks += 1

    # -- derived metrics ---------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Frames submitted but not yet completed/failed, across all workers."""
        return self._in_flight

    @property
    def latency_p50_ms(self) -> float:
        return percentile_ms(self._all_latencies(), 50.0)

    @property
    def latency_p95_ms(self) -> float:
        return percentile_ms(self._all_latencies(), 95.0)

    @property
    def elapsed_s(self) -> float:
        """Wall-clock span from first submit to last completion."""
        if self._first_submit_s is None or self._last_completed_s is None:
            return 0.0
        return max(0.0, self._last_completed_s - self._first_submit_s)

    @property
    def throughput_fps(self) -> float:
        """Completed frames per wall-clock second across the whole cluster."""
        elapsed = self.elapsed_s
        if elapsed <= 0.0:
            return 0.0
        return self.frames_completed / elapsed

    def load_view(self) -> List[WorkerLoad]:
        """Per-worker load snapshot fed to load-aware shard policies."""
        with self._lock:
            return [
                WorkerLoad(
                    worker_id=worker.worker_id,
                    queue_depth=worker.queue_depth,
                    ewma_latency_s=worker.ewma_latency_s,
                    alive=worker.alive,
                )
                for worker in self.workers
            ]

    def _all_latencies(self) -> List[float]:
        with self._lock:
            return [value for worker in self.workers for value in worker.latencies_s]

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly snapshot (benchmark reports)."""
        with self._lock:  # per-worker rows snapshot under the append lock
            workers = [worker.as_dict() for worker in self.workers]
        return {
            "frames_submitted": self.frames_submitted,
            "frames_completed": self.frames_completed,
            "frames_failed": self.frames_failed,
            "max_in_flight": self.max_in_flight,
            "queue_depth": self.queue_depth,
            "steals": self.steals,
            "publish_fallbacks": self.publish_fallbacks,
            "frames_zero_copy": self.frames_zero_copy,
            "frames_via_ring": self.frames_via_ring,
            "ring_bytes_copied": self.ring_bytes_copied,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "elapsed_s": self.elapsed_s,
            "throughput_fps": self.throughput_fps,
            "workers": workers,
        }


@dataclass
class _PendingJob:
    future: "Future[ExtractionResult]"
    worker_id: int  # current owner: backlog shard, or executor once dispatched
    slot: Optional[int]  # ring slot (None on the zero-copy fast path)
    key: int  # pyramid-cache key (frame id, or job id when none supplied)
    pin_slot: Optional[int]  # producer pin on the cached pyramid slot


class _SequenceShard:
    """Protocol adapter binding one shard key to a cluster server.

    Satisfies the frame-serving protocol (``submit`` / ``max_in_flight`` /
    ``extractor_config``), so a ``by_sequence`` cluster can drive
    :meth:`repro.slam.SlamSystem.run` — every frame of the sequence lands on
    the worker the key hashes to.  Lifecycle stays with the parent server.
    """

    def __init__(self, server: "ClusterServer", shard_key: int) -> None:
        self._server = server
        self.shard_key = int(shard_key)

    @property
    def extractor_config(self) -> ExtractorConfig:
        return self._server.extractor_config

    @property
    def max_in_flight(self) -> int:
        return self._server.max_in_flight

    def submit(
        self, image: GrayImage, frame_id: Optional[int] = None
    ) -> "Future[ExtractionResult]":
        return self._server.submit(image, shard_key=self.shard_key, frame_id=frame_id)


class ClusterServer:
    """Multi-process sharded frame extraction with shared-memory transport.

    Parameters
    ----------
    config:
        Extractor configuration every worker builds its engine pair from
        (defaults to :class:`~repro.config.ExtractorConfig`).  The shared
        ring sizes its slots for ``config.image_shape``; larger frames are
        rejected at submit.
    num_workers:
        Worker process count (shards).
    policy:
        Shard policy name (``"round_robin"``, ``"by_sequence"`` or
        ``"least_loaded"``) or a :class:`~repro.cluster.router.ShardPolicy`
        instance.
    max_in_flight:
        Back-pressure bound across the whole cluster; defaults to
        ``2 * num_workers`` like the thread server.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (fast spin-up), else ``spawn``.
    work_stealing:
        When True, an idle worker (own backlog empty, dispatch window
        open) is handed the oldest backlog job of a saturated worker.
        Results stay bit-identical and in submission order — stealing
        only relocates execution — but it deliberately overrides
        ``by_sequence`` affinity under load imbalance, so it is opt-in.
    """

    def __init__(
        self,
        config: Optional[ExtractorConfig] = None,
        num_workers: int = 2,
        policy: str | ShardPolicy = "round_robin",
        max_in_flight: Optional[int] = None,
        start_method: Optional[str] = None,
        work_stealing: bool = False,
    ) -> None:
        if num_workers <= 0:
            raise ReproError("num_workers must be positive")
        self.config = config or ExtractorConfig()
        self.num_workers = num_workers
        self.max_in_flight = 2 * num_workers if max_in_flight is None else max_in_flight
        if self.max_in_flight < num_workers:
            raise ReproError("max_in_flight must be >= num_workers")
        self.policy = policy if isinstance(policy, ShardPolicy) else create_policy(policy)
        self.work_stealing = bool(work_stealing)
        context = get_mp_context(start_method)
        slot_bytes = self.config.image_height * self.config.image_width
        self._ring = SharedFrameRing(self.max_in_flight, slot_bytes)
        # shared pyramid provider: the producer builds each frame's pyramid
        # once into a shared-memory cache and pins the slot; workers attach
        # zero-copy by cache key and the ring is only the publish-failure
        # fallback (docs/pyramid.md)
        self._pyramid_cache = (
            SharedPyramidCache.create(
                self.config, num_slots=self.max_in_flight, context=context
            )
            if self.config.pyramid.provider == "shared"
            else None
        )
        pyramid_handle = (
            self._pyramid_cache.handle() if self._pyramid_cache is not None else None
        )
        self.stats = ClusterStats(
            workers=[WorkerStats(worker_id=index) for index in range(num_workers)]
        )
        self._result_queue = context.Queue()
        self._job_queues = [context.Queue() for _ in range(num_workers)]
        self._processes = []
        self._pending: Dict[int, _PendingJob] = {}
        self._key_pending: Dict[int, int] = {}  # cache key -> in-flight jobs
        self._lock = threading.Lock()
        self._next_job_id = 0
        self._closed = False
        self._draining = False
        # admission window: one condition variable is the whole back-pressure
        # story — completions notify it, so a blocked submit wakes in
        # microseconds instead of a poll tick; worker-death and close also
        # notify so stuck producers surface a ReproError immediately
        self._admission = threading.Condition()
        self._admitted = 0
        # dispatcher state: per-worker backlogs held server-side, at most
        # DISPATCH_DEPTH jobs resident in a worker's own queue at a time
        self._dispatch_cv = threading.Condition()
        self._backlogs: List[deque] = [deque() for _ in range(num_workers)]
        self._dispatched = [0] * num_workers
        self._dispatcher_stop = False
        try:
            for worker_id in range(num_workers):
                process = context.Process(
                    target=worker_main,
                    args=(
                        worker_id,
                        self.config,
                        self._ring.name,
                        slot_bytes,
                        self._job_queues[worker_id],
                        self._result_queue,
                        pyramid_handle,
                    ),
                    name=f"cluster-worker-{worker_id}",
                    daemon=True,
                )
                process.start()
                self._processes.append(process)
        except BaseException:
            # partial spin-up: tear down what started before surfacing the
            # error, so no worker blocks on a queue that will never be fed
            for process in self._processes:
                process.terminate()
                process.join(timeout=5.0)
            for job_queue in self._job_queues:
                job_queue.close()
                job_queue.cancel_join_thread()
            self._result_queue.close()
            self._result_queue.cancel_join_thread()
            self._ring.close()
            if self._pyramid_cache is not None:
                self._pyramid_cache.close()
            raise
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="cluster-dispatcher", daemon=True
        )
        self._dispatcher.start()
        self._collector = threading.Thread(
            target=self._collect_results, name="cluster-collector", daemon=True
        )
        self._collector.start()

    # -- protocol ----------------------------------------------------------
    @property
    def extractor_config(self) -> ExtractorConfig:
        """Configuration every worker's engine pair was built from."""
        return self.config

    def sequence_handle(self, shard_key: int) -> _SequenceShard:
        """Frame-serving view pinned to ``shard_key`` (``by_sequence`` use)."""
        return _SequenceShard(self, shard_key)

    def pyramid_cache_stats(self) -> Optional[Dict[str, object]]:
        """Aggregate shared-pyramid-cache counters (``None`` unless the
        configuration selects the ``shared`` pyramid provider).  The cache's
        own hit/miss/publish counters are joined with the server-side fast
        path counters, so one report tells the whole zero-copy story."""
        if self._pyramid_cache is None:
            return None
        report = self._pyramid_cache.stats()
        report["publish_fallbacks"] = self.stats.publish_fallbacks
        report["zero_copy_frames"] = self.stats.frames_zero_copy
        report["ring_fallback_frames"] = self.stats.frames_via_ring
        return report

    # -- serving -----------------------------------------------------------
    def submit(
        self,
        image: GrayImage,
        shard_key: Optional[int] = None,
        frame_id: Optional[int] = None,
    ) -> "Future[ExtractionResult]":
        """Queue one frame; blocks while ``max_in_flight`` frames are pending.

        Returns a future resolving to the same
        :class:`~repro.features.ExtractionResult` sequential extraction
        would produce.  ``frame_id`` keys pyramid reuse: submissions of the
        same frame under the same id (multi-engine comparisons, replays)
        share one published pyramid instead of building per submission.
        Raises :class:`~repro.errors.ReproError` when the server is closed,
        the routed worker has died, or every worker has died while waiting
        for an admission slot.
        """
        if self._closed:
            raise ReproError("ClusterServer is closed")
        if frame_id is not None and frame_id < 0:
            raise ReproError("frame ids must be non-negative")
        with self._lock:
            job_id = self._next_job_id
            self._next_job_id += 1
        key = int(frame_id) if frame_id is not None else job_id
        self._acquire_admission()
        slot: Optional[int] = None
        pin_slot: Optional[int] = None
        registered = False
        worker_id = 0
        try:
            worker_id = self.policy.route(
                job_id, shard_key, self.num_workers, loads=self.stats.load_view()
            )
            if not 0 <= worker_id < self.num_workers:
                raise ReproError(
                    f"shard policy routed to worker {worker_id}, outside "
                    f"[0, {self.num_workers})"
                )
            if not self.stats.workers[worker_id].alive:
                raise ReproError(
                    f"cluster worker {worker_id} has died; frame cannot be served"
                )
            future: "Future[ExtractionResult]" = Future()
            zero_copy = fallback = False
            if self._pyramid_cache is not None:
                # zero-copy fast path: publish the whole pyramid (level 0
                # included) and pin the slot so it can neither be evicted
                # nor reclaimed before the worker attaches; on success the
                # ring write is skipped entirely
                if self._pyramid_cache.publish(key, image.pixels):
                    pin_slot = self._pyramid_cache.pin(key)
                zero_copy = pin_slot is not None
                fallback = not zero_copy
            if zero_copy:
                height, width = image.pixels.shape
            else:
                slot = self._ring.acquire(timeout=_RING_ACQUIRE_TIMEOUT_S)
                if slot is None:
                    raise ReproError(
                        "no free frame ring slot inside the admission window "
                        "(slot leak?)"
                    )
                height, width = self._ring.write(slot, image.pixels)
            with self._lock:
                # re-check under the crash handler's lock: a worker marked
                # dead after the early check above must not receive a job
                # that _fail_worker (which drains _pending exactly once)
                # can no longer fail
                if not self.stats.workers[worker_id].alive:
                    raise ReproError(
                        f"cluster worker {worker_id} has died; frame cannot be served"
                    )
                self._pending[job_id] = _PendingJob(
                    future, worker_id, slot, key, pin_slot
                )
                self._key_pending[key] = self._key_pending.get(key, 0) + 1
                registered = True
            self.stats._submitted(worker_id)
            self.stats._transport(
                zero_copy, 0 if zero_copy else height * width, fallback
            )
            with self._dispatch_cv:
                self._backlogs[worker_id].append((job_id, key, slot, height, width))
                self._dispatch_cv.notify_all()
            return future
        except BaseException:
            if registered:
                with self._lock:
                    job = self._pending.pop(job_id, None)
                if job is not None:
                    self.stats._abandoned(worker_id)
                    self._release_job_resources(job, crashed=True)
            else:
                if slot is not None:
                    self._ring.release(slot)
                if pin_slot is not None:
                    self._pyramid_cache.unpin(pin_slot)
                if self._pyramid_cache is not None:
                    with self._lock:
                        key_in_use = self._key_pending.get(key, 0)
                    if key_in_use == 0:
                        # the pyramid may already be published for a job that
                        # will never run; free its cache slot too
                        self._pyramid_cache.retire(key, force=True)
            self._release_admission()
            raise

    def extract_many(
        self,
        images: Iterable[GrayImage],
        shard_keys: Optional[Sequence[int]] = None,
        frame_ids: Optional[Sequence[int]] = None,
    ) -> List[ExtractionResult]:
        """Extract every image across the cluster; results in submission order.

        ``shard_keys`` optionally supplies one affinity key per image
        (required by the ``by_sequence`` policy); ``frame_ids`` optionally
        supplies stable pyramid-cache keys.  Submission interleaves with
        completion through the bounded in-flight window, and the returned
        list is reassembled in order regardless of which worker finished
        first.
        """
        futures = []
        for index, image in enumerate(images):
            futures.append(
                self.submit(
                    image,
                    shard_key=shard_keys[index] if shard_keys is not None else None,
                    frame_id=frame_ids[index] if frame_ids is not None else None,
                )
            )
        return [future.result() for future in futures]

    # -- admission (back-pressure) -----------------------------------------
    def _acquire_admission(self) -> None:
        """Block until the in-flight window has room, watching worker health.

        Wake-ups are notifications (completion, worker death, close) — the
        short wait timeout below is only a lost-wakeup safety net, not the
        release latency.
        """
        with self._admission:
            while True:
                if self._closed:
                    raise ReproError(
                        "ClusterServer closed while waiting for an admission slot"
                    )
                if not any(worker.alive for worker in self.stats.workers):
                    raise ReproError("every cluster worker has died; serving halted")
                if self._admitted < self.max_in_flight:
                    self._admitted += 1
                    return
                self._admission.wait(timeout=1.0)

    def _release_admission(self) -> None:
        with self._admission:
            self._admitted -= 1
            self._admission.notify()

    # -- dispatch / work stealing ------------------------------------------
    def _dispatch_loop(self) -> None:
        """Move backlog jobs into worker queues, stealing for idle workers."""
        while True:
            with self._dispatch_cv:
                assignment = None
                while assignment is None:
                    if self._dispatcher_stop:
                        return
                    assignment = self._next_assignment()
                    if assignment is None:
                        self._dispatch_cv.wait(timeout=0.2)
                worker_id, message, victim_id = assignment
                self._dispatched[worker_id] += 1
            job_id = message[0]
            if victim_id is not None:
                with self._lock:
                    job = self._pending.get(job_id)
                    if job is not None:
                        job.worker_id = worker_id
                self.stats._stolen(victim_id, worker_id)
            try:
                self._job_queues[worker_id].put(message)
            except BaseException:
                self._dispatch_failed(worker_id, job_id)

    def _next_assignment(self):
        """One (worker, job, stolen-from) triple, or None.  Caller holds CV.

        A worker with an open dispatch window takes its own backlog first;
        with ``work_stealing`` it otherwise takes the oldest job from the
        deepest backlog of a *saturated* worker (dispatch window full), so
        stealing moves genuinely-waiting work and never races a victim that
        would have dispatched the job itself in this same pass.
        """
        for worker_id in range(self.num_workers):
            if not self.stats.workers[worker_id].alive:
                continue
            if self._dispatched[worker_id] >= DISPATCH_DEPTH:
                continue
            if self._backlogs[worker_id]:
                return worker_id, self._backlogs[worker_id].popleft(), None
            if not self.work_stealing:
                continue
            victim_id, victim_depth = None, 0
            for other in range(self.num_workers):
                if other == worker_id or not self.stats.workers[other].alive:
                    continue
                if self._dispatched[other] < DISPATCH_DEPTH:
                    continue  # victim would drain its own backlog anyway
                if len(self._backlogs[other]) > victim_depth:
                    victim_id, victim_depth = other, len(self._backlogs[other])
            if victim_id is not None:
                return worker_id, self._backlogs[victim_id].popleft(), victim_id
        return None

    def _dispatch_failed(self, worker_id: int, job_id: int) -> None:
        """Fail one job whose queue hand-off raised (torn-down queue)."""
        with self._dispatch_cv:
            self._dispatched[worker_id] = max(0, self._dispatched[worker_id] - 1)
        with self._lock:
            job = self._pending.pop(job_id, None)
        if job is None:
            return
        self.stats._failed(job.worker_id)
        self._release_job_resources(job, crashed=True)
        self._release_admission()
        job.future.set_exception(
            ReproError(f"cluster worker {worker_id} queue rejected the frame")
        )

    # -- result collection / worker health ---------------------------------
    def _collect_results(self) -> None:
        while True:
            try:
                message = self._result_queue.get(timeout=_HEALTH_POLL_S)
            except queue_module.Empty:
                if self._closed and not self._pending:
                    return
                self._check_worker_health()
                continue
            except (EOFError, OSError):
                return  # queue torn down during close
            worker_id, batch = message
            with self._dispatch_cv:
                # the executor finished len(batch) jobs: reopen its window
                self._dispatched[worker_id] = max(
                    0, self._dispatched[worker_id] - len(batch)
                )
                self._dispatch_cv.notify_all()
            for job_id, result, latency_s, error in batch:
                with self._lock:
                    job = self._pending.pop(job_id, None)
                if job is None:
                    continue  # already failed by crash handling
                # account the completion BEFORE freeing transport resources
                # and the admission slot: a producer blocked on admission
                # must not see the window shrink before the in-flight
                # counter does (else max_in_flight can overshoot)
                if error is None:
                    self.stats._completed(worker_id, latency_s)
                    self._release_job_resources(job)
                    self._release_admission()
                    job.future.set_result(result)
                else:
                    self.stats._failed(worker_id)
                    self._release_job_resources(job)
                    self._release_admission()
                    job.future.set_exception(
                        ReproError(
                            f"cluster worker {worker_id} extraction failed: {error}"
                        )
                    )

    def _release_job_resources(self, job: _PendingJob, crashed: bool = False) -> None:
        """Free a collected job's transport resources.

        A collected result proves the worker is done with the shared pages:
        the ring slot (if the frame travelled by ring) returns to the pool,
        the producer's pin on the cached pyramid is released, and the cache
        entry is retired once no other in-flight job shares its key.
        ``crashed`` additionally voids leases held by a dead process.
        """
        if job.slot is not None:
            self._ring.release(job.slot)
        if self._pyramid_cache is not None:
            if job.pin_slot is not None:
                self._pyramid_cache.unpin(job.pin_slot)
            with self._lock:
                remaining = self._key_pending.get(job.key, 1) - 1
                if remaining <= 0:
                    self._key_pending.pop(job.key, None)
                else:
                    self._key_pending[job.key] = remaining
            if remaining <= 0:
                self._pyramid_cache.retire(job.key, force=crashed)
        else:
            with self._lock:
                remaining = self._key_pending.get(job.key, 1) - 1
                if remaining <= 0:
                    self._key_pending.pop(job.key, None)
                else:
                    self._key_pending[job.key] = remaining

    def _check_worker_health(self) -> None:
        for worker_id, process in enumerate(self._processes):
            worker = self.stats.workers[worker_id]
            if worker.alive and process.exitcode is not None:
                if self._draining and process.exitcode == 0:
                    continue  # normal sentinel exit while close() drains
                self._fail_worker(worker_id, process.exitcode)

    def _fail_worker(self, worker_id: int, exitcode: Optional[int]) -> None:
        """Mark a worker dead and fail every submission it currently owns."""
        worker = self.stats.workers[worker_id]
        with self._dispatch_cv:
            # undispatched backlog jobs are owned by this worker and fail
            # below via _pending; clearing keeps the dispatcher from handing
            # them to a dead queue (or stealing already-failed work)
            self._backlogs[worker_id].clear()
            self._dispatched[worker_id] = 0
        with self._lock:
            if not worker.alive:
                return
            worker.alive = False
            doomed = [
                (job_id, job)
                for job_id, job in self._pending.items()
                if job.worker_id == worker_id
            ]
            for job_id, _ in doomed:
                del self._pending[job_id]
        for job_id, job in doomed:
            self.stats._failed(worker_id)
            self._release_job_resources(job, crashed=True)
            self._release_admission()
            job.future.set_exception(
                ReproError(
                    f"cluster worker {worker_id} died (exit code {exitcode}) "
                    "with frames in flight"
                )
            )
        with self._admission:
            self._admission.notify_all()  # blocked producers re-check liveness
        with self._dispatch_cv:
            self._dispatch_cv.notify_all()

    def kill_worker(self, worker_id: int) -> None:
        """Fault-injection hook: kill one worker and surface the failure.

        Used by the crash tests (and available for chaos drills): the
        worker process is killed, joined, and every submission pending on
        it fails with a :class:`~repro.errors.ReproError`.
        """
        if not 0 <= worker_id < self.num_workers:
            raise ReproError(f"no cluster worker {worker_id}")
        process = self._processes[worker_id]
        if process.exitcode is None:
            process.kill()
        process.join()
        self._fail_worker(worker_id, process.exitcode)

    # -- lifecycle ---------------------------------------------------------
    def close(self, drain_timeout_s: float = 30.0) -> None:
        """Gracefully drain in-flight frames and tear the cluster down."""
        if self._closed:
            return
        self._draining = True
        deadline = time.perf_counter() + drain_timeout_s
        while time.perf_counter() < deadline:
            with self._lock:
                drained = not self._pending
            if drained:
                break
            if not any(worker.alive for worker in self.stats.workers):
                break
            time.sleep(_HEALTH_POLL_S)
        with self._admission:
            self._closed = True
            self._admission.notify_all()  # blocked producers raise, not hang
        with self._dispatch_cv:
            self._dispatcher_stop = True
            self._dispatch_cv.notify_all()
        self._dispatcher.join(timeout=5.0)
        for worker_id, worker in enumerate(self.stats.workers):
            if worker.alive:
                try:
                    self._job_queues[worker_id].put(SHUTDOWN)
                except (ValueError, OSError):
                    pass
        with self._lock:
            leftovers = list(self._pending.items())
            self._pending.clear()
        for job_id, job in leftovers:
            self.stats._failed(job.worker_id)
            self._release_job_resources(job, crashed=True)
            self._release_admission()
            job.future.set_exception(
                ReproError("ClusterServer closed before the frame was served")
            )
        for process in self._processes:
            process.join(timeout=5.0)
            if process.exitcode is None:
                process.terminate()
                process.join(timeout=5.0)
        self._collector.join(timeout=5.0)
        for job_queue in self._job_queues:
            job_queue.close()
            job_queue.cancel_join_thread()
        self._result_queue.close()
        self._result_queue.cancel_join_thread()
        self._ring.close()
        if self._pyramid_cache is not None:
            self._pyramid_cache.close()

    def __enter__(self) -> "ClusterServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
