"""Process-sharded frame serving: one engine per worker process.

:class:`ClusterServer` is the multi-core counterpart of
:class:`repro.serving.FrameServer`.  The thread server keeps one engine busy
from many threads, but every Python-level stage of the extractor shares the
producer's GIL, so serving saturates near one host core.  The cluster
spawns ``num_workers`` worker *processes*, each owning a full
engine/backend pair (any registered pair: ``reference``, ``vectorized``,
``hwexact``), and moves pixels through a shared-memory ring
(:mod:`repro.cluster.shared_ring`) so no frame is ever pickled.

Semantics mirror the thread server deliberately:

* **back-pressure** — at most ``max_in_flight`` frames are in flight; a
  submit beyond that blocks the producer instead of queueing unbounded
  pixels (the ring slot pool is the bound);
* **in-order results** — :meth:`ClusterServer.extract_many` returns results
  in submission order regardless of worker completion order;
* **identical output** — every worker builds its engine from the same
  :class:`~repro.config.ExtractorConfig`, extraction is a pure per-frame
  function, and the shared-memory round trip is byte-exact, so results are
  bit-identical to sequential extraction (``tests/test_cluster.py``);
* **clean lifecycle** — context manager, graceful drain on close, and
  crashed-worker detection that fails the affected submissions with a
  :class:`~repro.errors.ReproError` instead of hanging the producer.

Placement is delegated to a :class:`~repro.cluster.router.ShardPolicy`
(``round_robin`` or ``by_sequence``); per-worker and aggregate counters
live in :class:`ClusterStats`, comparable field-for-field with the thread
server's :class:`~repro.serving.ServingStats`.

Two transport optimisations ride on top: workers batch small per-frame
results into one queue put while saturated (flushing whenever their job
queue runs dry, so idle latency is unchanged), and — when the
configuration selects the ``shared`` pyramid provider — the producer
publishes each frame's pyramid once into a
:class:`~repro.pyramid.SharedPyramidCache` that workers attach to
zero-copy by job id, retiring the slot when the result is collected
(``docs/pyramid.md``).
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..config import ExtractorConfig
from ..errors import ReproError
from ..features import ExtractionResult
from ..image import GrayImage
from ..pyramid import SharedPyramidCache
from ..serving.frame_server import LATENCY_WINDOW, percentile_ms
from .context import get_mp_context
from .router import ShardPolicy, create_policy
from .shared_ring import SharedFrameRing
from .worker import SHUTDOWN, worker_main

#: How often the collector wakes to check worker health (seconds).
_HEALTH_POLL_S = 0.05


@dataclass
class WorkerStats:
    """Counters of one worker process, maintained by the parent."""

    worker_id: int
    frames_completed: int = 0
    frames_failed: int = 0
    queue_depth: int = 0
    alive: bool = True
    # bounded recent-latency window (see serving.frame_server.LATENCY_WINDOW)
    latencies_s: "deque[float]" = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW), repr=False
    )

    @property
    def latency_p50_ms(self) -> float:
        # tuple() snapshots the deque in one C-level pass; appends happen
        # under ClusterStats._lock, which aggregate readers hold instead
        return percentile_ms(tuple(self.latencies_s), 50.0)

    @property
    def latency_p95_ms(self) -> float:
        return percentile_ms(tuple(self.latencies_s), 95.0)

    def as_dict(self) -> Dict[str, object]:
        return {
            "worker_id": self.worker_id,
            "frames_completed": self.frames_completed,
            "frames_failed": self.frames_failed,
            "queue_depth": self.queue_depth,
            "alive": self.alive,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
        }


@dataclass
class ClusterStats:
    """Aggregate + per-worker counters of a :class:`ClusterServer`.

    Field names match :class:`repro.serving.ServingStats` where the concept
    matches, so thread-server and cluster reports line up column for column.
    """

    frames_submitted: int = 0
    frames_completed: int = 0
    frames_failed: int = 0
    max_in_flight: int = 0
    workers: List[WorkerStats] = field(default_factory=list)
    _in_flight: int = 0
    _first_submit_s: Optional[float] = None
    _last_completed_s: Optional[float] = None
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    # -- bookkeeping (server-internal) ------------------------------------
    def _submitted(self, worker_id: int) -> None:
        with self._lock:
            if self._first_submit_s is None:
                self._first_submit_s = time.perf_counter()
            self.frames_submitted += 1
            self._in_flight += 1
            self.max_in_flight = max(self.max_in_flight, self._in_flight)
            self.workers[worker_id].queue_depth += 1

    def _completed(self, worker_id: int, latency_s: float) -> None:
        with self._lock:
            self._last_completed_s = time.perf_counter()
            self.frames_completed += 1
            self._in_flight -= 1
            worker = self.workers[worker_id]
            worker.frames_completed += 1
            worker.queue_depth -= 1
            worker.latencies_s.append(latency_s)

    def _failed(self, worker_id: int) -> None:
        with self._lock:
            self._last_completed_s = time.perf_counter()
            self.frames_failed += 1
            self._in_flight -= 1
            worker = self.workers[worker_id]
            worker.frames_failed += 1
            worker.queue_depth -= 1

    def _abandoned(self, worker_id: int) -> None:
        """Undo a submission whose queue hand-off failed (never extracted)."""
        with self._lock:
            self.frames_submitted -= 1
            self._in_flight -= 1
            self.workers[worker_id].queue_depth -= 1

    # -- derived metrics ---------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Frames submitted but not yet completed/failed, across all workers."""
        return self._in_flight

    @property
    def latency_p50_ms(self) -> float:
        return percentile_ms(self._all_latencies(), 50.0)

    @property
    def latency_p95_ms(self) -> float:
        return percentile_ms(self._all_latencies(), 95.0)

    @property
    def elapsed_s(self) -> float:
        """Wall-clock span from first submit to last completion."""
        if self._first_submit_s is None or self._last_completed_s is None:
            return 0.0
        return max(0.0, self._last_completed_s - self._first_submit_s)

    @property
    def throughput_fps(self) -> float:
        """Completed frames per wall-clock second across the whole cluster."""
        elapsed = self.elapsed_s
        if elapsed <= 0.0:
            return 0.0
        return self.frames_completed / elapsed

    def _all_latencies(self) -> List[float]:
        with self._lock:
            return [value for worker in self.workers for value in worker.latencies_s]

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly snapshot (benchmark reports)."""
        with self._lock:  # per-worker rows snapshot under the append lock
            workers = [worker.as_dict() for worker in self.workers]
        return {
            "frames_submitted": self.frames_submitted,
            "frames_completed": self.frames_completed,
            "frames_failed": self.frames_failed,
            "max_in_flight": self.max_in_flight,
            "queue_depth": self.queue_depth,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "elapsed_s": self.elapsed_s,
            "throughput_fps": self.throughput_fps,
            "workers": workers,
        }


@dataclass
class _PendingJob:
    future: "Future[ExtractionResult]"
    worker_id: int
    slot: int


class _SequenceShard:
    """Protocol adapter binding one shard key to a cluster server.

    Satisfies the frame-serving protocol (``submit`` / ``max_in_flight`` /
    ``extractor_config``), so a ``by_sequence`` cluster can drive
    :meth:`repro.slam.SlamSystem.run` — every frame of the sequence lands on
    the worker the key hashes to.  Lifecycle stays with the parent server.
    """

    def __init__(self, server: "ClusterServer", shard_key: int) -> None:
        self._server = server
        self.shard_key = int(shard_key)

    @property
    def extractor_config(self) -> ExtractorConfig:
        return self._server.extractor_config

    @property
    def max_in_flight(self) -> int:
        return self._server.max_in_flight

    def submit(self, image: GrayImage) -> "Future[ExtractionResult]":
        return self._server.submit(image, shard_key=self.shard_key)


class ClusterServer:
    """Multi-process sharded frame extraction with shared-memory transport.

    Parameters
    ----------
    config:
        Extractor configuration every worker builds its engine pair from
        (defaults to :class:`~repro.config.ExtractorConfig`).  The shared
        ring sizes its slots for ``config.image_shape``; larger frames are
        rejected at submit.
    num_workers:
        Worker process count (shards).
    policy:
        Shard policy name (``"round_robin"`` or ``"by_sequence"``) or a
        :class:`~repro.cluster.router.ShardPolicy` instance.
    max_in_flight:
        Back-pressure bound across the whole cluster; defaults to
        ``2 * num_workers`` like the thread server.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (fast spin-up), else ``spawn``.
    """

    def __init__(
        self,
        config: Optional[ExtractorConfig] = None,
        num_workers: int = 2,
        policy: str | ShardPolicy = "round_robin",
        max_in_flight: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if num_workers <= 0:
            raise ReproError("num_workers must be positive")
        self.config = config or ExtractorConfig()
        self.num_workers = num_workers
        self.max_in_flight = 2 * num_workers if max_in_flight is None else max_in_flight
        if self.max_in_flight < num_workers:
            raise ReproError("max_in_flight must be >= num_workers")
        self.policy = policy if isinstance(policy, ShardPolicy) else create_policy(policy)
        context = get_mp_context(start_method)
        slot_bytes = self.config.image_height * self.config.image_width
        self._ring = SharedFrameRing(self.max_in_flight, slot_bytes)
        # shared pyramid provider: the producer builds each frame's pyramid
        # once into a shared-memory cache; workers attach zero-copy by job
        # id instead of rebuilding it per extraction (docs/pyramid.md)
        self._pyramid_cache = (
            SharedPyramidCache.create(
                self.config, num_slots=self.max_in_flight, context=context
            )
            if self.config.pyramid.provider == "shared"
            else None
        )
        pyramid_handle = (
            self._pyramid_cache.handle() if self._pyramid_cache is not None else None
        )
        self.stats = ClusterStats(
            workers=[WorkerStats(worker_id=index) for index in range(num_workers)]
        )
        self._result_queue = context.Queue()
        self._job_queues = [context.Queue() for _ in range(num_workers)]
        self._processes = []
        self._pending: Dict[int, _PendingJob] = {}
        self._lock = threading.Lock()
        self._next_job_id = 0
        self._closed = False
        self._draining = False
        try:
            for worker_id in range(num_workers):
                process = context.Process(
                    target=worker_main,
                    args=(
                        worker_id,
                        self.config,
                        self._ring.name,
                        slot_bytes,
                        self._job_queues[worker_id],
                        self._result_queue,
                        pyramid_handle,
                    ),
                    name=f"cluster-worker-{worker_id}",
                    daemon=True,
                )
                process.start()
                self._processes.append(process)
        except BaseException:
            # partial spin-up: tear down what started before surfacing the
            # error, so no worker blocks on a queue that will never be fed
            for process in self._processes:
                process.terminate()
                process.join(timeout=5.0)
            for job_queue in self._job_queues:
                job_queue.close()
                job_queue.cancel_join_thread()
            self._result_queue.close()
            self._result_queue.cancel_join_thread()
            self._ring.close()
            if self._pyramid_cache is not None:
                self._pyramid_cache.close()
            raise
        self._collector = threading.Thread(
            target=self._collect_results, name="cluster-collector", daemon=True
        )
        self._collector.start()

    # -- protocol ----------------------------------------------------------
    @property
    def extractor_config(self) -> ExtractorConfig:
        """Configuration every worker's engine pair was built from."""
        return self.config

    def sequence_handle(self, shard_key: int) -> _SequenceShard:
        """Frame-serving view pinned to ``shard_key`` (``by_sequence`` use)."""
        return _SequenceShard(self, shard_key)

    def pyramid_cache_stats(self) -> Optional[Dict[str, object]]:
        """Aggregate shared-pyramid-cache counters (``None`` unless the
        configuration selects the ``shared`` pyramid provider)."""
        if self._pyramid_cache is None:
            return None
        return self._pyramid_cache.stats()

    # -- serving -----------------------------------------------------------
    def submit(
        self, image: GrayImage, shard_key: Optional[int] = None
    ) -> "Future[ExtractionResult]":
        """Queue one frame; blocks while ``max_in_flight`` frames are pending.

        Returns a future resolving to the same
        :class:`~repro.features.ExtractionResult` sequential extraction
        would produce.  Raises :class:`~repro.errors.ReproError` when the
        server is closed, the routed worker has died, or every worker has
        died while waiting for a free slot.
        """
        if self._closed:
            raise ReproError("ClusterServer is closed")
        with self._lock:
            job_id = self._next_job_id
            self._next_job_id += 1
        worker_id = self.policy.route(job_id, shard_key, self.num_workers)
        if not self.stats.workers[worker_id].alive:
            raise ReproError(
                f"cluster worker {worker_id} has died; frame cannot be served"
            )
        slot = self._acquire_slot()
        future: "Future[ExtractionResult]" = Future()
        try:
            height, width = self._ring.write(slot, image.pixels)
            if self._pyramid_cache is not None:
                # best effort: a failed publish (all slots leased) just means
                # the routed worker builds the pyramid locally on its miss
                self._pyramid_cache.publish(job_id, image.pixels)
            with self._lock:
                # re-check under the crash handler's lock: a worker marked
                # dead after the early check above must not receive a job
                # that _fail_worker (which drains _pending exactly once)
                # can no longer fail
                if not self.stats.workers[worker_id].alive:
                    raise ReproError(
                        f"cluster worker {worker_id} has died; frame cannot be served"
                    )
                self._pending[job_id] = _PendingJob(future, worker_id, slot)
            self.stats._submitted(worker_id)
            try:
                self._job_queues[worker_id].put((job_id, slot, height, width))
            except BaseException:
                self.stats._abandoned(worker_id)
                raise
        except BaseException:
            with self._lock:
                self._pending.pop(job_id, None)
            self._ring.release(slot)
            if self._pyramid_cache is not None:
                # the pyramid may already be published for a job that will
                # never run; free its cache slot too
                self._pyramid_cache.retire(job_id, force=True)
            raise
        return future

    def extract_many(
        self,
        images: Iterable[GrayImage],
        shard_keys: Optional[Sequence[int]] = None,
    ) -> List[ExtractionResult]:
        """Extract every image across the cluster; results in submission order.

        ``shard_keys`` optionally supplies one affinity key per image
        (required by the ``by_sequence`` policy).  Submission interleaves
        with completion through the bounded in-flight window, and the
        returned list is reassembled in order regardless of which worker
        finished first.
        """
        futures = []
        for index, image in enumerate(images):
            key = shard_keys[index] if shard_keys is not None else None
            futures.append(self.submit(image, shard_key=key))
        return [future.result() for future in futures]

    def _acquire_slot(self) -> int:
        """Back-pressure point: wait for a ring slot, watching worker health."""
        while True:
            slot = self._ring.acquire(timeout=0.1)
            if slot is not None:
                return slot
            if self._closed:
                raise ReproError("ClusterServer closed while waiting for a frame slot")
            if not any(worker.alive for worker in self.stats.workers):
                raise ReproError("every cluster worker has died; serving halted")

    # -- result collection / worker health ---------------------------------
    def _collect_results(self) -> None:
        while True:
            try:
                message = self._result_queue.get(timeout=_HEALTH_POLL_S)
            except queue_module.Empty:
                if self._closed and not self._pending:
                    return
                self._check_worker_health()
                continue
            except (EOFError, OSError):
                return  # queue torn down during close
            worker_id, batch = message
            for job_id, result, latency_s, error in batch:
                with self._lock:
                    job = self._pending.pop(job_id, None)
                if job is None:
                    continue  # already failed by crash handling
                # account the completion BEFORE freeing the slot: a producer
                # blocked on the slot pool must not see the window shrink
                # before the in-flight counter does (else max_in_flight can
                # overshoot)
                if error is None:
                    self.stats._completed(worker_id, latency_s)
                    self._release_job_resources(job_id, job)
                    job.future.set_result(result)
                else:
                    self.stats._failed(worker_id)
                    self._release_job_resources(job_id, job)
                    job.future.set_exception(
                        ReproError(
                            f"cluster worker {worker_id} extraction failed: {error}"
                        )
                    )

    def _release_job_resources(
        self, job_id: int, job: _PendingJob, crashed: bool = False
    ) -> None:
        """Free a collected job's ring slot and retire its cached pyramid.

        A collected result proves the worker is done with the shared pages;
        ``crashed`` additionally voids the worker's cache lease, which can
        never be released by the dead process.
        """
        self._ring.release(job.slot)
        if self._pyramid_cache is not None:
            self._pyramid_cache.retire(job_id, force=crashed)

    def _check_worker_health(self) -> None:
        for worker_id, process in enumerate(self._processes):
            worker = self.stats.workers[worker_id]
            if worker.alive and process.exitcode is not None:
                if self._draining and process.exitcode == 0:
                    continue  # normal sentinel exit while close() drains
                self._fail_worker(worker_id, process.exitcode)

    def _fail_worker(self, worker_id: int, exitcode: Optional[int]) -> None:
        """Mark a worker dead and fail every submission routed to it."""
        worker = self.stats.workers[worker_id]
        with self._lock:
            if not worker.alive:
                return
            worker.alive = False
            doomed = [
                (job_id, job)
                for job_id, job in self._pending.items()
                if job.worker_id == worker_id
            ]
            for job_id, _ in doomed:
                del self._pending[job_id]
        for job_id, job in doomed:
            self.stats._failed(worker_id)
            self._release_job_resources(job_id, job, crashed=True)
            job.future.set_exception(
                ReproError(
                    f"cluster worker {worker_id} died (exit code {exitcode}) "
                    "with frames in flight"
                )
            )

    def kill_worker(self, worker_id: int) -> None:
        """Fault-injection hook: kill one worker and surface the failure.

        Used by the crash tests (and available for chaos drills): the
        worker process is killed, joined, and every submission pending on
        it fails with a :class:`~repro.errors.ReproError`.
        """
        if not 0 <= worker_id < self.num_workers:
            raise ReproError(f"no cluster worker {worker_id}")
        process = self._processes[worker_id]
        if process.exitcode is None:
            process.kill()
        process.join()
        self._fail_worker(worker_id, process.exitcode)

    # -- lifecycle ---------------------------------------------------------
    def close(self, drain_timeout_s: float = 30.0) -> None:
        """Gracefully drain in-flight frames and tear the cluster down."""
        if self._closed:
            return
        self._draining = True
        for worker_id, worker in enumerate(self.stats.workers):
            if worker.alive:
                try:
                    self._job_queues[worker_id].put(SHUTDOWN)
                except (ValueError, OSError):
                    pass
        deadline = time.perf_counter() + drain_timeout_s
        while time.perf_counter() < deadline:
            with self._lock:
                drained = not self._pending
            if drained:
                break
            if not any(worker.alive for worker in self.stats.workers):
                break
            time.sleep(_HEALTH_POLL_S)
        self._closed = True
        with self._lock:
            leftovers = list(self._pending.items())
            self._pending.clear()
        for job_id, job in leftovers:
            self.stats._failed(job.worker_id)
            self._release_job_resources(job_id, job, crashed=True)
            job.future.set_exception(
                ReproError("ClusterServer closed before the frame was served")
            )
        for process in self._processes:
            process.join(timeout=5.0)
            if process.exitcode is None:
                process.terminate()
                process.join(timeout=5.0)
        self._collector.join(timeout=5.0)
        for job_queue in self._job_queues:
            job_queue.close()
            job_queue.cancel_join_thread()
        self._result_queue.close()
        self._result_queue.cancel_join_thread()
        self._ring.close()
        if self._pyramid_cache is not None:
            self._pyramid_cache.close()

    def __enter__(self) -> "ClusterServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
